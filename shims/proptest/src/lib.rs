//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment has no network registry, so the workspace wires
//! `proptest` to this API-compatible subset (see `shims/README.md`). It covers the
//! surface the test-suite uses: the [`proptest!`] / [`prop_oneof!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros, [`strategy::Strategy`] with
//! `prop_map` / `prop_recursive`, [`collection::vec`], integer-range and
//! pattern-string strategies, [`arbitrary::any`] and
//! [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest: inputs are drawn from a deterministic
//! per-test-name PRNG (no OS entropy, no persisted failure seeds) and failing
//! cases are **not shrunk** — the failing case index and assertion message are
//! reported as-is.

pub mod test_runner {
    use std::fmt;

    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name, so every test gets a stable but
        /// distinct input stream.
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Returns the next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// Number of cases to run per property.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// How many random cases each property is checked against.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case (carries the assertion message).
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        pub fn fail<S: Into<String>>(message: S) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    impl std::error::Error for TestCaseError {}
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    ///
    /// Unlike real proptest there is no shrinking: a strategy is just a seeded
    /// generator.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: values are either drawn from `self` (the
        /// leaf strategy) or from `recurse` applied to the previous level, nested
        /// at most `depth` levels deep. The `_desired_size` / `_expected_branch`
        /// hints of real proptest are accepted and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let base = self.boxed();
            let mut level = base.clone();
            for _ in 0..depth {
                level = Union::new(vec![base.clone(), recurse(level).boxed()]).boxed();
            }
            level
        }

        /// Type-erases the strategy behind a cheap clonable handle.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let f = move |rng: &mut TestRng| self.generate(rng);
            BoxedStrategy(Rc::new(f))
        }
    }

    /// A clonable, type-erased strategy handle.
    pub struct BoxedStrategy<V>(Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between several strategies of the same value type
    /// (the engine behind [`crate::prop_oneof!`]).
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// A union over a non-empty list of options.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    /// Integers uniformly samplable from a half-open range.
    pub trait UniformInt: Copy {
        /// Samples uniformly from `[low, high)`.
        fn sample(low: Self, high: Self, rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_uniform_int {
        ($($t:ty),*) => {$(
            impl UniformInt for $t {
                fn sample(low: Self, high: Self, rng: &mut TestRng) -> Self {
                    assert!(low < high, "empty range strategy");
                    // Offset arithmetic stays in i128: for signed types the span
                    // can exceed the type's positive max, so `low + offset` must
                    // not be computed in $t.
                    let span = (high as i128 - low as i128) as u128;
                    (low as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }

    impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: UniformInt> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample(self.start, self.end, rng)
        }
    }

    // Pattern strings: `"[a-z]{1,6}"` is a strategy for matching strings, as in
    // real proptest. Only the subset `literal`, `[class]`, `{n}`, `{m,n}` of the
    // regex syntax is supported.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::pattern::generate(self, rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `size` (half-open) and
    /// whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// Result of [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy, reachable through [`any`].
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// The canonical strategy for `A` (mirrors `proptest::arbitrary::any`).
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }

    /// Result of [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }
}

pub(crate) mod pattern {
    use crate::test_runner::TestRng;

    enum Atom {
        Literal(char),
        Class(Vec<char>),
    }

    /// Generates a string matching the pattern subset `literal`, `[class]`,
    /// `{n}`, `{m,n}`. Unsupported constructs panic so that a silently wrong
    /// generator can never masquerade as coverage.
    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut members = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        let m = chars
                            .next()
                            .unwrap_or_else(|| panic!("unterminated class in pattern `{pattern}`"));
                        match m {
                            ']' => break,
                            '\\' => {
                                let esc = chars.next().expect("dangling escape");
                                members.push(esc);
                                prev = Some(esc);
                            }
                            '-' if prev.is_some() && chars.peek() != Some(&']') => {
                                let hi = chars.next().unwrap();
                                let lo = prev.take().unwrap();
                                // The range start was already pushed as a member;
                                // extend with the rest of the range.
                                for code in (lo as u32 + 1)..=(hi as u32) {
                                    members.push(char::from_u32(code).unwrap());
                                }
                            }
                            m => {
                                members.push(m);
                                prev = Some(m);
                            }
                        }
                    }
                    assert!(!members.is_empty(), "empty class in pattern `{pattern}`");
                    Atom::Class(members)
                }
                '\\' => Atom::Literal(chars.next().expect("dangling escape")),
                '{' | '}' | '*' | '+' | '?' | '(' | ')' | '|' | '.' => {
                    panic!("unsupported regex construct `{c}` in pattern `{pattern}`")
                }
                c => Atom::Literal(c),
            };
            // Optional quantifier.
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for q in chars.by_ref() {
                    if q == '}' {
                        break;
                    }
                    spec.push(q);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (m.parse::<usize>().unwrap(), n.parse::<usize>().unwrap()),
                    None => {
                        let n = spec.parse::<usize>().unwrap();
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..count {
                match &atom {
                    Atom::Literal(l) => out.push(*l),
                    Atom::Class(members) => {
                        out.push(members[rng.below(members.len() as u64) as usize])
                    }
                }
            }
        }
        out
    }
}

/// Everything a property-test module usually imports, mirroring
/// `proptest::prelude::*` (including the `prop` crate alias).
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Uniform choice between strategies, mirroring `proptest::prop_oneof!`.
/// Weighted options (`3 => strat`) are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Declares property tests, mirroring `proptest::proptest!`: each `#[test]`
/// function runs `config.cases` times with inputs drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_generator_matches_class_and_quantifier() {
        let mut rng = TestRng::deterministic("pattern");
        for _ in 0..200 {
            let s = crate::pattern::generate("[a-c]{2,4}x", &mut rng);
            assert!(s.ends_with('x'));
            let body = &s[..s.len() - 1];
            assert!((2..=4).contains(&body.len()));
            assert!(body.chars().all(|c| ('a'..='c').contains(&c)));
        }
    }

    #[test]
    fn union_draws_from_every_option() {
        let mut rng = TestRng::deterministic("union");
        let strat = prop_oneof![Just(1u8), Just(2u8)];
        let seen: std::collections::HashSet<u8> =
            (0..64).map(|_| strat.generate(&mut rng)).collect();
        assert_eq!(seen.len(), 2);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(#[allow(dead_code)] i64),
            Node(Vec<T>),
        }
        let strat = (0i64..10)
            .prop_map(T::Leaf)
            .prop_recursive(3, 8, 4, |inner| {
                crate::collection::vec(inner, 0..3).prop_map(T::Node)
            });
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 0,
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let mut rng = TestRng::deterministic("recursive");
        for _ in 0..100 {
            assert!(depth(&strat.generate(&mut rng)) <= 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_ints_stay_in_range(v in -5i64..5) {
            prop_assert!((-5..5).contains(&v));
        }

        #[test]
        fn vec_lengths_respect_bounds(v in prop::collection::vec(0usize..9, 1..4)) {
            prop_assert!((1..4).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 9));
        }
    }
}
