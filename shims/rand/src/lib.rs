//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network registry, so the workspace wires `rand` to
//! this API-compatible subset (see `shims/README.md`). It covers exactly what the
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`] and
//! [`Rng::gen_range`] over half-open integer ranges.
//!
//! The generator is splitmix64 — statistically fine for synthetic test-data
//! generation, NOT cryptographically secure, and intentionally stable across
//! releases so the 98-task corpus stays byte-for-byte deterministic.

use std::ops::Range;

/// A PRNG that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a half-open range.
pub trait SampleUniform: Copy {
    /// Samples uniformly from `[low, high)` using `next` as the entropy source.
    fn sample(low: Self, high: Self, next: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(low: Self, high: Self, next: u64) -> Self {
                assert!(low < high, "gen_range called with an empty range");
                // Offset arithmetic stays in i128: for signed types the span can
                // exceed the type's positive max, so `low + offset` must not be
                // computed in $t.
                let span = (high as i128 - low as i128) as u128;
                (low as i128 + (next as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing random-number trait (subset: `gen_range`).
pub trait Rng {
    /// Returns the next raw 64 bits of entropy.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let next = self.next_u64();
        T::sample(range.start, range.end, next)
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea & Flood; public domain reference constants).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_sequence() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..5);
            assert!(v < 5);
            let w = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&w));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn gen_range_handles_full_span_signed_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10_000 {
            let v = rng.gen_range(i8::MIN..i8::MAX);
            assert!((i8::MIN..i8::MAX).contains(&v));
        }
    }
}
