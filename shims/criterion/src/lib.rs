//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network registry, so the workspace wires
//! `criterion` to this API-compatible subset (see `shims/README.md`). It keeps the
//! macro/entry-point surface (`criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`) and reports median wall-clock time per iteration as a plain
//! text line per benchmark. It does no statistical analysis, outlier rejection or
//! HTML reporting — the numbers are honest wall-clock medians, nothing more.

use std::fmt;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group, mirroring `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id made of a function name and a displayable parameter.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            function_name: function_name.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function_name, self.parameter)
    }
}

/// Drives the timing loop for one benchmark, mirroring `criterion::Bencher`.
pub struct Bencher {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` repeatedly and records per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            std::hint::black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: `sample_size` samples or until the time budget runs out,
        // whichever comes first (but always at least one sample).
        let budget_start = Instant::now();
        self.samples.clear();
        for i in 0..self.sample_size {
            let t = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t.elapsed());
            if i > 0 && budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }

    fn median(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        Some(sorted[sorted.len() / 2])
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement time budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up time budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let mut bencher = self.bencher();
        f(&mut bencher);
        report(&full, &bencher);
        self
    }

    /// Runs a benchmark parameterized by an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let mut bencher = self.bencher();
        f(&mut bencher, input);
        report(&full, &bencher);
        self
    }

    /// Finishes the group (a no-op in this subset; kept for API compatibility).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }

    fn bencher(&self) -> Bencher {
        Bencher {
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            samples: Vec::new(),
        }
    }
}

fn report(name: &str, bencher: &Bencher) {
    match bencher.median() {
        Some(median) => println!(
            "{name:<60} median {median:>12.3?}  ({} samples)",
            bencher.samples.len()
        ),
        None => println!("{name:<60} (no samples recorded)"),
    }
}

/// The top-level harness handle, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group with default sampling settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }

    /// Runs a stand-alone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(name, f);
        self
    }
}

/// Declares a benchmark group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; this subset runs
            // every group unconditionally and ignores filters.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples_and_median() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(5)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut ran = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0, "routine must run at least once");
    }

    #[test]
    fn benchmark_id_displays_name_and_parameter() {
        assert_eq!(BenchmarkId::new("columns", 3).to_string(), "columns/3");
    }
}
