//! JSON plug-in walkthrough on a YELP-like dataset: synthesize a review-extraction
//! program from a JSON example, run it over a larger document, and emit the JavaScript
//! program a user would deploy.
//!
//! Run with: `cargo run --release --example yelp_json_orders`

use mitra::codegen::Backend;
use mitra::datagen::datasets::document_text;
use mitra::datagen::yelp;
use mitra::synth::synthesize::Example;
use mitra::Mitra;

fn main() {
    let spec = yelp();

    // Build the training example directly from the dataset simulator: the `review`
    // table (business key + review fields) from a two-business sample.
    let (sample, expected) = spec.generate(2);
    let example = Example::new(sample, expected["review"].clone());
    println!(
        "Example: {} elements -> {} review rows x {} columns",
        example.tree.element_count(),
        example.output.len(),
        example.output.arity()
    );

    let mitra = Mitra::with_config(mitra::datagen::datasets::dataset_synth_config());
    let synthesis = mitra.synthesize(&[example]).expect("synthesis");
    println!(
        "Synthesized in {:.2?}; program:\n{}",
        synthesis.elapsed,
        mitra::dsl::pretty::program_summary(&synthesis.program)
    );

    // Run the program over a larger document, going through real JSON text to exercise
    // the JSON plug-in end to end.
    let json = document_text(&spec, 20);
    println!("Full document: {} bytes of JSON", json.len());
    let table = mitra
        .run_on_json(&synthesis.program, &json)
        .expect("execution");
    let (_, expected_large) = spec.generate(20);
    println!(
        "Extracted {} review rows (expected {})",
        table.len(),
        expected_large["review"].len()
    );
    assert_eq!(table.len(), expected_large["review"].len());

    // Emit the JavaScript artifact (the Mitra-json backend of the paper).
    let js = mitra.emit(&synthesis.program, Backend::JavaScript);
    println!("\nGenerated JavaScript ({} LOC):\n{}", js.loc(), js.source);
}
