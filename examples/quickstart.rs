//! Quickstart: synthesize a tree-to-table program from one small example and run it on
//! a bigger document.
//!
//! Run with: `cargo run --release --example quickstart`

use mitra::codegen::Backend;
use mitra::Mitra;

fn main() {
    // 1. A small XML document and the relational table we want from it.
    let example_xml = r#"<catalog>
      <book><isbn>1</isbn><title>Dune</title><author>Herbert</author></book>
      <book><isbn>2</isbn><title>Foundation</title><author>Asimov</author></book>
    </catalog>"#;
    let example_output = "isbn,title,author\n1,Dune,Herbert\n2,Foundation,Asimov\n";

    // 2. Synthesize the transformation program.
    let mitra = Mitra::new();
    let synthesis = mitra
        .synthesize_from_xml(&[(example_xml, example_output)])
        .expect("synthesis should succeed");
    println!(
        "Synthesized in {:?} (cost: {:?})",
        synthesis.elapsed, synthesis.cost
    );
    println!(
        "{}",
        mitra::dsl::pretty::program_summary(&synthesis.program)
    );

    // 3. Apply the program to a larger document that the synthesizer never saw.
    let full_xml = r#"<catalog>
      <book><isbn>1</isbn><title>Dune</title><author>Herbert</author></book>
      <book><isbn>2</isbn><title>Foundation</title><author>Asimov</author></book>
      <book><isbn>3</isbn><title>Solaris</title><author>Lem</author></book>
      <book><isbn>4</isbn><title>Neuromancer</title><author>Gibson</author></book>
    </catalog>"#;
    let table = mitra
        .run_on_xml(&synthesis.program, full_xml)
        .expect("execution should succeed");
    println!(
        "Resulting table ({} rows):\n{}",
        table.len(),
        table.to_csv()
    );

    // 4. Emit executable XSLT for use outside this library.
    let xslt = mitra.emit(&synthesis.program, Backend::Xslt);
    println!(
        "Generated XSLT ({} lines of code):\n{}",
        xslt.loc(),
        xslt.source
    );
}
