//! The paper's motivating example (Section 2): convert a social-network XML document
//! mapping persons to friend ids into a `(Person, Friend-with, years)` table.
//!
//! Run with: `cargo run --release --example social_network`

use mitra::datagen::social;
use mitra::synth::exec::execute_with_stats;
use mitra::synth::optimize::analyze;
use mitra::synth::synthesize::{learn_transformation, SynthConfig};
use mitra::Mitra;
use std::time::Instant;

fn main() {
    // The training example: a three-person network (representative enough to pin down
    // the intended friendship-join program).
    let example = social::training_example();
    println!(
        "Training example: {} elements, {} output rows",
        example.tree.element_count(),
        example.output.len()
    );

    let start = Instant::now();
    let synthesis = learn_transformation(std::slice::from_ref(&example), &SynthConfig::default())
        .expect("synthesis");
    println!(
        "Synthesized in {:.2?} ({} candidate table extractors tried, {} consistent programs)",
        start.elapsed(),
        synthesis.candidates_tried,
        synthesis.programs_found
    );
    println!(
        "{}",
        mitra::dsl::pretty::program_summary(&synthesis.program)
    );

    // Appendix C analysis: which predicate clauses become joins / pushed-down filters.
    let report = analyze(&example.tree, &synthesis.program);
    println!(
        "Optimizer: {} clauses turned into joins/filters, {} residual atoms, {} shared prefixes",
        report.optimized_clauses,
        report.residual_atoms,
        report.shared_prefixes.len()
    );

    // Scale up: run the synthesized program over much larger documents.
    for persons in [1_000usize, 10_000, 50_000] {
        let doc = social::social_network(persons, 2);
        let start = Instant::now();
        let (table, stats) = execute_with_stats(&doc, &synthesis.program);
        println!(
            "persons={persons:>6}  elements={:>7}  rows={:>7}  tuples considered={:>8}  time={:.2?}",
            doc.element_count(),
            table.len(),
            stats.tuples_considered,
            start.elapsed()
        );
        assert!(table.same_bag(&social::expected_table(persons, 2)));
    }

    // The engine also works directly from XML text via the plug-in. The
    // attribute-style rendering (Figure 2a) parses to the same HDT shape as the
    // programmatic tree, so the synthesized program applies unchanged; the
    // element-text rendering would put values one level deeper and match nothing.
    let mitra = Mitra::new();
    let xml = social::social_network_xml_attrs(100, 1);
    let table = mitra
        .run_on_xml(&synthesis.program, &xml)
        .expect("run on xml");
    println!("From XML text (100 persons): {} rows", table.len());
    assert_eq!(
        table.len(),
        100,
        "every person contributes one friendship row"
    );
}
