//! End-to-end motivation demo: migrate a JSON dataset into a relational database with
//! example-driven synthesis, then answer SQL questions over the result — the use case
//! that motivates the paper's Section 1 ("data stored in an XML document may need to be
//! queried by an existing application that interacts with a relational database").
//!
//! Run with: `cargo run --release --example query_migrated_db`

use mitra::datagen::yelp;
use mitra::migrate::query::run_query;
use mitra::migrate::sql::dump_ddl;

fn main() {
    // 1. A YELP-like JSON dataset (businesses, reviews, users, ...) and its target
    //    relational schema: 7 tables, 34 columns, with primary and foreign keys —
    //    the same shape as the paper's Table 2 row for YELP.
    let spec = yelp();
    let (document, _expected) = spec.generate(40);
    println!(
        "Input document: {} elements; target schema: {} tables / {} columns",
        document.element_count(),
        spec.table_count(),
        spec.schema().total_columns()
    );

    // 2. Migrate: one synthesized program per table, executed with the optimized engine.
    let plan = spec.migration_plan();
    let report = plan.run(&document).expect("migration should succeed");
    println!(
        "Migrated {} rows in {:.2}s (synthesis {:.2}s); constraint violations: {}",
        report.total_rows(),
        report.total_execution_time().as_secs_f64(),
        report.total_synthesis_time().as_secs_f64(),
        report.database.check_constraints().len()
    );

    // 3. The schema the database now conforms to.
    println!("\n{}", dump_ddl(&report.database.schema));

    // 4. Ask relational questions that would be painful against the raw JSON.
    for sql in [
        "SELECT COUNT(*) FROM business",
        "SELECT business_city, COUNT(*) FROM business GROUP BY business_city ORDER BY business_city",
        "SELECT business.business_name, COUNT(review.review_id) FROM review \
         JOIN business ON review.business_business_id = business.business_id \
         GROUP BY business.business_name ORDER BY business.business_name LIMIT 5",
    ] {
        println!("\n> {sql}");
        match run_query(&report.database, sql) {
            Ok(table) => print!("{}", table.to_csv()),
            Err(e) => println!("query failed: {e}"),
        }
    }
}
