//! HTML plug-in demo: learn a table-extraction program from a messy HTML page and apply
//! it to a larger page, mirroring the "other hierarchical formats" extensibility note
//! of Section 6 of the paper.
//!
//! Run with: `cargo run --release --example html_scrape`

use mitra::codegen::Backend;
use mitra::Mitra;

fn main() {
    // 1. A small, imperfect HTML page (unclosed <li>/<th>/<td> tags, value-less
    //    attributes, accessible row headers) and the relational view we want of its
    //    product table.
    let example_html = r#"<!DOCTYPE html>
    <html><body>
      <h1>Price list</h1>
      <table id="products">
        <tr><th scope=row>Keyboard<td class="price">45
        <tr><th scope=row>Mouse<td class="price">19
      </table>
      <ul><li>shipping is extra<li>prices in EUR</ul>
    </body></html>"#;
    let example_output = "name,price\nKeyboard,45\nMouse,19\n";

    // 2. Synthesize the extraction program through the HTML plug-in.
    let mitra = Mitra::new();
    let synthesis = mitra
        .synthesize_from_html(&[(example_html, example_output)])
        .expect("synthesis should succeed");
    println!(
        "Synthesized in {:?} (cost: {:?})",
        synthesis.elapsed, synthesis.cost
    );
    println!(
        "{}",
        mitra::dsl::pretty::program_summary(&synthesis.program)
    );

    // 3. Run it on a longer page the synthesizer never saw.
    let full_html = r#"<html><body>
      <table id="products">
        <tr><th scope=row>Keyboard<td class="price">45</tr>
        <tr><th scope=row>Mouse<td class="price">19</tr>
        <tr><th scope=row>Monitor<td class="price">210</tr>
        <tr><th scope=row>Webcam<td class="price">60</tr>
        <tr><th scope=row>Dock<td class="price">120</tr>
      </table>
    </body></html>"#;
    let table = mitra
        .run_on_html(&synthesis.program, full_html)
        .expect("execution should succeed");
    println!(
        "Extracted table ({} rows):\n{}",
        table.len(),
        table.to_csv()
    );

    // 4. The XSLT back end still applies (HTML maps to the same HDT shape as XML).
    let xslt = mitra.emit(&synthesis.program, Backend::Xslt);
    println!("Generated XSLT is {} lines of code", xslt.loc());
}
