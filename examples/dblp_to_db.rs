//! Migrate a DBLP-like XML bibliography into a full relational database (the Table 2
//! scenario): one synthesized program per target table, key constraints checked, and a
//! SQL dump emitted at the end.
//!
//! Run with: `cargo run --release --example dblp_to_db`

use mitra::datagen::dblp;
use mitra::migrate::sql::dump_sql;
use std::time::Instant;

fn main() {
    let spec = dblp();
    let schema = spec.schema();
    println!(
        "Target schema: {} tables, {} columns",
        spec.table_count(),
        schema.total_columns()
    );

    // Build the example-based migration plan (one small input-output example per table,
    // as a Mitra user would provide) and run it against a larger generated document.
    let plan = spec.migration_plan();
    let (document, expected) = spec.generate(25);
    println!(
        "Source document: {} nodes ({} expected rows)",
        document.len(),
        spec.expected_rows(25)
    );

    let start = Instant::now();
    let report = plan.run(&document).expect("migration should succeed");
    println!(
        "Migration finished in {:.2?}: {} rows across {} tables, {} constraint violations",
        start.elapsed(),
        report.total_rows(),
        report.tables.len(),
        report.violations
    );
    println!(
        "  total synthesis time {:.2?}, total execution time {:.2?}",
        report.total_synthesis_time(),
        report.total_execution_time()
    );
    for table in &report.tables {
        println!(
            "  {:<22} rows={:<6} synth={:>8.2?} exec={:>8.2?}",
            table.table, table.rows, table.synthesis_time, table.execution_time
        );
        let expected_rows = expected.get(&table.table).map(|t| t.len()).unwrap_or(0);
        assert_eq!(
            table.rows, expected_rows,
            "row count mismatch for {}",
            table.table
        );
    }

    // Emit the first few lines of the SQL dump.
    let sql = dump_sql(&report.database);
    let preview: Vec<&str> = sql.lines().take(20).collect();
    println!("\nSQL dump preview:\n{}", preview.join("\n"));
    println!("... ({} total lines)", sql.lines().count());
}
