//! Implementations of the CLI subcommands.
//!
//! Every command is a pure function from parsed inputs (document text, example CSV,
//! options) to a rendered output string, so the commands are unit-testable without
//! touching the filesystem; [`crate::run_cli`] wires them to files and stdout.

use mitra_codegen::{generate, Backend};
use mitra_core::{parse_csv_table, Mitra, MitraError};
use mitra_datagen::corpus::generate_corpus;
use mitra_datagen::datasets::{all_datasets, dataset_synth_config, DatasetSpec};
use mitra_dsl::parse::parse_program;
use mitra_dsl::pretty;
use mitra_dsl::validate::validate_against;
use mitra_hdt::Hdt;
use mitra_migrate::query::run_query;
use mitra_synth::budget::Budget;
use mitra_synth::exec::execute;
use std::fmt::Write as _;
use std::time::Instant;

use crate::CliError;

/// Input document formats the CLI understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// XML documents (the Mitra-xml plug-in).
    Xml,
    /// JSON documents (the Mitra-json plug-in).
    Json,
    /// HTML documents (the HTML plug-in).
    Html,
}

impl Format {
    /// Parses a `--format` value.
    pub fn from_option(text: &str) -> Result<Format, CliError> {
        match text.to_ascii_lowercase().as_str() {
            "xml" => Ok(Format::Xml),
            "json" => Ok(Format::Json),
            "html" | "htm" => Ok(Format::Html),
            other => Err(CliError::Usage(format!(
                "unknown format `{other}` (expected xml, json or html)"
            ))),
        }
    }

    /// Infers the format from a file name, falling back to XML.
    pub fn from_path(path: &str) -> Format {
        let lower = path.to_ascii_lowercase();
        if lower.ends_with(".json") {
            Format::Json
        } else if lower.ends_with(".html") || lower.ends_with(".htm") {
            Format::Html
        } else {
            Format::Xml
        }
    }

    /// Parses a document of this format into an HDT.
    pub fn parse(self, document: &str) -> Result<Hdt, CliError> {
        let tree = match self {
            Format::Xml => mitra_hdt::xml::xml_to_hdt(document),
            Format::Json => mitra_hdt::json::json_to_hdt(document),
            Format::Html => mitra_hdt::html::html_to_hdt(document),
        };
        Ok(tree.map_err(MitraError::from)?)
    }

    /// The natural code-generation backend for this format.
    pub fn backend(self) -> Backend {
        match self {
            Format::Xml | Format::Html => Backend::Xslt,
            Format::Json => Backend::JavaScript,
        }
    }
}

/// What `synthesize` should print.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EmitKind {
    /// The DSL program in the paper's textual syntax.
    Dsl,
    /// An XSLT stylesheet (the Mitra-xml back end).
    Xslt,
    /// A JavaScript program (the Mitra-json back end).
    JavaScript,
}

impl EmitKind {
    /// Parses an `--emit` value.
    pub fn from_option(text: &str) -> Result<EmitKind, CliError> {
        match text.to_ascii_lowercase().as_str() {
            "dsl" | "program" => Ok(EmitKind::Dsl),
            "xslt" | "xsl" => Ok(EmitKind::Xslt),
            "js" | "javascript" => Ok(EmitKind::JavaScript),
            other => Err(CliError::Usage(format!(
                "unknown emit target `{other}` (expected dsl, xslt or js)"
            ))),
        }
    }
}

/// `synthesize`: learn a program from one (document, output CSV) example.
///
/// Returns the rendered output (program text plus a short report).
pub fn synthesize(
    document: &str,
    output_csv: &str,
    format: Format,
    emit: EmitKind,
) -> Result<String, CliError> {
    let mitra = Mitra::new();
    let examples = [(document, output_csv)];
    let start = Instant::now();
    let synthesis = match format {
        Format::Xml => mitra.synthesize_from_xml(&examples),
        Format::Json => mitra.synthesize_from_json(&examples),
        Format::Html => mitra.synthesize_from_html(&examples),
    }
    .map_err(CliError::from)?;
    let elapsed = start.elapsed();

    let mut out = String::new();
    match emit {
        EmitKind::Dsl => out.push_str(&pretty::program(&synthesis.program)),
        EmitKind::Xslt => out.push_str(&generate(&synthesis.program, Backend::Xslt).source),
        EmitKind::JavaScript => {
            out.push_str(&generate(&synthesis.program, Backend::JavaScript).source)
        }
    }
    if !out.ends_with('\n') {
        out.push('\n');
    }
    let _ = writeln!(
        out,
        "-- synthesized in {:.2}s ({} candidate table extractors, {} consistent programs, {} predicate atoms)",
        elapsed.as_secs_f64(),
        synthesis.candidates_tried,
        synthesis.programs_found,
        synthesis.cost.atoms,
    );
    Ok(out)
}

/// `run`: evaluate a DSL program (in the paper's textual syntax) over a document and
/// render the resulting table as CSV.  Validation warnings are prepended as `--`
/// comment lines.
pub fn run_program(
    document: &str,
    program_text: &str,
    format: Format,
    explain: bool,
) -> Result<String, CliError> {
    let program = parse_program(program_text).map_err(MitraError::from)?;
    let tree = format.parse(document)?;

    let validation = validate_against(&program, &tree);
    if !validation.is_valid() {
        let messages: Vec<String> = validation
            .errors()
            .iter()
            .map(|d| d.message.clone())
            .collect();
        return Err(CliError::Input(format!(
            "program failed validation: {}",
            messages.join("; ")
        )));
    }

    let mut out = String::new();
    for warning in validation.warnings() {
        let _ = writeln!(out, "-- warning: {}", warning.message);
    }
    if explain {
        // `--explain`: render the cost-based query plan instead of executing it.
        out.push_str(&mitra_synth::plan_with_tree(&program, &tree).explain(&program));
        return Ok(out);
    }
    let table = execute(&tree, &program);
    out.push_str(&table.to_csv());
    Ok(out)
}

/// `corpus`: run the first `limit` tasks of the 98-task benchmark corpus and print a
/// per-task line plus a Table 1-style summary.
pub fn corpus_report(limit: usize) -> String {
    let tasks = generate_corpus();
    let config = mitra_bench::table1_config();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<4} {:<34} {:>6} {:>9} {:>7}",
        "id", "task", "format", "time(s)", "solved"
    );
    let mut solved = 0usize;
    let mut times = Vec::new();
    for task in tasks.iter().take(limit) {
        let result = mitra_bench::run_task(task, &config);
        if result.solved {
            solved += 1;
        }
        times.push(result.time.as_secs_f64());
        let _ = writeln!(
            out,
            "{:<4} {:<34} {:>6} {:>9.2} {:>7}",
            result.id,
            truncate(&result.name, 34),
            format!("{:?}", result.format),
            result.time.as_secs_f64(),
            if result.solved { "yes" } else { "no" },
        );
    }
    let attempted = limit.min(tasks.len());
    let _ = writeln!(
        out,
        "solved {solved}/{attempted} tasks; median {:.2}s, average {:.2}s",
        mitra_bench::median(&times),
        mitra_bench::mean(&times),
    );
    out
}

/// `corpus run` / `corpus resume`: render the finished [`CorpusReport`] as a
/// human-readable summary pointing at the artifacts on disk.
pub fn corpus_service_summary(report: &mitra_migrate::CorpusReport, out_dir: &str) -> String {
    let mut out = String::new();
    let wall = report.wall.as_secs_f64().max(f64::EPSILON);
    let _ = writeln!(
        out,
        "corpus: {} documents in {} shards ({} resumed from the journal)",
        report.docs, report.shards, report.resumed_shards
    );
    let _ = writeln!(
        out,
        "shapes: {} distinct; {} programs synthesized (cached per shape)",
        report.shapes, report.programs_synthesized
    );
    let _ = writeln!(
        out,
        "migrated: {} ok, {} quarantined, {} budget retries, {} constraint violations",
        report.ok_docs,
        report.quarantined.len(),
        report.retried,
        report.violations
    );
    for (table, rows) in &report.table_rows {
        let _ = writeln!(out, "table {table}: {rows} rows");
    }
    let _ = writeln!(
        out,
        "throughput: {:.1} docs/s, {:.1} rows/s over {:.2}s (synthesis {:.2}s, execution {:.2}s)",
        report.docs as f64 / wall,
        report.total_rows() as f64 / wall,
        wall,
        report.synth_wall.as_secs_f64(),
        report.exec_wall.as_secs_f64(),
    );
    let _ = writeln!(
        out,
        "artifacts: {out_dir}/tables/*.csv, {out_dir}/failure_ledger.jsonl, {out_dir}/summary.json"
    );
    out
}

/// `datasets`: migrate one of the built-in dataset simulators into a relational
/// database at the given scale and optionally run a SQL query over the result.
///
/// Under `strict`, any degraded table aborts the whole migration with the first
/// failure; otherwise degraded tables are reported per-table and the healthy
/// remainder still populates.  `budget` caps synthesis/execution fuel per table
/// (candidates popped, DFA states built, rows materialized) — exhaustion degrades
/// that table to `budget-exhausted` instead of running unboundedly.
pub fn migrate_dataset(
    name: &str,
    per_entity: usize,
    query: Option<&str>,
    strict: bool,
    budget: Budget,
) -> Result<String, CliError> {
    let spec = find_dataset(name)?;
    let (document, _expected) = spec.generate(per_entity);
    let mut plan = spec.migration_plan().with_strict(strict);
    plan.synth_config.budget = budget;
    let report = plan.run(&document).map_err(MitraError::from)?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "dataset {}: {} tables, {} columns, {} rows migrated in {:.2}s (synthesis {:.2}s)",
        spec.name,
        spec.table_count(),
        spec.schema().total_columns(),
        report.total_rows(),
        report.total_execution_time().as_secs_f64(),
        report.total_synthesis_time().as_secs_f64(),
    );
    let violations = report.database.check_constraints();
    let _ = writeln!(out, "constraint violations: {}", violations.len());
    for table in &report.tables {
        if table.outcome.is_ok() {
            let _ = writeln!(
                out,
                "  {:<24} {:>8} rows  synth {:>6.2}s  exec {:>6.2}s",
                table.table,
                table.rows,
                table.synthesis_time.as_secs_f64(),
                table.execution_time.as_secs_f64(),
            );
        } else {
            let _ = writeln!(
                out,
                "  {:<24} {:>16}  {}",
                table.table,
                table.outcome.label(),
                table.outcome,
            );
        }
    }
    let degradation = report.degradation();
    if report.is_degraded() {
        let _ = writeln!(
            out,
            "degraded: {} ok, {} budget-exhausted, {} failed, {} skipped",
            degradation.ok, degradation.budget_exhausted, degradation.failed, degradation.skipped,
        );
    }
    if report.all_failed() {
        return Err(CliError::Synthesis(format!(
            "no table migrated: {}",
            report.summary_json()
        )));
    }
    if let Some(sql) = query {
        let result = run_query(&report.database, sql).map_err(MitraError::from)?;
        let _ = writeln!(out, "query: {sql}");
        out.push_str(&result.to_csv());
    }
    Ok(out)
}

/// Lists the built-in dataset simulators.
pub fn list_datasets() -> String {
    let mut out = String::new();
    for spec in all_datasets() {
        let _ = writeln!(
            out,
            "{:<10} {:>2} tables {:>4} columns ({})",
            spec.name,
            spec.table_count(),
            spec.schema().total_columns(),
            spec.format,
        );
    }
    out
}

fn find_dataset(name: &str) -> Result<DatasetSpec, CliError> {
    all_datasets()
        .into_iter()
        .find(|d| d.name.eq_ignore_ascii_case(name))
        .ok_or_else(|| {
            CliError::Usage(format!(
                "unknown dataset `{name}` (expected one of: {})",
                all_datasets()
                    .iter()
                    .map(|d| d.name.to_ascii_lowercase())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
}

/// Makes sure the synthesis configuration used for dataset migrations is exposed for
/// interested callers (the CLI prints it with `--verbose`).
pub fn dataset_config_summary() -> String {
    let config = dataset_synth_config();
    format!(
        "dataset synthesis config: {} column candidates, {} table candidates, timeout {:?}",
        config.max_column_candidates, config.max_table_candidates, config.timeout
    )
}

/// Validates an example CSV early so the user gets a CSV error rather than a synthesis
/// failure when the output example is malformed.
pub fn check_output_example(csv: &str) -> Result<(), CliError> {
    parse_csv_table(csv).map(|_| ()).map_err(CliError::from)
}

fn truncate(s: &str, max: usize) -> String {
    if s.len() <= max {
        s.to_string()
    } else {
        format!("{}…", &s[..max.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const XML: &str = r#"<root>
      <person><name>Ada</name><role>engineer</role></person>
      <person><name>Grace</name><role>admiral</role></person>
    </root>"#;
    const OUT: &str = "name,role\nAda,engineer\nGrace,admiral\n";

    #[test]
    fn format_detection_and_parsing() {
        assert_eq!(Format::from_path("a/b/doc.json"), Format::Json);
        assert_eq!(Format::from_path("page.HTML"), Format::Html);
        assert_eq!(Format::from_path("data.xml"), Format::Xml);
        assert_eq!(Format::from_path("noext"), Format::Xml);
        assert!(Format::from_option("yaml").is_err());
        assert!(Format::Xml.parse(XML).is_ok());
        assert!(Format::Json.parse("{\"a\": 1}").is_ok());
        assert!(Format::Json.parse("{broken").is_err());
    }

    #[test]
    fn synthesize_emits_dsl_and_code() {
        let dsl = synthesize(XML, OUT, Format::Xml, EmitKind::Dsl).unwrap();
        assert!(dsl.contains("filter"));
        assert!(dsl.contains("synthesized in"));
        let xslt = synthesize(XML, OUT, Format::Xml, EmitKind::Xslt).unwrap();
        assert!(xslt.contains("xsl:stylesheet"));
        let js = synthesize(XML, OUT, Format::Xml, EmitKind::JavaScript).unwrap();
        assert!(js.contains("function transform"));
    }

    #[test]
    fn synthesize_reports_failures() {
        let err = synthesize(XML, "name\nNotInTheDocument\n", Format::Xml, EmitKind::Dsl);
        assert!(matches!(err, Err(CliError::Synthesis(_))));
    }

    #[test]
    fn run_round_trips_a_synthesized_program() {
        // Synthesize, print the DSL program, parse it back, and run it: the output must
        // match the original example.
        let printed = synthesize(XML, OUT, Format::Xml, EmitKind::Dsl).unwrap();
        let program_text: String = printed
            .lines()
            .filter(|l| !l.starts_with("--"))
            .collect::<Vec<_>>()
            .join("\n");
        let csv = run_program(XML, &program_text, Format::Xml, false).unwrap();
        assert!(csv.contains("Ada,engineer"));
        assert!(csv.contains("Grace,admiral"));
    }

    #[test]
    fn run_rejects_invalid_programs() {
        assert!(run_program(XML, "not a program", Format::Xml, false).is_err());
    }

    #[test]
    fn run_warns_about_foreign_tags() {
        // A program that references tags absent from the document still runs, but the
        // CSV is prefixed with warning comments.
        let program_text =
            "\\tau. filter((\\s.pchildren(children(s, nosuch), name, 0)){root(tau)}, \\t. true)";
        let out = run_program(XML, program_text, Format::Xml, false).unwrap();
        assert!(out.contains("-- warning"));
    }

    #[test]
    fn corpus_report_runs_a_prefix_of_the_suite() {
        // Unoptimized synthesis is slow, so the dev-profile run covers fewer tasks.
        let limit = if cfg!(debug_assertions) { 1 } else { 3 };
        let report = corpus_report(limit);
        assert!(report.contains("solved"));
        assert!(report.lines().count() >= limit + 2);
    }

    #[test]
    fn dataset_listing_and_lookup() {
        let listing = list_datasets();
        for name in ["DBLP", "IMDB", "MONDIAL", "YELP"] {
            assert!(listing.contains(name), "{listing}");
        }
        assert!(find_dataset("imdb").is_ok());
        assert!(find_dataset("oracle").is_err());
        assert!(!dataset_config_summary().is_empty());
    }

    #[test]
    fn migrate_dataset_with_query() {
        let scale = if cfg!(debug_assertions) { 2 } else { 3 };
        let out = migrate_dataset(
            "yelp",
            scale,
            Some("SELECT COUNT(*) FROM business"),
            false,
            Budget::UNLIMITED,
        )
        .unwrap();
        assert!(out.contains("constraint violations: 0"), "{out}");
        assert!(out.contains("COUNT(*)"), "{out}");
        assert!(!out.contains("degraded:"), "{out}");
    }

    #[test]
    fn migrate_dataset_under_a_zero_budget_degrades_every_table() {
        // A zero-candidate fuel budget exhausts every table; with every table
        // degraded the non-strict run still returns a report, but the CLI treats
        // an all-failed migration as a synthesis error.
        let exhausted = Budget {
            max_candidates: Some(0),
            ..Budget::UNLIMITED
        };
        let err = migrate_dataset("yelp", 2, None, false, exhausted).unwrap_err();
        match err {
            CliError::Synthesis(msg) => {
                assert!(msg.contains("no table migrated"), "{msg}");
                assert!(msg.contains("budget_exhausted"), "{msg}");
            }
            other => panic!("expected a synthesis error, got {other:?}"),
        }
    }

    #[test]
    fn migrate_dataset_strict_aborts_on_the_first_exhausted_table() {
        let exhausted = Budget {
            max_candidates: Some(0),
            ..Budget::UNLIMITED
        };
        let err = migrate_dataset("yelp", 2, None, true, exhausted).unwrap_err();
        assert!(
            matches!(&err, CliError::Synthesis(msg) if msg.contains("fuel exhausted")),
            "{err:?}"
        );
    }

    #[test]
    fn output_example_validation() {
        assert!(check_output_example(OUT).is_ok());
        assert!(check_output_example("").is_err());
        assert!(check_output_example("a,b\n1\n").is_err());
    }
}
