//! # mitra-cli — command-line front end for the Mitra reproduction
//!
//! The binary wires the library crates to files and stdout:
//!
//! ```text
//! mitra-cli synthesize --input doc.xml --output example.csv [--format xml|json|html]
//!                      [--emit dsl|xslt|js] [--out program.txt]
//! mitra-cli run        --program program.dsl --input big.xml [--format ...] [--out rows.csv] [--explain]
//! mitra-cli corpus     [--limit N]
//! mitra-cli corpus gen --out F [--docs N] [--seed S] [--malformed-pct P]
//! mitra-cli corpus run|resume --input F --out-dir D [--shard-size N] [--retries K] [--budget-rows N]
//! mitra-cli datasets
//! mitra-cli migrate    <dblp|imdb|mondial|yelp> [--scale N] [--query 'SELECT ...'] [--strict]
//!                      [--budget-candidates N] [--budget-dfa-states N] [--budget-rows N]
//! ```
//!
//! All the work happens in [`commands`], which operates on strings and is therefore
//! unit-testable; [`run_cli`] performs the I/O.

pub mod args;
pub mod commands;

use args::ParsedArgs;
use commands::{EmitKind, Format};
use std::fmt;
use std::fs;

/// Errors surfaced to the user by the CLI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// The command line itself is malformed.
    Usage(String),
    /// An input file or document could not be read or parsed.
    Input(String),
    /// Synthesis or migration failed.
    Synthesis(String),
    /// Writing an output file failed.
    Output(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage error: {m}"),
            CliError::Input(m) => write!(f, "input error: {m}"),
            CliError::Synthesis(m) => write!(f, "synthesis error: {m}"),
            CliError::Output(m) => write!(f, "output error: {m}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<mitra_core::MitraError> for CliError {
    /// Routes the unified library error into the CLI's user-facing categories:
    /// synthesis/migration failures are reported as synthesis errors, everything
    /// else (document parsing, bad examples, bad programs, bad queries) as input
    /// errors.
    fn from(e: mitra_core::MitraError) -> Self {
        use mitra_core::MitraError;
        match &e {
            MitraError::Synthesis(_)
            | MitraError::Migration(_)
            | MitraError::BudgetExhausted(_) => CliError::Synthesis(e.to_string()),
            MitraError::Parse(_)
            | MitraError::BadOutputExample(_)
            | MitraError::DslParse(_)
            | MitraError::Eval(_)
            | MitraError::Query(_)
            | MitraError::Schema(_) => CliError::Input(e.to_string()),
        }
    }
}

/// The help text printed by `mitra-cli help` (and on usage errors).
pub const USAGE: &str = "mitra-cli — programming-by-example migration of hierarchical data to relational tables

USAGE:
    mitra-cli synthesize --input <doc> --output <example.csv> [--format xml|json|html] [--emit dsl|xslt|js] [--out <file>]
    mitra-cli run --program <program.dsl> --input <doc> [--format xml|json|html] [--out <file>] [--explain]
    mitra-cli corpus [--limit <n>]
    mitra-cli corpus gen --out <file> [--docs <n>] [--seed <s>] [--malformed-pct <p>]
    mitra-cli corpus run --input <file> --out-dir <dir> [--shard-size <n>] [--retries <k>] [--budget-rows <n>]
    mitra-cli corpus resume --input <file> --out-dir <dir> [--shard-size <n>] [--retries <k>] [--budget-rows <n>]
    mitra-cli datasets
    mitra-cli migrate <dblp|imdb|mondial|yelp> [--scale <per-entity>] [--query <sql>] [--strict]
                      [--budget-candidates <n>] [--budget-dfa-states <n>] [--budget-rows <n>]
    mitra-cli help

Every command accepts --threads <n>: the number of worker threads for synthesis and
execution (default: the MITRA_THREADS environment variable, else all available
cores; 1 forces the sequential path).  Results are identical at every thread count.

Every command also accepts --trace-out <file> and/or --trace-folded <file>: record a
full trace of the run (spans across ingest, synthesis, execution and the worker
pool) and write Chrome trace-event JSON — load it in Perfetto (ui.perfetto.dev) or
chrome://tracing — or folded stacks for flamegraph tooling.  Tracing never changes
results; without these flags the MITRA_TRACE environment variable (off|summary|full,
default summary) picks how much the always-on metrics layer records.

The synthesize command learns a transformation program from a single input document and
the relational table it should produce (given as CSV with a header line).  The run
command executes a previously saved program (in the textual DSL syntax) over a new,
usually much larger, document; with --explain it prints the cost-based query plan
(scan / interval-join / hash-join / cross steps with cardinality estimates) instead
of executing the program.

The corpus service (`corpus gen` / `corpus run` / `corpus resume`) migrates a
whole corpus of documents — one document per line — through the checkpointed
pipeline of DESIGN.md §12: programs are synthesized once per document *shape*
and cached, shards execute in deterministic waves, every completed shard is
journaled (fsync'd, fixed field order) so `corpus resume` after a crash replays
only unfinished shards and produces byte-identical tables, and malformed or
budget-exhausted documents land in `<out-dir>/failure_ledger.jsonl` with a
typed error instead of aborting the run.

The migrate command accepts deterministic fuel budgets: --budget-candidates,
--budget-dfa-states and --budget-rows cap, per table, the candidate programs
examined, the DFA states built, and the rows materialized (unset means unlimited).
Budgets count work, never wall-clock, so a given budget degrades identically on
every machine and at every thread count.  By default a table whose budget runs out
(or whose synthesis fails or panics) is reported as degraded while the remaining
tables still migrate; --strict restores fail-fast behaviour, aborting the whole
migration on the first problem.";

/// Runs the CLI on already-split arguments and returns the text to print.
///
/// Separated from `main` so integration tests can drive the full command dispatch
/// without spawning a process.
pub fn run_cli<I, S>(raw_args: I) -> Result<String, CliError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let args = ParsedArgs::parse(raw_args).map_err(CliError::Usage)?;
    // `--threads N` configures the process-global worker pool before any command
    // runs; 0 (the default) leaves the MITRA_THREADS / auto-detection chain in
    // charge.  Thread count never changes results, only wall-clock time.
    let threads = args.numeric_option("threads", 0).map_err(CliError::Usage)?;
    if threads > 0 {
        mitra_pool::set_threads(threads);
    }
    let Some(command) = args.command.clone() else {
        return Ok(USAGE.to_string());
    };

    // `--trace-out` / `--trace-folded` record a full trace of the command and write
    // the Chrome trace-event JSON (Perfetto / chrome://tracing) or folded stacks
    // (flamegraph input) after it completes.  Tracing never changes results — only
    // what gets recorded (DESIGN.md §9).
    let tracing = args.option("trace-out").is_some() || args.option("trace-folded").is_some();
    if tracing {
        mitra_trace::set_mode(mitra_trace::TraceMode::Full);
        mitra_trace::clear_events();
    }
    let result = dispatch(&args, &command);
    if tracing {
        let events = mitra_trace::take_events();
        if let Some(path) = args.option("trace-out") {
            fs::write(path, mitra_trace::export::chrome_trace(&events))
                .map_err(|e| CliError::Output(format!("cannot write `{path}`: {e}")))?;
        }
        if let Some(path) = args.option("trace-folded") {
            fs::write(path, mitra_trace::export::folded_stacks(&events))
                .map_err(|e| CliError::Output(format!("cannot write `{path}`: {e}")))?;
        }
    }
    result
}

/// Dispatches one parsed command line to its [`commands`] implementation.
fn dispatch(args: &ParsedArgs, command: &str) -> Result<String, CliError> {
    match command {
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        "synthesize" => {
            let input_path = args.require("input").map_err(CliError::Usage)?;
            let output_path = args.require("output").map_err(CliError::Usage)?;
            let document = read_file(input_path)?;
            let example = read_file(output_path)?;
            commands::check_output_example(&example)?;
            let format = resolve_format(args, input_path)?;
            let emit = match args.option("emit") {
                Some(kind) => EmitKind::from_option(kind)?,
                None => EmitKind::Dsl,
            };
            let rendered = commands::synthesize(&document, &example, format, emit)?;
            write_or_return(args, rendered)
        }
        "run" => {
            let program_path = args.require("program").map_err(CliError::Usage)?;
            let input_path = args.require("input").map_err(CliError::Usage)?;
            let program_text = read_file(program_path)?;
            let document = read_file(input_path)?;
            let format = resolve_format(args, input_path)?;
            // Strip report/comment lines so `synthesize --out p.dsl` output can be fed
            // back directly.
            let program_text: String = program_text
                .lines()
                .filter(|l| !l.trim_start().starts_with("--"))
                .collect::<Vec<_>>()
                .join("\n");
            let rendered =
                commands::run_program(&document, &program_text, format, args.has_flag("explain"))?;
            write_or_return(args, rendered)
        }
        "corpus" => match args.positional.first().map(String::as_str) {
            None => {
                let limit = args.numeric_option("limit", 98).map_err(CliError::Usage)?;
                Ok(commands::corpus_report(limit))
            }
            Some("gen") => corpus_gen(args),
            Some(verb @ ("run" | "resume")) => corpus_service(args, verb),
            Some(other) => Err(CliError::Usage(format!(
                "unknown corpus subcommand `{other}` (expected gen, run or resume)"
            ))),
        },
        "datasets" => {
            let mut out = commands::list_datasets();
            if args.has_flag("verbose") {
                out.push_str(&commands::dataset_config_summary());
                out.push('\n');
            }
            Ok(out)
        }
        "migrate" => {
            let dataset = args
                .positional
                .first()
                .cloned()
                .ok_or_else(|| CliError::Usage("migrate expects a dataset name".to_string()))?;
            let scale = args.numeric_option("scale", 25).map_err(CliError::Usage)?;
            let budget = mitra_synth::budget::Budget {
                max_candidates: budget_option(args, "budget-candidates")?,
                max_dfa_states: budget_option(args, "budget-dfa-states")?,
                max_rows: budget_option(args, "budget-rows")?,
            };
            let rendered = commands::migrate_dataset(
                &dataset,
                scale,
                args.option("query"),
                args.has_flag("strict"),
                budget,
            )?;
            write_or_return(args, rendered)
        }
        other => Err(CliError::Usage(format!(
            "unknown command `{other}`\n\n{USAGE}"
        ))),
    }
}

/// `corpus gen`: write a seeded mixer corpus (one XML document per line, a
/// configurable fraction corrupted until unparseable) for `corpus run`.
fn corpus_gen(args: &ParsedArgs) -> Result<String, CliError> {
    let out = args.require("out").map_err(CliError::Usage)?;
    let docs = args.numeric_option("docs", 100).map_err(CliError::Usage)?;
    let seed = args.numeric_option("seed", 1).map_err(CliError::Usage)? as u64;
    let malformed_pct = args
        .numeric_option("malformed-pct", 10)
        .map_err(CliError::Usage)?;
    if malformed_pct > 100 {
        return Err(CliError::Usage(
            "option `--malformed-pct` expects a percentage (0-100)".to_string(),
        ));
    }
    let mix = mitra_datagen::fuzz::CorpusMix {
        seed,
        docs,
        malformed_pct: malformed_pct as u32,
        promo_pct: 0,
    };
    let corpus = mitra_datagen::fuzz::mixed_corpus(&mix);
    fs::write(out, &corpus.text)
        .map_err(|e| CliError::Output(format!("cannot write `{out}`: {e}")))?;
    Ok(format!(
        "wrote {docs} documents ({} malformed) to {out}\n",
        corpus.malformed.len()
    ))
}

/// `corpus run` / `corpus resume`: migrate a mixer corpus through the
/// checkpointed corpus service (DESIGN.md §12).  `run` starts fresh; `resume`
/// replays the journal in `--out-dir` and executes only unfinished shards.
fn corpus_service(args: &ParsedArgs, verb: &str) -> Result<String, CliError> {
    let input = args.require("input").map_err(CliError::Usage)?;
    let out_dir = args.require("out-dir").map_err(CliError::Usage)?;
    let text = read_file(input)?;
    let mut job = mitra_datagen::fuzz::mixer_job();
    job.config.shard_size = args
        .numeric_option("shard-size", 32)
        .map_err(CliError::Usage)?;
    let retries = args.numeric_option("retries", 3).map_err(CliError::Usage)?;
    job.config.retry.max_attempts = (retries as u32).max(1);
    job.config.max_rows_per_doc = budget_option(args, "budget-rows")?;
    if verb == "resume" && !std::path::Path::new(out_dir).join("journal.jsonl").exists() {
        return Err(CliError::Input(format!(
            "nothing to resume: `{out_dir}/journal.jsonl` does not exist (run `corpus run` first)"
        )));
    }
    let report = match verb {
        "resume" => mitra_migrate::corpus::resume(&job, &text, std::path::Path::new(out_dir)),
        _ => mitra_migrate::corpus::run(&job, &text, std::path::Path::new(out_dir)),
    }
    .map_err(|e| match &e {
        mitra_migrate::CorpusError::Io { .. } => CliError::Output(e.to_string()),
        mitra_migrate::CorpusError::Corpus(_) | mitra_migrate::CorpusError::Journal(_) => {
            CliError::Input(e.to_string())
        }
        _ => CliError::Synthesis(e.to_string()),
    })?;
    Ok(commands::corpus_service_summary(&report, out_dir))
}

/// Parses one optional `--budget-*` fuel limit; absent means unlimited.
fn budget_option(args: &ParsedArgs, key: &str) -> Result<Option<u64>, CliError> {
    match args.option(key) {
        None => Ok(None),
        Some(text) => text.parse::<u64>().map(Some).map_err(|_| {
            CliError::Usage(format!("option `--{key}` expects a number, got `{text}`"))
        }),
    }
}

fn resolve_format(args: &ParsedArgs, input_path: &str) -> Result<Format, CliError> {
    match args.option("format") {
        Some(f) => Format::from_option(f),
        None => Ok(Format::from_path(input_path)),
    }
}

fn read_file(path: &str) -> Result<String, CliError> {
    fs::read_to_string(path).map_err(|e| CliError::Input(format!("cannot read `{path}`: {e}")))
}

fn write_or_return(args: &ParsedArgs, rendered: String) -> Result<String, CliError> {
    match args.option("out") {
        None => Ok(rendered),
        Some(path) => {
            fs::write(path, &rendered)
                .map_err(|e| CliError::Output(format!("cannot write `{path}`: {e}")))?;
            Ok(format!("wrote {} bytes to {path}\n", rendered.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_file(name: &str, contents: &str) -> PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("mitra-cli-test-{}-{name}", std::process::id()));
        fs::write(&path, contents).unwrap();
        path
    }

    const XML: &str = "<root><person><name>Ada</name><role>engineer</role></person>\
                       <person><name>Grace</name><role>admiral</role></person></root>";
    const OUT: &str = "name,role\nAda,engineer\nGrace,admiral\n";

    #[test]
    fn no_arguments_prints_usage() {
        let out = run_cli(Vec::<String>::new()).unwrap();
        assert!(out.contains("USAGE"));
        assert_eq!(run_cli(["help"]).unwrap(), USAGE);
    }

    #[test]
    fn unknown_command_is_a_usage_error() {
        assert!(matches!(run_cli(["frobnicate"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn synthesize_then_run_through_files() {
        let doc = temp_file("doc.xml", XML);
        let example = temp_file("example.csv", OUT);
        let program_out = run_cli([
            "synthesize",
            "--input",
            doc.to_str().unwrap(),
            "--output",
            example.to_str().unwrap(),
        ])
        .unwrap();
        assert!(program_out.contains("filter"));

        // Save the program and run it over the same document.
        let program_file = temp_file("program.dsl", &program_out);
        let csv = run_cli([
            "run",
            "--program",
            program_file.to_str().unwrap(),
            "--input",
            doc.to_str().unwrap(),
        ])
        .unwrap();
        assert!(csv.contains("Ada,engineer"));

        // `--explain` renders the query plan instead of the table.
        let plan = run_cli([
            "run",
            "--program",
            program_file.to_str().unwrap(),
            "--input",
            doc.to_str().unwrap(),
            "--explain",
        ])
        .unwrap();
        assert!(plan.starts_with("plan:"), "{plan}");
        assert!(plan.contains("scan"), "{plan}");
        assert!(plan.contains("output: rows sorted"), "{plan}");
        assert!(!plan.contains("Ada,engineer"), "{plan}");
        for path in [doc, example, program_file] {
            let _ = fs::remove_file(path);
        }
    }

    #[test]
    fn trace_out_writes_a_chrome_trace_document() {
        let doc = temp_file("trace-doc.xml", XML);
        let example = temp_file("trace-example.csv", OUT);
        let trace_path = temp_file("trace.json", "");
        let out = run_cli([
            "synthesize",
            "--input",
            doc.to_str().unwrap(),
            "--output",
            example.to_str().unwrap(),
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("filter"), "synthesis still succeeds: {out}");
        let trace = fs::read_to_string(&trace_path).unwrap();
        // The file is valid JSON in the Chrome trace-event format with real events.
        let parsed = mitra_hdt::parse_json(&trace).expect("trace file must be valid JSON");
        let rendered = parsed.to_string_compact();
        assert!(rendered.starts_with("{\"traceEvents\":["));
        assert!(trace.contains("\"ph\":\"B\""), "no begin events recorded");
        assert!(trace.contains("\"ph\":\"E\""), "no end events recorded");
        assert!(trace.contains("learn_transformation"), "synth span missing");
        // Restore the default mode for the other tests in this process.
        mitra_trace::set_mode(mitra_trace::TraceMode::Summary);
        for path in [doc, example, trace_path] {
            let _ = fs::remove_file(path);
        }
    }

    #[test]
    fn missing_files_are_input_errors() {
        let err = run_cli([
            "synthesize",
            "--input",
            "/no/such/file.xml",
            "--output",
            "/also/missing.csv",
        ]);
        assert!(matches!(err, Err(CliError::Input(_))));
    }

    #[test]
    fn migrate_requires_a_dataset_name() {
        assert!(matches!(run_cli(["migrate"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn migrate_budget_flags_are_parsed_and_enforced() {
        // A zero-candidate fuel budget exhausts every table immediately; the CLI
        // reports the all-degraded migration as a synthesis error (and the run is
        // fast, because no search happens).
        let err = run_cli([
            "migrate",
            "yelp",
            "--scale",
            "2",
            "--budget-candidates",
            "0",
        ]);
        assert!(
            matches!(&err, Err(CliError::Synthesis(msg)) if msg.contains("budget_exhausted")),
            "{err:?}"
        );
        // A malformed budget value is a usage error, as is a missing one.
        assert!(matches!(
            run_cli(["migrate", "yelp", "--budget-rows", "lots"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_cli(["migrate", "yelp", "--budget-dfa-states"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn threads_flag_is_parsed_and_validated() {
        // A valid thread count is accepted by any command (results never depend on
        // it, so `datasets` is a cheap probe)...
        let out = run_cli(["datasets", "--threads", "2"]).unwrap();
        assert!(out.contains("DBLP"));
        // ...and a malformed one is a usage error.
        assert!(matches!(
            run_cli(["datasets", "--threads", "lots"]),
            Err(CliError::Usage(_))
        ));
        // Restore the auto-detection default for the other tests in this process.
        mitra_pool::set_threads(0);
    }

    #[test]
    fn corpus_gen_run_and_resume_round_trip() {
        let dir = std::env::temp_dir().join(format!("mitra-cli-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let corpus_file = dir.join("corpus.txt");
        let out_dir = dir.join("out");

        let gen_msg = run_cli([
            "corpus",
            "gen",
            "--out",
            corpus_file.to_str().unwrap(),
            "--docs",
            "20",
            "--seed",
            "5",
            "--malformed-pct",
            "10",
        ])
        .unwrap();
        assert!(gen_msg.contains("wrote 20 documents"), "{gen_msg}");

        let run_msg = run_cli([
            "corpus",
            "run",
            "--input",
            corpus_file.to_str().unwrap(),
            "--out-dir",
            out_dir.to_str().unwrap(),
            "--shard-size",
            "4",
        ])
        .unwrap();
        assert!(run_msg.contains("20 documents in 5 shards"), "{run_msg}");
        assert!(run_msg.contains("table customer:"), "{run_msg}");
        assert!(run_msg.contains("0 constraint violations"), "{run_msg}");
        assert!(out_dir.join("tables").join("purchase.csv").exists());
        assert!(out_dir.join("failure_ledger.jsonl").exists());

        // Resuming a finished run replays every shard from the journal and
        // rewrites identical artifacts.
        let before = fs::read(out_dir.join("tables").join("customer.csv")).unwrap();
        let resume_msg = run_cli([
            "corpus",
            "resume",
            "--input",
            corpus_file.to_str().unwrap(),
            "--out-dir",
            out_dir.to_str().unwrap(),
            "--shard-size",
            "4",
        ])
        .unwrap();
        assert!(
            resume_msg.contains("(5 resumed from the journal)"),
            "{resume_msg}"
        );
        let after = fs::read(out_dir.join("tables").join("customer.csv")).unwrap();
        assert_eq!(before, after);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corpus_subcommands_validate_their_options() {
        assert!(matches!(
            run_cli(["corpus", "frobnicate"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_cli(["corpus", "gen"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_cli(["corpus", "gen", "--out", "/tmp/x", "--malformed-pct", "150"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_cli([
                "corpus",
                "run",
                "--input",
                "/no/such/corpus",
                "--out-dir",
                "/tmp/x"
            ]),
            Err(CliError::Input(_))
        ));
        // Resuming with no journal in the output directory is an input error.
        let dir = std::env::temp_dir().join(format!("mitra-cli-nojournal-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let corpus_file = dir.join("c.txt");
        fs::write(&corpus_file, "<shop><customer><name>a</name><tier>1</tier><order><item>s</item><total>2</total></order></customer></shop>\n").unwrap();
        assert!(matches!(
            run_cli([
                "corpus",
                "resume",
                "--input",
                corpus_file.to_str().unwrap(),
                "--out-dir",
                dir.join("out").to_str().unwrap(),
            ]),
            Err(CliError::Input(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn datasets_listing_includes_all_four() {
        let out = run_cli(["datasets", "--verbose"]).unwrap();
        for name in ["DBLP", "IMDB", "MONDIAL", "YELP"] {
            assert!(out.contains(name));
        }
        assert!(out.contains("synthesis config"));
    }
}
