//! The `mitra-cli` binary: parse arguments, dispatch, print, exit non-zero on error.

use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match mitra_cli::run_cli(args) {
        Ok(output) => {
            let stdout = std::io::stdout();
            let mut lock = stdout.lock();
            let _ = lock.write_all(output.as_bytes());
            if !output.ends_with('\n') {
                let _ = lock.write_all(b"\n");
            }
            ExitCode::SUCCESS
        }
        Err(error) => {
            eprintln!("{error}");
            ExitCode::FAILURE
        }
    }
}
