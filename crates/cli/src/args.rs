//! A tiny command-line option parser.
//!
//! The CLI only needs subcommands, `--flag value` options and boolean flags, so a
//! hand-rolled parser keeps the dependency set at zero and the error messages specific
//! to this tool.

use std::collections::HashMap;

/// Parsed command line: a subcommand, its positional arguments, and its options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    /// The subcommand (first non-flag argument), if any.
    pub command: Option<String>,
    /// Positional arguments after the subcommand.
    pub positional: Vec<String>,
    /// `--key value` options (keys stored without the leading dashes).
    pub options: HashMap<String, String>,
    /// Boolean `--flag` switches.
    pub flags: Vec<String>,
}

/// Option keys that take a value; everything else starting with `--` is a switch.
const VALUE_OPTIONS: [&str; 21] = [
    "input",
    "output",
    "program",
    "format",
    "emit",
    "out",
    "out-dir",
    "limit",
    "scale",
    "query",
    "threads",
    "trace-out",
    "trace-folded",
    "budget-candidates",
    "budget-dfa-states",
    "budget-rows",
    "docs",
    "seed",
    "malformed-pct",
    "shard-size",
    "retries",
];

impl ParsedArgs {
    /// Parses raw arguments (excluding the program name).
    pub fn parse<I, S>(args: I) -> Result<ParsedArgs, String>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut parsed = ParsedArgs::default();
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if name.is_empty() {
                    return Err("unexpected bare `--`".to_string());
                }
                // Support both `--key value` and `--key=value`.
                if let Some((key, value)) = name.split_once('=') {
                    parsed.options.insert(key.to_string(), value.to_string());
                } else if VALUE_OPTIONS.contains(&name) {
                    match iter.next() {
                        Some(value) if !value.starts_with("--") => {
                            parsed.options.insert(name.to_string(), value);
                        }
                        _ => return Err(format!("option `--{name}` expects a value")),
                    }
                } else {
                    parsed.flags.push(name.to_string());
                }
            } else if parsed.command.is_none() {
                parsed.command = Some(arg);
            } else {
                parsed.positional.push(arg);
            }
        }
        Ok(parsed)
    }

    /// The value of a `--key value` option.
    pub fn option(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// The value of a required option, with a helpful error otherwise.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.option(key)
            .ok_or_else(|| format!("missing required option `--{key}`"))
    }

    /// True when a boolean `--flag` was given.
    pub fn has_flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A numeric option with a default.
    pub fn numeric_option(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.option(key) {
            None => Ok(default),
            Some(text) => text
                .parse::<usize>()
                .map_err(|_| format!("option `--{key}` expects a number, got `{text}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_subcommand_options_and_flags() {
        let args = ParsedArgs::parse([
            "synthesize",
            "--input",
            "doc.xml",
            "--output=example.csv",
            "--verbose",
            "extra",
        ])
        .unwrap();
        assert_eq!(args.command.as_deref(), Some("synthesize"));
        assert_eq!(args.option("input"), Some("doc.xml"));
        assert_eq!(args.option("output"), Some("example.csv"));
        assert!(args.has_flag("verbose"));
        assert_eq!(args.positional, vec!["extra"]);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(ParsedArgs::parse(["run", "--program"]).is_err());
        assert!(ParsedArgs::parse(["run", "--program", "--input", "x"]).is_err());
    }

    #[test]
    fn require_reports_the_missing_key() {
        let args = ParsedArgs::parse(["run"]).unwrap();
        let err = args.require("program").unwrap_err();
        assert!(err.contains("--program"));
    }

    #[test]
    fn numeric_options_are_validated() {
        let args = ParsedArgs::parse(["corpus", "--limit", "12"]).unwrap();
        assert_eq!(args.numeric_option("limit", 98).unwrap(), 12);
        assert_eq!(args.numeric_option("scale", 200).unwrap(), 200);
        let bad = ParsedArgs::parse(["corpus", "--limit", "many"]).unwrap();
        assert!(bad.numeric_option("limit", 98).is_err());
    }

    #[test]
    fn empty_input_has_no_command() {
        let args = ParsedArgs::parse(Vec::<String>::new()).unwrap();
        assert_eq!(args.command, None);
    }
}
