//! Seeded adversarial fuzz harness (ROADMAP item 5, wired in by the
//! fault-tolerance PR — see DESIGN.md §10).
//!
//! The harness generates two families of scenarios from one `u64` suite seed:
//!
//! * **structured** scenarios — small hostile input–output examples (deep
//!   nesting, wide fan-out with decoy siblings, optional/missing fields, tag
//!   collisions across levels) that are run *differentially*: the best-first
//!   search ([`learn_transformation`]) against the exhaustive reference
//!   ([`learn_transformation_exhaustive`]), and the optimized join-based
//!   executor against the naive cross-product evaluator.  The two searches must
//!   agree on learnability and cost, and the two engines must produce the same
//!   table — whether or not the scenario is expressible in the DSL;
//! * **malformed** scenarios — syntactically corrupted XML/JSON/HTML text
//!   (truncations, stray metacharacters, duplicated/deleted slices) that must
//!   parse to `Ok` or a *typed* error, never a panic.
//!
//! Every scenario is a pure function of `(suite_seed, id)`; [`Verdict`]s carry
//! no wall-clock fields, so a verdict comparison across thread counts
//! (`run_scenario(s, 1) == run_scenario(s, 4)`) is exactly the determinism
//! contract of DESIGN.md §8.  The `fuzz_smoke` bench binary and the CI
//! `fuzz-smoke` job drive [`run_suite`] at threads 1 vs 4 and fail on any
//! [`Verdict::is_failure`] or cross-thread mismatch.
//!
//! [`learn_transformation`]: mitra_synth::synthesize::learn_transformation
//! [`learn_transformation_exhaustive`]: mitra_synth::synthesize::learn_transformation_exhaustive

use mitra_dsl::ast::NodeExtractor;
use mitra_dsl::eval::{eval_program_with, node_value, EvalLimits};
use mitra_dsl::{pretty, Table, Value};
use mitra_hdt::html::html_to_hdt;
use mitra_hdt::json::json_to_hdt;
use mitra_hdt::xml::xml_to_hdt;
use mitra_hdt::Hdt;
use mitra_migrate::corpus::{CorpusJob, CorpusTableSource, CorpusTask, DocFormat, ExampleOracle};
use mitra_migrate::migrate::{MigrationPlan, TableSource, TableTask};
use mitra_migrate::{Column, KeySpec, Schema, TableSchema};
use mitra_synth::exec::execute_with_stats;
use mitra_synth::synthesize::{
    learn_transformation, learn_transformation_exhaustive, Example, SynthConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The scenario families the harness cycles through (`id % 7` selects one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// A record section buried under a randomly deep chain of wrapper nodes.
    DeepNesting,
    /// Records interleaved with decoy siblings that reuse the same field tags.
    WideFanOut,
    /// Records where a middle field is present only sometimes.
    OptionalFields,
    /// The same tag reused across levels (`item` inside `item`, field `item`).
    TagCollisions,
    /// Corrupted XML text: must parse to `Ok` or a typed error.
    MalformedXml,
    /// Corrupted JSON text.
    MalformedJson,
    /// Corrupted HTML text (the parser is lenient, so most corruptions parse).
    MalformedHtml,
}

impl ScenarioKind {
    const ALL: [ScenarioKind; 7] = [
        ScenarioKind::DeepNesting,
        ScenarioKind::WideFanOut,
        ScenarioKind::OptionalFields,
        ScenarioKind::TagCollisions,
        ScenarioKind::MalformedXml,
        ScenarioKind::MalformedJson,
        ScenarioKind::MalformedHtml,
    ];

    /// Stable lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioKind::DeepNesting => "deep-nesting",
            ScenarioKind::WideFanOut => "wide-fan-out",
            ScenarioKind::OptionalFields => "optional-fields",
            ScenarioKind::TagCollisions => "tag-collisions",
            ScenarioKind::MalformedXml => "malformed-xml",
            ScenarioKind::MalformedJson => "malformed-json",
            ScenarioKind::MalformedHtml => "malformed-html",
        }
    }
}

/// What a scenario feeds the pipeline.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A synthesis input–output example (differential synth + exec checks).
    Structured(Box<Example>),
    /// Raw document text for one of the three parsers (crash-safety check).
    Malformed {
        /// Which parser the text is fed to.
        kind: ScenarioKind,
        /// The (corrupted) document text.
        text: String,
    },
}

/// One generated scenario: a pure function of `(suite_seed, id)`.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Index within the suite.
    pub id: usize,
    /// The scenario family.
    pub kind: ScenarioKind,
    /// What to run.
    pub payload: Payload,
}

/// The outcome of running one scenario.  Verdicts carry no wall-clock fields,
/// so equality across thread counts is the determinism check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Both searches learned programs of equal cost and both engines agree.
    Learned {
        /// Pretty-printed best-first program.
        program: String,
        /// Rows the program produces on the scenario input.
        rows: usize,
    },
    /// Both searches failed with the same typed error.
    Unlearnable {
        /// The shared error rendering.
        error: String,
    },
    /// The parser rejected the malformed text with a typed error (good).
    ParseRejected {
        /// The error rendering.
        error: String,
    },
    /// The parser accepted the (perhaps only mildly corrupted) text.
    ParsedOk {
        /// Node count of the resulting tree.
        nodes: usize,
    },
    /// The two search strategies or the two execution engines disagreed.
    Divergence {
        /// What disagreed.
        detail: String,
    },
    /// Something panicked instead of returning a typed error.
    Panicked {
        /// The stringified panic payload.
        detail: String,
    },
}

impl Verdict {
    /// True for the two failing verdicts ([`Verdict::Divergence`] and
    /// [`Verdict::Panicked`]).
    pub fn is_failure(&self) -> bool {
        matches!(self, Verdict::Divergence { .. } | Verdict::Panicked { .. })
    }

    /// Stable lowercase label for summary counting.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Learned { .. } => "learned",
            Verdict::Unlearnable { .. } => "unlearnable",
            Verdict::ParseRejected { .. } => "parse-rejected",
            Verdict::ParsedOk { .. } => "parsed-ok",
            Verdict::Divergence { .. } => "divergence",
            Verdict::Panicked { .. } => "panicked",
        }
    }
}

/// Generates scenario `id` of the suite seeded with `suite_seed`.
pub fn scenario(suite_seed: u64, id: usize) -> Scenario {
    // Mix the id into the seed (splitmix-style) so neighbouring scenarios do
    // not share RNG prefixes.
    let mut rng = StdRng::seed_from_u64(
        suite_seed
            ^ (id as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .rotate_left(17),
    );
    let kind = ScenarioKind::ALL[id % ScenarioKind::ALL.len()];
    let payload = match kind {
        ScenarioKind::DeepNesting => Payload::Structured(Box::new(deep_nesting(&mut rng))),
        ScenarioKind::WideFanOut => Payload::Structured(Box::new(wide_fan_out(&mut rng))),
        ScenarioKind::OptionalFields => Payload::Structured(Box::new(optional_fields(&mut rng))),
        ScenarioKind::TagCollisions => Payload::Structured(Box::new(tag_collisions(&mut rng))),
        ScenarioKind::MalformedXml => {
            let template = xml_template(&mut rng);
            Payload::Malformed {
                kind,
                text: corrupt(&mut rng, &template),
            }
        }
        ScenarioKind::MalformedJson => {
            let template = json_template(&mut rng);
            Payload::Malformed {
                kind,
                text: corrupt(&mut rng, &template),
            }
        }
        ScenarioKind::MalformedHtml => {
            let template = html_template(&mut rng);
            Payload::Malformed {
                kind,
                text: corrupt(&mut rng, &template),
            }
        }
    };
    Scenario { id, kind, payload }
}

/// Runs one scenario with `threads` synthesis workers and returns its verdict.
///
/// Every pipeline entry point is wrapped in `catch_unwind`, so a panic anywhere
/// (including one injected via `MITRA_FAULT`) becomes [`Verdict::Panicked`]
/// rather than aborting the suite.
pub fn run_scenario(s: &Scenario, threads: usize) -> Verdict {
    match &s.payload {
        Payload::Structured(example) => run_structured(example, threads),
        Payload::Malformed { kind, text } => run_malformed(*kind, text),
    }
}

fn run_structured(example: &Example, threads: usize) -> Verdict {
    let config = SynthConfig {
        threads,
        ..SynthConfig::default()
    };
    let examples = [example.clone()];
    let best_first = catch_unwind(AssertUnwindSafe(|| {
        learn_transformation(&examples, &config)
    }));
    let exhaustive = catch_unwind(AssertUnwindSafe(|| {
        learn_transformation_exhaustive(&examples, &config)
    }));
    let (best_first, exhaustive) = match (best_first, exhaustive) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(p), _) | (_, Err(p)) => {
            return Verdict::Panicked {
                detail: mitra_pool::panic_message(p.as_ref()),
            }
        }
    };
    match (best_first, exhaustive) {
        (Ok(bf), Ok(ex)) => {
            if bf.cost != ex.cost {
                return Verdict::Divergence {
                    detail: format!(
                        "best-first cost {:?} != exhaustive cost {:?}",
                        bf.cost, ex.cost
                    ),
                };
            }
            // Differential execution: the optimized join-based engine vs the
            // naive cross-product evaluator, on both learned programs.
            let mut rows = 0;
            for (label, program) in [("best-first", &bf.program), ("exhaustive", &ex.program)] {
                let optimized = match catch_unwind(AssertUnwindSafe(|| {
                    execute_with_stats(&example.tree, program).0
                })) {
                    Ok(t) => t,
                    Err(p) => {
                        return Verdict::Panicked {
                            detail: mitra_pool::panic_message(p.as_ref()),
                        }
                    }
                };
                let limits = EvalLimits {
                    max_rows: 1_000_000,
                };
                let naive =
                    match eval_program_with(&example.tree, program, &limits) {
                        Ok(t) => t,
                        Err(e) => {
                            return Verdict::Divergence {
                                detail: format!(
                                    "optimized engine succeeded but naive eval failed on the {label} program: {e}"
                                ),
                            }
                        }
                    };
                if optimized != naive {
                    return Verdict::Divergence {
                        detail: format!(
                            "optimized ({} rows) and naive ({} rows) tables differ on the {label} program",
                            optimized.len(),
                            naive.len()
                        ),
                    };
                }
                rows = optimized.len();
            }
            Verdict::Learned {
                program: pretty::program(&bf.program),
                rows,
            }
        }
        (Err(a), Err(b)) => {
            let (a, b) = (a.to_string(), b.to_string());
            if a == b {
                Verdict::Unlearnable { error: a }
            } else {
                Verdict::Divergence {
                    detail: format!("best-first error `{a}` != exhaustive error `{b}`"),
                }
            }
        }
        (Ok(bf), Err(e)) => Verdict::Divergence {
            detail: format!(
                "best-first learned `{}` but exhaustive failed: {e}",
                pretty::program(&bf.program)
            ),
        },
        (Err(e), Ok(ex)) => Verdict::Divergence {
            detail: format!(
                "exhaustive learned `{}` but best-first failed: {e}",
                pretty::program(&ex.program)
            ),
        },
    }
}

fn run_malformed(kind: ScenarioKind, text: &str) -> Verdict {
    let parsed = catch_unwind(AssertUnwindSafe(|| match kind {
        ScenarioKind::MalformedXml => xml_to_hdt(text).map(|t| t.len()),
        ScenarioKind::MalformedJson => json_to_hdt(text).map(|t| t.len()),
        _ => html_to_hdt(text).map(|t| t.len()),
    }));
    match parsed {
        Err(p) => Verdict::Panicked {
            detail: mitra_pool::panic_message(p.as_ref()),
        },
        Ok(Ok(nodes)) => Verdict::ParsedOk { nodes },
        Ok(Err(e)) => Verdict::ParseRejected {
            error: e.to_string(),
        },
    }
}

/// One suite entry: the scenario's identity plus its verdict.
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Scenario index within the suite.
    pub id: usize,
    /// Scenario family label.
    pub kind: &'static str,
    /// The verdict.
    pub verdict: Verdict,
}

/// The result of a whole fuzz suite run.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// One outcome per scenario, in id order.
    pub outcomes: Vec<FuzzOutcome>,
}

impl FuzzReport {
    /// The failing outcomes (divergences and panics).
    pub fn failures(&self) -> Vec<&FuzzOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.verdict.is_failure())
            .collect()
    }

    /// Deterministic JSON summary: per-verdict counts in fixed order, no
    /// wall-clock fields.
    pub fn summary_json(&self) -> String {
        let count = |label: &str| {
            self.outcomes
                .iter()
                .filter(|o| o.verdict.label() == label)
                .count()
        };
        format!(
            concat!(
                "{{\"scenarios\": {}, \"learned\": {}, \"unlearnable\": {}, ",
                "\"parsed_ok\": {}, \"parse_rejected\": {}, ",
                "\"divergence\": {}, \"panicked\": {}}}"
            ),
            self.outcomes.len(),
            count("learned"),
            count("unlearnable"),
            count("parsed-ok"),
            count("parse-rejected"),
            count("divergence"),
            count("panicked"),
        )
    }
}

/// Runs scenarios `0..count` of the suite at the given thread count.
pub fn run_suite(suite_seed: u64, count: usize, threads: usize) -> FuzzReport {
    let outcomes = (0..count)
        .map(|id| {
            let s = scenario(suite_seed, id);
            FuzzOutcome {
                id,
                kind: s.kind.label(),
                verdict: run_scenario(&s, threads),
            }
        })
        .collect();
    FuzzReport { outcomes }
}

/// Runs the suite at two thread counts and returns the scenarios whose
/// verdicts differ — the cross-thread determinism gate of DESIGN.md §8.
pub fn cross_thread_mismatches(
    suite_seed: u64,
    count: usize,
    threads_a: usize,
    threads_b: usize,
) -> Vec<(usize, Verdict, Verdict)> {
    let a = run_suite(suite_seed, count, threads_a);
    let b = run_suite(suite_seed, count, threads_b);
    a.outcomes
        .into_iter()
        .zip(b.outcomes)
        .filter(|(x, y)| x.verdict != y.verdict)
        .map(|(x, y)| (x.id, x.verdict, y.verdict))
        .collect()
}

/// A deterministic multi-table migration scenario for fault-injection tests:
/// `tables` independent record sections, each driving one example-based table
/// task.  Used with `MITRA_FAULT=panic:migrate.table:<n>` to check that one
/// poisoned table degrades while its siblings populate identically at every
/// thread count.
pub fn migration_scenario(seed: u64, tables: usize) -> (Hdt, MigrationPlan) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut tree = Hdt::with_root("db");
    let root = tree.root();
    let mut schema = Schema::new();
    let mut tasks = Vec::with_capacity(tables);
    for t in 0..tables {
        let section_tag = format!("sec{t}");
        let rec_tag = format!("rec{t}");
        let section = tree.add_child(root, section_tag, None);
        let mut output = Table::new(vec!["id".to_string(), "label".to_string()]);
        for r in 0..3 + rng.gen_range(0usize..3) {
            let rec = tree.add_child(section, rec_tag.clone(), None);
            let id = format!("{t}-{r}");
            let label = format!("label-{t}-{r}-{}", rng.gen_range(0u64..1000));
            tree.add_child(rec, "id", Some(id.clone()));
            tree.add_child(rec, "label", Some(label.clone()));
            output.push(vec![Value::from_data(&id), Value::from_data(&label)]);
        }
        let table_name = format!("table{t}");
        schema = schema.with_table(TableSchema::new(
            table_name.clone(),
            vec![Column::text("id"), Column::text("label")],
        ));
        tasks.push(TableTask {
            table: table_name,
            source: TableSource::Examples(vec![Example::new(tree.clone(), output)]),
            keys: Vec::new(),
            data_columns: vec!["id".to_string(), "label".to_string()],
        });
    }
    // Rebuild the examples against the finished tree so every task sees the
    // same document it will be executed on.
    let mut plan = MigrationPlan::new(schema);
    for mut task in tasks {
        if let TableSource::Examples(examples) = &mut task.source {
            for ex in examples.iter_mut() {
                ex.tree = tree.clone();
            }
        }
        plan.tasks.push(task);
    }
    (tree, plan)
}

// ---------------------------------------------------------------------------
// Structured scenario generators
// ---------------------------------------------------------------------------

/// Records buried under a chain of 2–7 wrapper nodes.
fn deep_nesting(rng: &mut StdRng) -> Example {
    let mut tree = Hdt::with_root("root");
    let mut cursor = tree.root();
    let depth = rng.gen_range(2usize..8);
    for d in 0..depth {
        cursor = tree.add_child(cursor, format!("wrap{}", d % 3), None);
    }
    let mut out = Table::anonymous(2);
    for r in 0..rng.gen_range(2usize..5) {
        let rec = tree.add_child(cursor, "rec", None);
        let a = format!("a-{r}");
        let b = format!("b-{r}-{}", rng.gen_range(0u64..100));
        tree.add_child(rec, "alpha", Some(a.clone()));
        tree.add_child(rec, "beta", Some(b.clone()));
        out.push(vec![Value::from_data(&a), Value::from_data(&b)]);
    }
    Example::new(tree, out)
}

/// Records interleaved with decoy siblings reusing the same field tags.
fn wide_fan_out(rng: &mut StdRng) -> Example {
    let mut tree = Hdt::with_root("root");
    let root = tree.root();
    let mut out = Table::anonymous(2);
    for r in 0..rng.gen_range(8usize..20) {
        if r % 3 == 0 {
            // Decoy: same field tags under a different element tag.
            let decoy = tree.add_child(root, "noise", None);
            tree.add_child(decoy, "alpha", Some(format!("decoy-a-{r}")));
            tree.add_child(decoy, "beta", Some(format!("decoy-b-{r}")));
        } else {
            let rec = tree.add_child(root, "rec", None);
            let a = format!("a-{r}");
            let b = format!("b-{r}-{}", rng.gen_range(0u64..100));
            tree.add_child(rec, "alpha", Some(a.clone()));
            tree.add_child(rec, "beta", Some(b.clone()));
            out.push(vec![Value::from_data(&a), Value::from_data(&b)]);
        }
    }
    Example::new(tree, out)
}

/// Records whose middle field is present only sometimes; the expected output
/// contains only the complete records (cross-product semantics drop the rest).
fn optional_fields(rng: &mut StdRng) -> Example {
    let mut tree = Hdt::with_root("root");
    let root = tree.root();
    let mut out = Table::anonymous(2);
    for r in 0..rng.gen_range(4usize..9) {
        let rec = tree.add_child(root, "rec", None);
        let a = format!("a-{r}");
        tree.add_child(rec, "alpha", Some(a.clone()));
        if rng.gen_range(0u64..10) < 6 {
            let b = format!("b-{r}");
            tree.add_child(rec, "beta", Some(b.clone()));
            out.push(vec![Value::from_data(&a), Value::from_data(&b)]);
        }
    }
    Example::new(tree, out)
}

/// The same tag at several levels: `item` sections containing `item` rows, with
/// an `item` *field* inside each row for good measure.
fn tag_collisions(rng: &mut StdRng) -> Example {
    let mut tree = Hdt::with_root("root");
    let root = tree.root();
    let mut out = Table::anonymous(2);
    for g in 0..rng.gen_range(2usize..4) {
        let outer = tree.add_child(root, "item", None);
        for r in 0..rng.gen_range(1usize..4) {
            let inner = tree.add_child(outer, "item", None);
            let name = format!("n-{g}-{r}");
            let item = format!("i-{g}-{r}-{}", rng.gen_range(0u64..50));
            tree.add_child(inner, "name", Some(name.clone()));
            tree.add_child(inner, "item", Some(item.clone()));
            out.push(vec![Value::from_data(&name), Value::from_data(&item)]);
        }
    }
    Example::new(tree, out)
}

// ---------------------------------------------------------------------------
// Malformed text generators
// ---------------------------------------------------------------------------

fn xml_template(rng: &mut StdRng) -> String {
    let mut s = String::from("<root>");
    for r in 0..rng.gen_range(2usize..6) {
        s.push_str(&format!(
            "<rec id=\"r{r}\"><name>n-{r}</name><val>{}</val></rec>",
            rng.gen_range(0u64..1000)
        ));
    }
    s.push_str("</root>");
    s
}

fn json_template(rng: &mut StdRng) -> String {
    let mut s = String::from("{\"recs\": [");
    let n = rng.gen_range(2usize..6);
    for r in 0..n {
        if r > 0 {
            s.push_str(", ");
        }
        s.push_str(&format!(
            "{{\"name\": \"n-{r}\", \"val\": {}, \"tags\": [1, 2, 3]}}",
            rng.gen_range(0u64..1000)
        ));
    }
    s.push_str("]}");
    s
}

fn html_template(rng: &mut StdRng) -> String {
    let mut s = String::from("<html><body><table>");
    for r in 0..rng.gen_range(2usize..6) {
        s.push_str(&format!(
            "<tr><td>n-{r}</td><td>{}</td>",
            rng.gen_range(0u64..1000)
        ));
    }
    s.push_str("</table></body>");
    s
}

/// Applies 1–4 random corruptions: truncation, hostile-byte insertion, slice
/// duplication, slice deletion.  Operates on char boundaries so the result is
/// always a valid `&str` (the parsers' input type).
fn corrupt(rng: &mut StdRng, text: &str) -> String {
    const HOSTILE: &[char] = &[
        '<', '>', '"', '\'', '{', '}', '[', ']', '&', ';', ',', ':', '\\', '\0', '\u{FFFD}',
    ];
    let mut chars: Vec<char> = text.chars().collect();
    for _ in 0..rng.gen_range(1usize..5) {
        if chars.is_empty() {
            break;
        }
        match rng.gen_range(0u64..4) {
            0 => {
                // Truncate.
                let at = rng.gen_range(0usize..chars.len());
                chars.truncate(at);
            }
            1 => {
                // Insert a hostile character.
                let at = rng.gen_range(0usize..chars.len() + 1);
                let ch = HOSTILE[rng.gen_range(0usize..HOSTILE.len())];
                chars.insert(at, ch);
            }
            2 => {
                // Duplicate a slice.
                let start = rng.gen_range(0usize..chars.len());
                let len = rng.gen_range(1usize..(chars.len() - start + 1).min(12));
                let slice: Vec<char> = chars[start..start + len].to_vec();
                chars.splice(start..start, slice);
            }
            _ => {
                // Delete a slice.
                let start = rng.gen_range(0usize..chars.len());
                let len = rng.gen_range(1usize..(chars.len() - start + 1).min(12));
                chars.drain(start..start + len);
            }
        }
    }
    chars.into_iter().collect()
}

// ---------------------------------------------------------------------------
// Seeded corpus mixer (corpus-service harness, DESIGN.md §12)
// ---------------------------------------------------------------------------

/// Parameters of a mixed corpus: N shop documents sharing one schema, with a
/// seeded fraction corrupted via the [`corrupt`] modes (the same corruption
/// family as the `tests/fixtures/malformed/` fixtures) and an optional
/// fraction carrying a `<promo>` element that gives them a second shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusMix {
    /// Suite seed; every document is a pure function of `(seed, index)`.
    pub seed: u64,
    /// Documents to generate.
    pub docs: usize,
    /// Percentage (0–100) of documents corrupted into unparseable text.
    pub malformed_pct: u32,
    /// Percentage (0–100) of well-formed documents that carry a `<promo>`
    /// child (a second document shape); `0` keeps the corpus single-shape.
    pub promo_pct: u32,
}

/// A generated corpus: the text (one document per line, `#mitra-corpus`
/// header first) plus the indices of the documents that were corrupted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MixedCorpus {
    /// The corpus text, ready for `mitra_migrate::corpus::run`.
    pub text: String,
    /// Document indices (0-based, in corpus order) that are malformed.
    pub malformed: Vec<usize>,
}

/// One guaranteed-unparseable, non-blank, non-comment line — the fallback when
/// [`corrupt`] happens to produce text the strict XML parser still accepts.
const MALFORMED_FALLBACK: &str = "<shop><broken";

fn mixed_doc(rng: &mut StdRng, doc: usize, promo: bool) -> String {
    let mut text = String::from("<shop>");
    if promo {
        text.push_str("<promo>save-big</promo>");
    }
    // Every value is unique *within the document*: any document can become the
    // shape's synthesis exemplar, and the example-based predicate learner
    // labels candidate tuples by value, so a tier or total duplicated across
    // rows would make the exemplar's expected table ambiguous (several node
    // tuples render the same row) and synthesis would correctly report that
    // no program is consistent.  Uniqueness comes from embedding the customer
    // and order indices in the low digits; the random high digits still vary
    // the data across documents.
    for c in 0..2 + rng.gen_range(0usize..3) {
        text.push_str("<customer>");
        text.push_str(&format!("<name>c{doc}x{c}</name>"));
        text.push_str(&format!(
            "<tier>{}</tier>",
            rng.gen_range(1u32..6) * 10 + c as u32
        ));
        for o in 0..1 + rng.gen_range(0usize..3) {
            text.push_str(&format!(
                "<order><item>sku{doc}x{c}x{o}</item><total>{}</total></order>",
                rng.gen_range(1u32..10) * 100 + (c as u32) * 10 + o as u32
            ));
        }
        text.push_str("</customer>");
    }
    text.push_str("</shop>");
    text
}

/// Corrupts a document until the strict XML parser rejects it, falling back to
/// [`MALFORMED_FALLBACK`] if 16 corruption rounds all stayed parseable.  The
/// result is always a single non-blank, non-comment line, so corrupting a
/// document never changes the corpus's document indexing.
fn corrupt_until_unparseable(rng: &mut StdRng, clean: &str) -> String {
    for _ in 0..16 {
        let candidate: String = corrupt(rng, clean).replace('\n', " ");
        if candidate.trim().is_empty() || candidate.trim_start().starts_with('#') {
            continue;
        }
        if xml_to_hdt(&candidate).is_err() {
            return candidate;
        }
    }
    MALFORMED_FALLBACK.to_string()
}

/// Generates a mixed corpus.  Every document is a pure function of
/// `(mix.seed, index)`, so two calls with the same mix produce byte-identical
/// text and the same malformed index set.
pub fn mixed_corpus(mix: &CorpusMix) -> MixedCorpus {
    let mut text = format!(
        "#mitra-corpus v1 format=xml job=mixer seed={} docs={} malformed_pct={} promo_pct={}\n",
        mix.seed, mix.docs, mix.malformed_pct, mix.promo_pct
    );
    let mut malformed = Vec::new();
    for i in 0..mix.docs {
        let mut rng = StdRng::seed_from_u64(
            mix.seed
                ^ (i as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(17),
        );
        let is_malformed = rng.gen_range(0u32..100) < mix.malformed_pct;
        let promo = rng.gen_range(0u32..100) < mix.promo_pct;
        let clean = mixed_doc(&mut rng, i, promo);
        if is_malformed {
            malformed.push(i);
            text.push_str(&corrupt_until_unparseable(&mut rng, &clean));
        } else {
            text.push_str(&clean);
        }
        text.push('\n');
    }
    MixedCorpus { text, malformed }
}

/// The mixer's target schema: `customer(ck PK, name, tier)` and
/// `purchase(pk PK, customer_fk → customer.ck, item, total)`.
pub fn mixer_schema() -> Schema {
    Schema::new()
        .with_table(
            TableSchema::new(
                "customer",
                vec![
                    Column::text("ck"),
                    Column::text("name"),
                    Column::integer("tier"),
                ],
            )
            .with_primary_key(&["ck"]),
        )
        .with_table(
            TableSchema::new(
                "purchase",
                vec![
                    Column::text("pk"),
                    Column::text("customer_fk"),
                    Column::text("item"),
                    Column::integer("total"),
                ],
            )
            .with_primary_key(&["pk"])
            .with_foreign_key(&["customer_fk"], "customer", &["ck"]),
        )
}

/// The `text` leaf holding an element's character data (the XML→HDT mapping
/// stores `<name>c0x0</name>` as an internal `name` node with a `text` leaf
/// child — see `mitra_hdt::xml`).
fn text_leaf(tree: &Hdt, parent: mitra_hdt::NodeId, tag: &str) -> Option<mitra_hdt::NodeId> {
    tree.child(tree.child(parent, tag, 0)?, "text", 0)
}

fn expected_customers(tree: &Hdt) -> Option<Table> {
    let mut out = Table::new(vec!["name".to_string(), "tier".to_string()]);
    for &cust in tree.children_with_tag(tree.root(), "customer") {
        let name = text_leaf(tree, cust, "name")?;
        let tier = text_leaf(tree, cust, "tier")?;
        out.push(vec![node_value(tree, name), node_value(tree, tier)]);
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

fn expected_purchases(tree: &Hdt) -> Option<Table> {
    let mut out = Table::new(vec!["item".to_string(), "total".to_string()]);
    for &cust in tree.children_with_tag(tree.root(), "customer") {
        for &order in tree.children_with_tag(cust, "order") {
            let item = text_leaf(tree, order, "item")?;
            let total = text_leaf(tree, order, "total")?;
            out.push(vec![node_value(tree, item), node_value(tree, total)]);
        }
    }
    if out.is_empty() {
        None
    } else {
        Some(out)
    }
}

/// The corpus tasks matching [`mixer_schema`].  Data columns come from oracles
/// (so a program is synthesized once per shape); `purchase.customer_fk`
/// re-derives the owning customer's node tuple — item text leaf → item element
/// → order → customer → (name text, tier text) — mirroring the row nodes the
/// customer program produces.
pub fn mixer_tasks() -> Vec<CorpusTask> {
    let customers: ExampleOracle = std::sync::Arc::new(expected_customers);
    let purchases: ExampleOracle = std::sync::Arc::new(expected_purchases);
    let owner = NodeExtractor::parent(NodeExtractor::parent(NodeExtractor::parent(
        NodeExtractor::Id,
    )));
    vec![
        CorpusTask {
            table: "customer".to_string(),
            source: CorpusTableSource::Oracle(customers),
            keys: vec![("ck".to_string(), KeySpec::SyntheticPrimary)],
            data_columns: vec!["name".to_string(), "tier".to_string()],
        },
        CorpusTask {
            table: "purchase".to_string(),
            source: CorpusTableSource::Oracle(purchases),
            keys: vec![
                ("pk".to_string(), KeySpec::SyntheticPrimary),
                (
                    "customer_fk".to_string(),
                    KeySpec::Foreign {
                        derivations: vec![
                            (
                                0,
                                NodeExtractor::child(
                                    NodeExtractor::child(owner.clone(), "name", 0),
                                    "text",
                                    0,
                                ),
                            ),
                            (
                                0,
                                NodeExtractor::child(
                                    NodeExtractor::child(owner, "tier", 0),
                                    "text",
                                    0,
                                ),
                            ),
                        ],
                    },
                ),
            ],
            data_columns: vec!["item".to_string(), "total".to_string()],
        },
    ]
}

/// A ready-to-run corpus job for mixer corpora (default [`CorpusJob::config`];
/// callers tune shard size, budgets and threads on the returned value).
pub fn mixer_job() -> CorpusJob {
    CorpusJob {
        schema: mixer_schema(),
        tasks: mixer_tasks(),
        format: DocFormat::Xml,
        config: Default::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_pure_functions_of_seed_and_id() {
        for id in 0..14 {
            let a = scenario(42, id);
            let b = scenario(42, id);
            assert_eq!(a.kind, b.kind);
            match (&a.payload, &b.payload) {
                (Payload::Structured(x), Payload::Structured(y)) => {
                    assert_eq!(x.output, y.output);
                    assert_eq!(x.tree.len(), y.tree.len());
                }
                (Payload::Malformed { text: x, .. }, Payload::Malformed { text: y, .. }) => {
                    assert_eq!(x, y)
                }
                _ => panic!("payload families differ for id {id}"),
            }
        }
    }

    #[test]
    fn a_small_suite_has_no_failures() {
        let report = run_suite(7, 7, 1);
        assert_eq!(report.outcomes.len(), 7);
        let failures = report.failures();
        assert!(
            failures.is_empty(),
            "unexpected fuzz failures: {:?}",
            failures
                .iter()
                .map(|o| (o.id, o.kind, &o.verdict))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn verdicts_match_across_thread_counts() {
        let mismatches = cross_thread_mismatches(11, 7, 1, 4);
        assert!(mismatches.is_empty(), "mismatches: {mismatches:?}");
    }

    #[test]
    fn summary_json_is_deterministic_and_complete() {
        let a = run_suite(3, 7, 1).summary_json();
        let b = run_suite(3, 7, 2).summary_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"scenarios\": 7"), "{a}");
    }

    #[test]
    fn migration_scenario_is_deterministic_and_runs_clean() {
        let (doc, plan) = migration_scenario(5, 3);
        let report = plan.run(&doc).unwrap();
        assert_eq!(report.degradation().ok, 3);
        let (doc2, plan2) = migration_scenario(5, 3);
        let report2 = plan2.run(&doc2).unwrap();
        assert_eq!(report.summary_json(), report2.summary_json());
    }

    #[test]
    fn mixed_corpus_is_deterministic_and_exactly_the_seeded_fraction_fails() {
        let mix = CorpusMix {
            seed: 42,
            docs: 50,
            malformed_pct: 20,
            promo_pct: 0,
        };
        let a = mixed_corpus(&mix);
        let b = mixed_corpus(&mix);
        assert_eq!(a, b, "byte-identical for the same mix");
        assert!(
            !a.malformed.is_empty(),
            "20% of 50 docs should corrupt some"
        );
        let (header, docs) = mitra_migrate::corpus::parse_corpus_text(&a.text);
        assert_eq!(header.get("job"), Some("mixer"));
        assert_eq!(docs.len(), mix.docs, "corruption must not change indexing");
        for doc in &docs {
            let parsed = xml_to_hdt(doc.text);
            assert_eq!(
                parsed.is_err(),
                a.malformed.contains(&doc.index),
                "doc {} parse outcome must match the seeded malformed set",
                doc.index
            );
        }
    }

    #[test]
    fn malformed_fallback_line_is_unparseable() {
        assert!(xml_to_hdt(MALFORMED_FALLBACK).is_err());
        assert!(!MALFORMED_FALLBACK.trim().is_empty());
        assert!(!MALFORMED_FALLBACK.starts_with('#'));
    }

    #[test]
    fn single_shape_mix_fingerprints_identically() {
        let mix = CorpusMix {
            seed: 7,
            docs: 12,
            malformed_pct: 0,
            promo_pct: 0,
        };
        let corpus = mixed_corpus(&mix);
        let (_, docs) = mitra_migrate::corpus::parse_corpus_text(&corpus.text);
        let fps: Vec<_> = docs
            .iter()
            .map(|d| mitra_synth::fingerprint::fingerprint(&xml_to_hdt(d.text).unwrap()))
            .collect();
        assert!(fps.windows(2).all(|w| w[0] == w[1]), "one shape expected");
        let promo_mix = CorpusMix {
            promo_pct: 100,
            ..mix
        };
        let promo = mixed_corpus(&promo_mix);
        let (_, pdocs) = mitra_migrate::corpus::parse_corpus_text(&promo.text);
        let pfp = mitra_synth::fingerprint::fingerprint(&xml_to_hdt(pdocs[0].text).unwrap());
        assert_ne!(pfp, fps[0], "promo documents are a second shape");
    }

    #[test]
    fn mixer_oracles_walk_the_generated_documents() {
        let mut rng = StdRng::seed_from_u64(3);
        let doc = mixed_doc(&mut rng, 0, false);
        let tree = xml_to_hdt(&doc).unwrap();
        let customers = expected_customers(&tree).unwrap();
        let purchases = expected_purchases(&tree).unwrap();
        assert!(customers.len() >= 2);
        assert!(purchases.len() >= customers.len());
        // The oracles must land on the `text` leaves, not the internal
        // element nodes whose node_value is NULL.
        for row in customers.rows.iter().chain(purchases.rows.iter()) {
            assert!(
                row.iter().all(|v| !matches!(v, mitra_dsl::Value::Null)),
                "oracle rows must carry real data: {row:?}"
            );
        }
        assert!(mixer_job().validate().is_ok());
    }
}
