//! The motivating example (Section 2) as a scalable workload.
//!
//! Re-exports the generator from `mitra-hdt` and adds helpers used by the scalability
//! experiment (E3): building documents with a target *element count* and rendering
//! them as XML text, mirroring the paper's "XML document with more than 1 million
//! elements" measurement.

use crate::corpus::hdt_to_xml_text;
use mitra_dsl::{Table, Value};
use mitra_hdt::Hdt;
use mitra_synth::synthesize::Example;

pub use mitra_hdt::generate::{person_name, social_network, social_network_rows};

/// Builds a social-network document with approximately `target_elements` elements
/// (internal nodes).  Each person contributes 2 internal nodes (Person, Friendship)
/// plus `friends` Friend nodes.
pub fn social_network_with_elements(target_elements: usize, friends: usize) -> Hdt {
    let per_person = 2 + friends;
    let persons = (target_elements / per_person).max(2);
    social_network(persons, friends)
}

/// The canonical input–output example used to train the motivating-example program
/// (three persons, one friendship each, which is representative enough to pin down the
/// intended program).
pub fn training_example() -> Example {
    let tree = social_network(3, 1);
    let mut output = Table::new(vec![
        "Person".to_string(),
        "Friend-with".to_string(),
        "years".to_string(),
    ]);
    for row in social_network_rows(3, 1) {
        output.push(row.iter().map(|s| Value::from_data(s)).collect());
    }
    Example::new(tree, output)
}

/// Expected output table for a document produced by [`social_network`].
pub fn expected_table(persons: usize, friends: usize) -> Table {
    let mut output = Table::new(vec![
        "Person".to_string(),
        "Friend-with".to_string(),
        "years".to_string(),
    ]);
    for row in social_network_rows(persons, friends) {
        output.push(row.iter().map(|s| Value::from_data(s)).collect());
    }
    output
}

/// Renders a social-network document as XML text (for size measurements and parser
/// stress tests).
///
/// Every leaf value becomes element *text content*, so after parsing, values sit one
/// level deeper than in the programmatic HDT (inside a `text` node).
pub fn social_network_xml(persons: usize, friends: usize) -> String {
    hdt_to_xml_text(&social_network(persons, friends))
}

/// Renders a social-network document as *attribute-style* XML text, matching the shape
/// of Figure 2a in the paper (ids, names, fids and years are attributes).
///
/// Parsing this text with the XML plug-in yields an HDT identical in shape to
/// [`social_network`], because the Section 3 mapping turns attributes into leaf
/// children — which is exactly why the paper's Figure 3 program uses node extractors of
/// depth three.
pub fn social_network_xml_attrs(persons: usize, friends: usize) -> String {
    let mut out = String::from("<root>\n");
    for i in 1..=persons {
        out.push_str(&format!(
            "  <Person id=\"{i}\" name=\"{}\">\n    <Friendship>\n",
            person_name(i)
        ));
        for k in 1..=friends {
            let j = (i + k - 1) % persons + 1;
            if j == i {
                continue;
            }
            out.push_str(&format!(
                "      <Friend fid=\"{j}\" years=\"{}\"/>\n",
                i * 10 + j
            ));
        }
        out.push_str("    </Friendship>\n  </Person>\n");
    }
    out.push_str("</root>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_target_is_approximately_met() {
        let t = social_network_with_elements(3_000, 1);
        let elements = t.element_count();
        assert!((2_400..=3_600).contains(&elements), "got {elements}");
    }

    #[test]
    fn training_example_is_consistent() {
        let ex = training_example();
        assert_eq!(ex.output.len(), 3);
        assert_eq!(ex.output.arity(), 3);
        ex.tree.validate().unwrap();
    }

    #[test]
    fn expected_table_matches_rows_helper() {
        let t = expected_table(4, 2);
        assert_eq!(t.len(), social_network_rows(4, 2).len());
    }

    #[test]
    fn xml_rendering_parses_back() {
        let xml = social_network_xml(5, 2);
        let doc = mitra_hdt::parse_xml(&xml).unwrap();
        assert_eq!(doc.root.name, "root");
    }

    #[test]
    fn attribute_xml_parses_to_the_programmatic_hdt_shape() {
        let xml = social_network_xml_attrs(3, 1);
        let tree = mitra_hdt::xml::xml_to_hdt(&xml).unwrap();
        let reference = social_network(3, 1);
        // Same multiset of tags and the same leaf data values: attribute-style XML is
        // shape-equivalent to the programmatic tree.
        let mut tags_a = tree.tags();
        let mut tags_b = reference.tags();
        tags_a.sort();
        tags_b.sort();
        assert_eq!(tags_a, tags_b);
        let mut data_a: Vec<String> = tree.data_values().iter().map(|s| s.to_string()).collect();
        let mut data_b: Vec<String> = reference
            .data_values()
            .iter()
            .map(|s| s.to_string())
            .collect();
        data_a.sort();
        data_b.sort();
        assert_eq!(data_a, data_b);
    }
}
