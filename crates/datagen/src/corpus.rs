//! The 98-task benchmark corpus (substitute for the StackOverflow benchmarks of
//! Table 1).
//!
//! Tasks are generated deterministically (a fixed seed per task id) from a set of
//! scenario families that mirror the transformation patterns in the paper's
//! benchmarks: flat projections, positional extraction from arrays, parent/child joins
//! across nesting levels, value joins through reference fields, constant filters, deep
//! descendant extraction, and wide tables.  Category counts match Table 1:
//!
//! | category | XML | JSON |
//! |----------|-----|------|
//! | ≤ 2 cols | 17  | 11   |
//! | 3 cols   | 12  | 11   |
//! | 4 cols   | 12  | 11   |
//! | ≥ 5 cols | 10  | 14   |
//!
//! A handful of tasks (6 overall, mirroring the paper's 6 failures) are *not
//! expressible* in the DSL — their output requires string concatenation of two input
//! fields — and are marked `expressible = false`.

use mitra_dsl::{Table, Value};
use mitra_hdt::{Hdt, NodeId};
use mitra_synth::synthesize::Example;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Whether the task's source document is XML-shaped or JSON-shaped.
///
/// Both are represented as HDTs; the flag records which plug-in the task exercises and
/// controls how the document text is rendered by [`Task::document_text`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocFormat {
    /// XML document (attributes and text content become nested leaves).
    Xml,
    /// JSON document (arrays become repeated tags with increasing `pos`).
    Json,
}

/// Output-column-count category used by Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// At most two output columns.
    AtMostTwo,
    /// Exactly three output columns.
    Three,
    /// Exactly four output columns.
    Four,
    /// Five or more output columns.
    FivePlus,
}

impl Category {
    /// Category for a column count.
    pub fn of(cols: usize) -> Category {
        match cols {
            0..=2 => Category::AtMostTwo,
            3 => Category::Three,
            4 => Category::Four,
            _ => Category::FivePlus,
        }
    }

    /// Display label matching the paper's table.
    pub fn label(self) -> &'static str {
        match self {
            Category::AtMostTwo => "<=2",
            Category::Three => "3",
            Category::Four => "4",
            Category::FivePlus => ">=5",
        }
    }
}

/// One benchmark task: a small input–output example plus metadata.
#[derive(Debug, Clone)]
pub struct Task {
    /// Stable identifier (0-based).
    pub id: usize,
    /// Human-readable scenario name.
    pub name: String,
    /// Source document flavour.
    pub format: DocFormat,
    /// Column-count category.
    pub category: Category,
    /// The input–output example handed to the synthesizer.
    pub example: Example,
    /// Whether the task is expressible in the DSL (the 6 inexpressible tasks mirror
    /// the paper's unsolved benchmarks).
    pub expressible: bool,
}

impl Task {
    /// Number of elements (internal nodes) in the input example — the `#Elements`
    /// statistic of Table 1.
    pub fn element_count(&self) -> usize {
        self.example.tree.element_count()
    }

    /// Number of rows in the output example — the `#Rows` statistic of Table 1.
    pub fn row_count(&self) -> usize {
        self.example.output.len()
    }

    /// Renders the input document as XML or JSON text (useful for examples and for
    /// exercising the parsers end to end).
    pub fn document_text(&self) -> String {
        match self.format {
            DocFormat::Xml => hdt_to_xml_text(&self.example.tree),
            DocFormat::Json => hdt_to_json_text(&self.example.tree),
        }
    }

    /// Generates a larger document of the same shape (for performance experiments).
    /// `scale` multiplies the number of top-level records.
    pub fn scaled_document(&self, scale: usize) -> Hdt {
        // Re-generate using the same scenario with a larger size: the scenario id is
        // recoverable from the task id.
        // Task ids are minted by `generate_corpus` enumeration, so the lookup
        // cannot miss; fall back to the unscaled example tree rather than panic
        // on a hand-built task with a foreign id.
        match corpus_specs().into_iter().nth(self.id) {
            Some(spec) => build_scenario(&spec, spec.size * scale.max(1)).0,
            None => self.example.tree.clone(),
        }
    }
}

/// Generates the full 98-task corpus.
pub fn generate_corpus() -> Vec<Task> {
    corpus_specs()
        .into_iter()
        .enumerate()
        .map(|(id, spec)| {
            let (tree, output) = build_scenario(&spec, spec.size);
            Task {
                id,
                name: format!("{}-{}col-{}", spec.scenario.name(), spec.columns, id),
                format: spec.format,
                category: Category::of(spec.columns),
                example: Example::new(tree, output),
                expressible: spec.scenario != Scenario::Concat,
            }
        })
        .collect()
}

/// The scenario families used to build tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scenario {
    /// Flat record projection: one row per record, one column per field.
    FlatProjection,
    /// Parent/child join: records nested under groups; columns from both levels.
    ParentChildJoin,
    /// Constant filter: keep only records whose numeric field is below a threshold.
    ConstantFilter,
    /// Positional extraction: each record holds an array; take the first two entries.
    PositionalPick,
    /// Value join: records reference other records by id (like the motivating example).
    ValueJoin,
    /// Deep descendants: values at mixed depths extracted via descendants.
    DeepDescendants,
    /// Inexpressible: output column is the concatenation of two input fields.
    Concat,
}

impl Scenario {
    fn name(self) -> &'static str {
        match self {
            Scenario::FlatProjection => "flat",
            Scenario::ParentChildJoin => "nested-join",
            Scenario::ConstantFilter => "filter",
            Scenario::PositionalPick => "positional",
            Scenario::ValueJoin => "value-join",
            Scenario::DeepDescendants => "descendants",
            Scenario::Concat => "concat",
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct TaskSpec {
    scenario: Scenario,
    format: DocFormat,
    columns: usize,
    size: usize,
    seed: u64,
}

/// The fixed list of 98 task specifications (51 XML + 47 JSON), with per-category
/// counts matching Table 1.
fn corpus_specs() -> Vec<TaskSpec> {
    use DocFormat::{Json, Xml};
    use Scenario::*;
    let mut specs = Vec::with_capacity(98);
    let mut seed = 0u64;
    let mut push = |scenario, format, columns, size, specs: &mut Vec<TaskSpec>| {
        seed += 1;
        specs.push(TaskSpec {
            scenario,
            format,
            columns,
            size,
            seed,
        });
    };

    // --- XML, <=2 columns: 17 tasks (one inexpressible) ---
    for i in 0..6 {
        push(FlatProjection, Xml, 2, 3 + i, &mut specs);
    }
    for i in 0..4 {
        push(ConstantFilter, Xml, 2, 4 + i, &mut specs);
    }
    for i in 0..3 {
        push(ParentChildJoin, Xml, 2, 2 + i, &mut specs);
    }
    for i in 0..3 {
        push(DeepDescendants, Xml, 2, 3 + i, &mut specs);
    }
    push(Concat, Xml, 2, 3, &mut specs);

    // --- XML, 3 columns: 12 tasks ---
    for i in 0..4 {
        push(FlatProjection, Xml, 3, 3 + i, &mut specs);
    }
    for i in 0..3 {
        push(ParentChildJoin, Xml, 3, 2 + i, &mut specs);
    }
    for i in 0..3 {
        push(ValueJoin, Xml, 3, 3 + i, &mut specs);
    }
    for i in 0..2 {
        push(ConstantFilter, Xml, 3, 4 + i, &mut specs);
    }

    // --- XML, 4 columns: 12 tasks (one inexpressible) ---
    for i in 0..4 {
        push(FlatProjection, Xml, 4, 3 + i, &mut specs);
    }
    for i in 0..3 {
        push(ParentChildJoin, Xml, 4, 2 + i, &mut specs);
    }
    for i in 0..2 {
        push(ConstantFilter, Xml, 4, 4 + i, &mut specs);
    }
    for i in 0..2 {
        push(PositionalPick, Xml, 4, 3 + i, &mut specs);
    }
    push(Concat, Xml, 4, 3, &mut specs);

    // --- XML, >=5 columns: 10 tasks (one inexpressible) ---
    for i in 0..5 {
        push(FlatProjection, Xml, 5, 3 + (i % 3), &mut specs);
    }
    for i in 0..2 {
        push(FlatProjection, Xml, 6, 3 + i, &mut specs);
    }
    for i in 0..2 {
        push(ParentChildJoin, Xml, 5, 2 + i, &mut specs);
    }
    push(Concat, Xml, 5, 3, &mut specs);

    // --- JSON, <=2 columns: 11 tasks (one inexpressible) ---
    for i in 0..4 {
        push(FlatProjection, Json, 2, 3 + i, &mut specs);
    }
    for i in 0..3 {
        push(PositionalPick, Json, 2, 3 + i, &mut specs);
    }
    for i in 0..2 {
        push(ConstantFilter, Json, 2, 4 + i, &mut specs);
    }
    push(DeepDescendants, Json, 2, 3, &mut specs);
    push(Concat, Json, 2, 3, &mut specs);

    // --- JSON, 3 columns: 11 tasks ---
    for i in 0..4 {
        push(FlatProjection, Json, 3, 3 + i, &mut specs);
    }
    for i in 0..3 {
        push(ParentChildJoin, Json, 3, 2 + i, &mut specs);
    }
    for i in 0..2 {
        push(ValueJoin, Json, 3, 3 + i, &mut specs);
    }
    for i in 0..2 {
        push(PositionalPick, Json, 3, 3 + i, &mut specs);
    }

    // --- JSON, 4 columns: 11 tasks (one inexpressible) ---
    for i in 0..4 {
        push(FlatProjection, Json, 4, 3 + i, &mut specs);
    }
    for i in 0..3 {
        push(ParentChildJoin, Json, 4, 2 + i, &mut specs);
    }
    for i in 0..2 {
        push(ConstantFilter, Json, 4, 4 + i, &mut specs);
    }
    push(PositionalPick, Json, 4, 3, &mut specs);
    push(Concat, Json, 4, 3, &mut specs);

    // --- JSON, >=5 columns: 14 tasks (one inexpressible) ---
    for i in 0..6 {
        push(FlatProjection, Json, 5, 3 + (i % 3), &mut specs);
    }
    for i in 0..3 {
        push(FlatProjection, Json, 6, 3 + i, &mut specs);
    }
    for i in 0..2 {
        push(ParentChildJoin, Json, 5, 2 + i, &mut specs);
    }
    for i in 0..2 {
        push(ConstantFilter, Json, 5, 4 + i, &mut specs);
    }
    push(Concat, Json, 5, 3, &mut specs);

    assert_eq!(specs.len(), 98, "corpus must contain exactly 98 tasks");
    specs
}

// --- Scenario builders -----------------------------------------------------------

const FIELD_NAMES: [&str; 8] = [
    "name", "city", "price", "status", "email", "country", "team", "grade",
];

fn field_value(rng: &mut StdRng, field: usize, record: usize) -> String {
    match field {
        0 => format!("item{record}"),
        1 => ["Austin", "Berlin", "Tokyo", "Lima", "Oslo"][rng.gen_range(0..5)].to_string(),
        2 => format!("{}", 10 + record * 7 + rng.gen_range(0..5)),
        3 => ["active", "closed", "pending"][record % 3].to_string(),
        4 => format!("user{record}@example.org"),
        5 => ["US", "DE", "JP", "PE", "NO"][rng.gen_range(0..5)].to_string(),
        6 => format!("team{}", rng.gen_range(1..4)),
        _ => format!("g{}", rng.gen_range(1..6)),
    }
}

fn build_scenario(spec: &TaskSpec, size: usize) -> (Hdt, Table) {
    let mut rng = StdRng::seed_from_u64(spec.seed * 7919 + 17);
    match spec.scenario {
        Scenario::FlatProjection => flat_projection(&mut rng, spec.columns, size),
        Scenario::ParentChildJoin => parent_child_join(&mut rng, spec.columns, size),
        Scenario::ConstantFilter => constant_filter(&mut rng, spec.columns, size),
        Scenario::PositionalPick => positional_pick(&mut rng, spec.columns, size),
        Scenario::ValueJoin => value_join(spec.columns, size),
        Scenario::DeepDescendants => deep_descendants(spec.columns, size),
        Scenario::Concat => concat_task(&mut rng, spec.columns, size),
    }
}

/// `root/record*/{field_i}` → one row per record with its fields.
fn flat_projection(rng: &mut StdRng, columns: usize, size: usize) -> (Hdt, Table) {
    let mut tree = Hdt::with_root("root");
    let root = tree.root();
    let cols: Vec<String> = (0..columns)
        .map(|c| FIELD_NAMES[c % 8].to_string())
        .collect();
    let mut out = Table::new(cols.clone());
    for r in 0..size {
        let rec = tree.add_child(root, "record", None);
        let mut row = Vec::with_capacity(columns);
        for (c, col) in cols.iter().enumerate() {
            // Make values unique per (record, column) by suffixing the record index for
            // textual fields so the example is unambiguous.
            let mut v = field_value(rng, c, r);
            if c != 0 && c != 2 {
                v = format!("{v}-{r}");
            }
            tree.add_child(rec, col.clone(), Some(v.clone()));
            row.push(Value::from_data(&v));
        }
        out.push(row);
    }
    (tree, out)
}

/// `root/group*/name + group/item*/fields` → (group_name, item fields...) rows.
fn parent_child_join(rng: &mut StdRng, columns: usize, groups: usize) -> (Hdt, Table) {
    let mut tree = Hdt::with_root("root");
    let root = tree.root();
    let item_cols = columns - 1;
    let mut names = vec!["group".to_string()];
    names.extend((0..item_cols).map(|c| FIELD_NAMES[c % 8].to_string()));
    let mut out = Table::new(names.clone());
    for g in 0..groups {
        let group = tree.add_child(root, "group", None);
        let gname = format!("group-{g}");
        tree.add_child(group, "label", Some(gname.clone()));
        for i in 0..2 {
            let item = tree.add_child(group, "item", None);
            let mut row = vec![Value::from_data(&gname)];
            for c in 0..item_cols {
                let v = format!("{}-{g}-{i}", field_value(rng, c, g * 2 + i));
                tree.add_child(item, FIELD_NAMES[c % 8], Some(v.clone()));
                row.push(Value::from_data(&v));
            }
            out.push(row);
        }
    }
    (tree, out)
}

/// Records with a numeric `score` field; keep only those with score below 50.
fn constant_filter(rng: &mut StdRng, columns: usize, size: usize) -> (Hdt, Table) {
    let mut tree = Hdt::with_root("root");
    let root = tree.root();
    let data_cols = columns - 1;
    let mut names: Vec<String> = (0..data_cols)
        .map(|c| FIELD_NAMES[c % 8].to_string())
        .collect();
    names.push("score".to_string());
    let mut out = Table::new(names);
    for r in 0..size {
        let rec = tree.add_child(root, "record", None);
        // Alternate clearly below/above the threshold so both sides are represented.
        let score = if r % 2 == 0 { 10 + r } else { 80 + r };
        let mut row = Vec::with_capacity(columns);
        for c in 0..data_cols {
            let v = format!("{}-{r}", field_value(rng, c, r));
            tree.add_child(rec, FIELD_NAMES[c % 8], Some(v.clone()));
            row.push(Value::from_data(&v));
        }
        tree.add_child(rec, "score", Some(score.to_string()));
        row.push(Value::int(score as i64));
        if score < 50 {
            out.push(row);
        }
    }
    (tree, out)
}

/// Each record holds a `phone` array; output the record name plus the first (and for
/// wider tables the second) phone, distinguishing entries by position.
fn positional_pick(rng: &mut StdRng, columns: usize, size: usize) -> (Hdt, Table) {
    let mut tree = Hdt::with_root("root");
    let root = tree.root();
    let extra = columns.saturating_sub(2).min(2); // how many extra scalar fields
    let picks = columns - 1 - extra; // how many positional picks (1 or 2)
    let mut names = vec!["name".to_string()];
    for c in 0..extra {
        names.push(FIELD_NAMES[(c + 1) % 8].to_string());
    }
    for p in 0..picks {
        names.push(format!("phone{p}"));
    }
    let mut out = Table::new(names);
    for r in 0..size {
        let rec = tree.add_child(root, "contact", None);
        let name = format!("person{r}");
        tree.add_child(rec, "name", Some(name.clone()));
        let mut row = vec![Value::from_data(&name)];
        for c in 0..extra {
            let v = format!("{}-{r}", field_value(rng, c + 1, r));
            tree.add_child(rec, FIELD_NAMES[(c + 1) % 8], Some(v.clone()));
            row.push(Value::from_data(&v));
        }
        let mut phones = Vec::new();
        for p in 0..3 {
            let v = format!("555-{r}{p}{}", rng.gen_range(10..99));
            tree.add_child_with_pos(rec, "phone", p, Some(v.clone()));
            phones.push(v);
        }
        for phone in phones.iter().take(picks) {
            row.push(Value::from_data(phone));
        }
        out.push(row);
    }
    (tree, out)
}

/// The motivating-example pattern: persons referencing each other by id.
fn value_join(columns: usize, persons: usize) -> (Hdt, Table) {
    let tree = mitra_hdt::generate::social_network(persons.max(3), 1);
    let rows = mitra_hdt::generate::social_network_rows(persons.max(3), 1);
    let mut out = Table::new(vec![
        "person".to_string(),
        "friend".to_string(),
        "years".to_string(),
    ]);
    for r in rows {
        out.push(r.iter().map(|s| Value::from_data(s)).collect());
    }
    // Only the 3-column variant is generated; `columns` is kept for the spec's category.
    debug_assert_eq!(columns, 3);
    (tree, out)
}

/// Values at two different depths, both reachable with `descendants`.
fn deep_descendants(columns: usize, size: usize) -> (Hdt, Table) {
    let mut tree = Hdt::with_root("root");
    let root = tree.root();
    let mut out =
        Table::new(vec!["sku".to_string(), "warehouse".to_string()][..columns.min(2)].to_vec());
    for r in 0..size {
        let section = tree.add_child(root, "section", None);
        let shelf = tree.add_child(section, "shelf", None);
        let product = tree.add_child(shelf, "product", None);
        let sku = format!("sku-{r}");
        tree.add_child(product, "sku", Some(sku.clone()));
        let wh = tree.add_child(section, "warehouse", None);
        let wname = format!("wh-{r}");
        tree.add_child(wh, "code", Some(wname.clone()));
        let mut row = vec![Value::from_data(&sku)];
        if columns >= 2 {
            row.push(Value::from_data(&wname));
        }
        out.push(row);
    }
    (tree, out)
}

/// Inexpressible task: the output's last column concatenates two input fields with a
/// separator that never occurs in the tree, so no DSL program can produce it.
fn concat_task(rng: &mut StdRng, columns: usize, size: usize) -> (Hdt, Table) {
    let (mut tree, mut base) = flat_projection(rng, columns.saturating_sub(1).max(1), size);
    let _ = &mut tree;
    let mut names = base.columns.clone();
    names.push("full".to_string());
    let mut out = Table::new(names);
    for row in &base.rows {
        let mut r = row.clone();
        let concat = format!("{}|{}", row[0].render(), row[row.len() - 1].render());
        r.push(Value::Str(concat));
        out.push(r);
    }
    base.rows.clear();
    (tree, out)
}

// --- Document text rendering ------------------------------------------------------

/// Renders an HDT as XML text (inverse of the XML plug-in for leaf/element trees).
pub fn hdt_to_xml_text(tree: &Hdt) -> String {
    fn write_node(tree: &Hdt, node: NodeId, indent: usize, out: &mut String) {
        let pad = "  ".repeat(indent);
        let tag = tree.tag_name(node);
        if tree.is_leaf(node) {
            let data = mitra_hdt::xml::escape(tree.data(node).unwrap_or(""));
            out.push_str(&format!("{pad}<{tag}>{data}</{tag}>\n"));
        } else {
            out.push_str(&format!("{pad}<{tag}>\n"));
            for &c in tree.children(node) {
                write_node(tree, c, indent + 1, out);
            }
            out.push_str(&format!("{pad}</{tag}>\n"));
        }
    }
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    write_node(tree, tree.root(), 0, &mut out);
    out
}

/// Renders an HDT as JSON text: repeated child tags become arrays, leaves become
/// scalar values.
pub fn hdt_to_json_text(tree: &Hdt) -> String {
    fn node_to_json(tree: &Hdt, node: NodeId) -> mitra_hdt::JsonValue {
        use mitra_hdt::JsonValue;
        if tree.is_leaf(node) {
            let raw = tree.data(node).unwrap_or("");
            return match Value::from_data(raw) {
                Value::Int(i) => JsonValue::Number(i as f64),
                Value::Float(f) => JsonValue::Number(f),
                Value::Bool(b) => JsonValue::Bool(b),
                Value::Null => JsonValue::Null,
                Value::Str(s) => JsonValue::String(s),
            };
        }
        // Group children by tag, preserving order of first appearance.
        let mut fields: Vec<(String, Vec<NodeId>)> = Vec::new();
        for &c in tree.children(node) {
            let tag = tree.tag_name(c).to_string();
            match fields.iter_mut().find(|(t, _)| *t == tag) {
                Some((_, v)) => v.push(c),
                None => fields.push((tag, vec![c])),
            }
        }
        JsonValue::Object(
            fields
                .into_iter()
                .map(|(tag, nodes)| {
                    if nodes.len() == 1 {
                        (tag, node_to_json(tree, nodes[0]))
                    } else {
                        (
                            tag,
                            JsonValue::Array(
                                nodes.iter().map(|n| node_to_json(tree, *n)).collect(),
                            ),
                        )
                    }
                })
                .collect(),
        )
    }
    node_to_json(tree, tree.root()).to_string_pretty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_dsl::eval::eval_program;
    use mitra_synth::synthesize::{learn_transformation, SynthConfig};

    #[test]
    fn corpus_has_98_tasks_with_paper_counts() {
        let tasks = generate_corpus();
        assert_eq!(tasks.len(), 98);
        let xml = tasks.iter().filter(|t| t.format == DocFormat::Xml).count();
        let json = tasks.iter().filter(|t| t.format == DocFormat::Json).count();
        assert_eq!(xml, 51);
        assert_eq!(json, 47);
        let count = |f, c| {
            tasks
                .iter()
                .filter(|t| t.format == f && t.category == c)
                .count()
        };
        assert_eq!(count(DocFormat::Xml, Category::AtMostTwo), 17);
        assert_eq!(count(DocFormat::Xml, Category::Three), 12);
        assert_eq!(count(DocFormat::Xml, Category::Four), 12);
        assert_eq!(count(DocFormat::Xml, Category::FivePlus), 10);
        assert_eq!(count(DocFormat::Json, Category::AtMostTwo), 11);
        assert_eq!(count(DocFormat::Json, Category::Three), 11);
        assert_eq!(count(DocFormat::Json, Category::Four), 11);
        assert_eq!(count(DocFormat::Json, Category::FivePlus), 14);
        assert_eq!(tasks.iter().filter(|t| !t.expressible).count(), 6);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = generate_corpus();
        let b = generate_corpus();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert!(x.example.output.same_bag(&y.example.output));
        }
    }

    #[test]
    fn examples_are_well_formed() {
        for task in generate_corpus() {
            task.example.tree.validate().expect("tree validates");
            assert!(task.row_count() > 0, "task {} has empty output", task.name);
            assert_eq!(
                task.category,
                Category::of(task.example.output.arity()),
                "category mismatch for {}",
                task.name
            );
        }
    }

    #[test]
    fn document_text_roundtrips_through_parsers() {
        let tasks = generate_corpus();
        // Check a sample from each format to keep the test fast.
        for task in tasks.iter().filter(|t| t.id % 17 == 0) {
            let text = task.document_text();
            match task.format {
                DocFormat::Xml => {
                    mitra_hdt::parse_xml(&text).expect("emitted XML parses");
                }
                DocFormat::Json => {
                    mitra_hdt::parse_json(&text).expect("emitted JSON parses");
                }
            }
        }
    }

    #[test]
    fn a_sample_of_expressible_tasks_synthesize() {
        // Synthesizing all 98 here would be too slow for a unit test; the bench harness
        // does the full sweep.  Check one task per scenario family instead.
        let tasks = generate_corpus();
        let mut seen = std::collections::HashSet::new();
        let config = SynthConfig::default();
        for task in &tasks {
            let family = task.name.split('-').next().unwrap().to_string();
            if !task.expressible || !seen.insert(family) {
                continue;
            }
            let result = learn_transformation(std::slice::from_ref(&task.example), &config)
                .unwrap_or_else(|e| panic!("task {} failed: {e}", task.name));
            let out = eval_program(&task.example.tree, &result.program).unwrap();
            assert!(
                out.same_bag(&task.example.output),
                "task {} mismatch",
                task.name
            );
        }
    }

    #[test]
    fn inexpressible_tasks_fail_to_synthesize() {
        let tasks = generate_corpus();
        let config = SynthConfig {
            timeout: Some(std::time::Duration::from_secs(20)),
            ..Default::default()
        };
        let concat = tasks.iter().find(|t| !t.expressible).unwrap();
        assert!(learn_transformation(std::slice::from_ref(&concat.example), &config).is_err());
    }

    #[test]
    fn scaled_documents_grow() {
        let tasks = generate_corpus();
        let t = &tasks[0];
        let small = t.scaled_document(1);
        let big = t.scaled_document(10);
        assert!(big.len() > small.len());
    }
}
