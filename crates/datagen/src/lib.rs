//! # mitra-datagen — synthetic workloads for the evaluation
//!
//! The paper evaluates Mitra on 98 StackOverflow transformation tasks (Table 1) and on
//! four multi-gigabyte real-world datasets (Table 2).  Neither is shipped with the
//! paper, so this crate provides behaviour-preserving substitutes (see DESIGN.md §4):
//!
//! * [`corpus`] — 98 programmatically generated tree-to-table tasks, 51 XML and 47
//!   JSON, stratified by output-column count with the same per-category counts as
//!   Table 1 and covering the same kinds of transformation logic (projections,
//!   positional access, parent/child joins, value joins, constant filters) plus a few
//!   tasks intentionally outside the DSL to reproduce the unsolved rows;
//! * [`datasets`] — schema-faithful scaled-down generators for DBLP-, IMDB-, MONDIAL-
//!   and YELP-like documents, with target relational schemas matching the paper's
//!   table/column counts and ready-made migration plans;
//! * [`social`] — re-exports of the motivating-example generator from `mitra-hdt` plus
//!   helpers to produce XML/JSON text of arbitrary size for the scalability
//!   experiment (E3).

pub mod corpus;
pub mod datasets;
pub mod fuzz;
pub mod social;

pub use corpus::{generate_corpus, Category, DocFormat, Task};
pub use datasets::{dblp, imdb, mondial, yelp, DatasetSpec};
pub use fuzz::{
    cross_thread_mismatches, migration_scenario, run_scenario, run_suite, scenario, FuzzOutcome,
    FuzzReport, Scenario, ScenarioKind, Verdict,
};
