//! Schema-faithful simulators for the four real-world datasets of Table 2.
//!
//! The real DBLP/IMDB/MONDIAL/YELP dumps are multi-gigabyte external downloads; the
//! paper only ever shows the synthesizer small examples and then *executes* the
//! synthesized programs over the full datasets.  We therefore generate documents with
//! the same nesting structure and with relational target schemas matching the paper's
//! table/column counts (DBLP 9/39, IMDB 9/35, MONDIAL 25/120, YELP 7/34), scaled by an
//! element-count parameter, and build example-based migration plans exactly as a user
//! of Mitra would.
//!
//! Every dataset is described declaratively by a [`DatasetSpec`]: a list of top-level
//! entity kinds, each with scalar fields and nested child kinds.  One relational table
//! is produced per entity kind; nested kinds additionally carry a reference column to
//! their parent's first field (a natural key present in the data, which the paper
//! permits: "If the primary and foreign keys come from the input data set, we assume
//! that the dataset already obeys these constraints").

use mitra_dsl::{Table, Value};
use mitra_hdt::{Hdt, NodeId};
use mitra_migrate::migrate::{MigrationPlan, TableSource, TableTask};
use mitra_migrate::schema::{Column, Schema, TableSchema};
use mitra_synth::dfa::DfaLimits;
use mitra_synth::synthesize::{Example, SynthConfig};
use mitra_synth::universe::UniverseConfig;
use std::collections::HashMap;

/// One kind of nested entity (a child element/object repeated under its parent).
#[derive(Debug, Clone, Copy)]
pub struct ChildKind {
    /// Tag of the nested entity and name of its relational table.
    pub tag: &'static str,
    /// Scalar fields of the nested entity.
    pub fields: &'static [&'static str],
}

/// One kind of top-level entity.
#[derive(Debug, Clone, Copy)]
pub struct EntityKind {
    /// Tag of the entity and name of its relational table.
    pub tag: &'static str,
    /// Scalar fields; the first field acts as the natural key.
    pub fields: &'static [&'static str],
    /// Nested child kinds (each becomes its own table with a parent-reference column).
    pub children: &'static [ChildKind],
}

/// Declarative description of a dataset simulator.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Dataset name as reported in Table 2.
    pub name: &'static str,
    /// Source format reported in Table 2 ("XML" or "JSON").
    pub format: &'static str,
    /// Top-level entity kinds.
    pub entities: &'static [EntityKind],
}

impl DatasetSpec {
    /// The relational target schema (one table per entity/child kind).
    pub fn schema(&self) -> Schema {
        let mut schema = Schema::new();
        for entity in self.entities {
            let cols: Vec<Column> = entity.fields.iter().map(|f| Column::text(*f)).collect();
            schema = schema.with_table(
                TableSchema::new(entity.tag, cols).with_primary_key(&[entity.fields[0]]),
            );
            for child in entity.children {
                let parent_ref = format!("{}_{}", entity.tag, entity.fields[0]);
                let mut cols: Vec<Column> = vec![Column::text(parent_ref.clone())];
                cols.extend(child.fields.iter().map(|f| Column::text(*f)));
                schema = schema.with_table(TableSchema::new(child.tag, cols).with_foreign_key(
                    &[parent_ref.as_str()],
                    entity.tag,
                    &[entity.fields[0]],
                ));
            }
        }
        schema
    }

    /// Number of relational tables.
    pub fn table_count(&self) -> usize {
        self.entities.iter().map(|e| 1 + e.children.len()).sum()
    }

    /// Generates a document with `per_entity` instances of every top-level entity kind
    /// and two instances of every nested kind per parent, together with the expected
    /// relational tables (the ground truth used for examples and for validation).
    pub fn generate(&self, per_entity: usize) -> (Hdt, HashMap<String, Table>) {
        let schema = self.schema();
        let mut tree = Hdt::with_root("root");
        let root = tree.root();
        let mut tables: HashMap<String, Table> = schema
            .tables
            .iter()
            .map(|t| (t.name.clone(), Table::new(t.column_names())))
            .collect();

        for entity in self.entities {
            for i in 0..per_entity {
                let node = tree.add_child(root, entity.tag, None);
                let mut row = Vec::with_capacity(entity.fields.len());
                for (fi, field) in entity.fields.iter().enumerate() {
                    let value = field_value(entity.tag, field, i, fi);
                    tree.add_child(node, *field, Some(value.clone()));
                    row.push(Value::from_data(&value));
                }
                let parent_key = row[0].clone();
                if let Some(table) = tables.get_mut(entity.tag) {
                    table.push(row);
                }

                for child in entity.children {
                    for j in 0..2 {
                        let cnode = tree.add_child(node, child.tag, None);
                        let mut crow = vec![parent_key.clone()];
                        for (fi, field) in child.fields.iter().enumerate() {
                            let value = field_value(child.tag, field, i * 2 + j, fi);
                            tree.add_child(cnode, *field, Some(value.clone()));
                            crow.push(Value::from_data(&value));
                        }
                        if let Some(table) = tables.get_mut(child.tag) {
                            table.push(crow);
                        }
                    }
                }
            }
        }
        (tree, tables)
    }

    /// Builds the example-based migration plan: a small sample document provides one
    /// input–output example per table, exactly as a Mitra user would construct it.
    pub fn migration_plan(&self) -> MigrationPlan {
        let (sample, expected) = self.generate(2);
        let schema = self.schema();
        let mut plan = MigrationPlan::new(schema.clone());
        plan.synth_config = dataset_synth_config();
        for table in &schema.tables {
            // `generate` populates one expected table per schema table, so a
            // miss is impossible; skip the task rather than panic if it happens.
            let Some(output) = expected.get(&table.name).cloned() else {
                continue;
            };
            let task = TableTask {
                table: table.name.clone(),
                source: TableSource::Examples(vec![Example::new(sample.clone(), output)]),
                keys: Vec::new(),
                data_columns: table.column_names(),
            };
            plan = plan.with_task(task);
        }
        plan
    }

    /// Expected row count for a document generated with `per_entity` instances.
    pub fn expected_rows(&self, per_entity: usize) -> usize {
        self.entities
            .iter()
            .map(|e| per_entity + e.children.len() * per_entity * 2)
            .sum()
    }
}

/// Synthesis configuration tuned for the dataset tables (wide tables need a tight
/// predicate universe to keep per-table synthesis in the seconds range, matching the
/// paper's 0.8–3.7 s averages).
pub fn dataset_synth_config() -> SynthConfig {
    SynthConfig {
        dfa_limits: DfaLimits {
            max_states: 2048,
            max_word_len: 4,
        },
        max_column_candidates: 6,
        max_table_candidates: 24,
        universe: UniverseConfig {
            max_node_extractor_depth: 2,
            max_extractors_per_column: 12,
            max_constants: 8,
            with_ordering: false,
        },
        max_intermediate_rows: 200_000,
        exact_cover: true,
        timeout: Some(std::time::Duration::from_secs(120)),
        budget: mitra_synth::budget::Budget::UNLIMITED,
        threads: 0,
    }
}

/// Deterministic field value: unique per (entity kind, field, instance).
fn field_value(tag: &str, field: &str, index: usize, field_index: usize) -> String {
    if field.contains("year") {
        (1960 + (index * 7 + field_index) % 60).to_string()
    } else if field.contains("count")
        || field.contains("population")
        || field.contains("area")
        || field.contains("stars")
        || field.contains("votes")
        || field.contains("score")
        || field.contains("runtime")
        || field.contains("fans")
        || field.contains("likes")
        || field.contains("useful")
        || field.contains("season")
        || field.contains("number")
    {
        ((index + 1) * 13 + field_index * 101).to_string()
    } else {
        format!("{tag}-{field}-{index}")
    }
}

/// Renders a dataset document as JSON or XML text according to its declared format.
pub fn document_text(spec: &DatasetSpec, per_entity: usize) -> String {
    let (tree, _) = spec.generate(per_entity);
    if spec.format == "JSON" {
        crate::corpus::hdt_to_json_text(&tree)
    } else {
        crate::corpus::hdt_to_xml_text(&tree)
    }
}

/// Utility used by benches: count the elements (internal nodes) of a generated doc.
pub fn element_count(tree: &Hdt) -> usize {
    tree.ids().filter(|id: &NodeId| !tree.is_leaf(*id)).count()
}

// ---------------------------------------------------------------------------------
// DBLP — XML, 9 tables, 39 columns.
// ---------------------------------------------------------------------------------

/// DBLP-like bibliography dataset (XML; 9 tables, 39 columns).
pub fn dblp() -> DatasetSpec {
    DatasetSpec {
        name: "DBLP",
        format: "XML",
        entities: &[
            EntityKind {
                tag: "article",
                fields: &[
                    "article_key",
                    "article_title",
                    "article_year",
                    "journal",
                    "volume",
                    "article_pages",
                ],
                children: &[ChildKind {
                    tag: "article_author",
                    fields: &["author_name"],
                }],
            },
            EntityKind {
                tag: "inproceedings",
                fields: &[
                    "inproc_key",
                    "inproc_title",
                    "inproc_year",
                    "booktitle",
                    "inproc_pages",
                ],
                children: &[ChildKind {
                    tag: "inproceedings_author",
                    fields: &["inproc_author_name"],
                }],
            },
            EntityKind {
                tag: "proceedings",
                fields: &[
                    "proc_key",
                    "proc_title",
                    "proc_year",
                    "proc_publisher",
                    "proc_isbn",
                ],
                children: &[],
            },
            EntityKind {
                tag: "book",
                fields: &[
                    "book_key",
                    "book_title",
                    "book_year",
                    "book_publisher",
                    "book_isbn",
                ],
                children: &[],
            },
            EntityKind {
                tag: "phdthesis",
                fields: &["phd_key", "phd_title", "phd_year", "phd_school"],
                children: &[],
            },
            EntityKind {
                tag: "incollection",
                fields: &[
                    "incoll_key",
                    "incoll_title",
                    "incoll_year",
                    "incoll_booktitle",
                    "incoll_pages",
                ],
                children: &[],
            },
            EntityKind {
                tag: "www",
                fields: &["www_key", "www_title", "www_url", "www_year", "www_note"],
                children: &[],
            },
        ],
    }
}

// ---------------------------------------------------------------------------------
// IMDB — JSON, 9 tables, 35 columns.
// ---------------------------------------------------------------------------------

/// IMDB-like movie dataset (JSON; 9 tables, 35 columns).
pub fn imdb() -> DatasetSpec {
    DatasetSpec {
        name: "IMDB",
        format: "JSON",
        entities: &[
            EntityKind {
                tag: "movie",
                fields: &[
                    "movie_id",
                    "movie_title",
                    "movie_year",
                    "runtime",
                    "language",
                    "movie_country",
                ],
                children: &[
                    ChildKind {
                        tag: "movie_genre",
                        fields: &["genre"],
                    },
                    ChildKind {
                        tag: "movie_actor",
                        fields: &["actor_name", "role"],
                    },
                    ChildKind {
                        tag: "movie_director",
                        fields: &["director_name"],
                    },
                    ChildKind {
                        tag: "movie_rating",
                        fields: &["score", "votes"],
                    },
                ],
            },
            EntityKind {
                tag: "series",
                fields: &[
                    "series_id",
                    "series_title",
                    "start_year",
                    "end_year",
                    "episode_count",
                ],
                children: &[ChildKind {
                    tag: "episode",
                    fields: &["episode_title", "season", "episode_number", "air_year"],
                }],
            },
            EntityKind {
                tag: "person",
                fields: &[
                    "person_id",
                    "person_name",
                    "birth_year",
                    "death_year",
                    "profession",
                ],
                children: &[],
            },
            EntityKind {
                tag: "company",
                fields: &[
                    "company_id",
                    "company_name",
                    "company_country",
                    "founded_year",
                ],
                children: &[],
            },
        ],
    }
}

// ---------------------------------------------------------------------------------
// MONDIAL — XML, 25 tables, 120 columns.
// ---------------------------------------------------------------------------------

/// MONDIAL-like geography dataset (XML; 25 tables, 120 columns).
pub fn mondial() -> DatasetSpec {
    DatasetSpec {
        name: "MONDIAL",
        format: "XML",
        entities: &[EntityKind {
            tag: "country",
            fields: &[
                "country_code",
                "country_name",
                "capital",
                "country_area",
                "country_population",
            ],
            children: &[
                ChildKind {
                    tag: "province",
                    fields: &[
                        "province_name",
                        "province_capital",
                        "province_area",
                        "province_population",
                    ],
                },
                ChildKind {
                    tag: "city",
                    fields: &[
                        "city_name",
                        "city_longitude",
                        "city_latitude",
                        "city_population",
                    ],
                },
                ChildKind {
                    tag: "river",
                    fields: &["river_name", "river_length", "river_source", "river_mouth"],
                },
                ChildKind {
                    tag: "lake",
                    fields: &["lake_name", "lake_area", "lake_depth", "lake_elevation"],
                },
                ChildKind {
                    tag: "mountain",
                    fields: &[
                        "mountain_name",
                        "mountain_height",
                        "mountain_range",
                        "mountain_type",
                    ],
                },
                ChildKind {
                    tag: "desert",
                    fields: &[
                        "desert_name",
                        "desert_area",
                        "desert_longitude",
                        "desert_latitude",
                    ],
                },
                ChildKind {
                    tag: "island",
                    fields: &[
                        "island_name",
                        "island_area",
                        "island_elevation",
                        "island_sea",
                    ],
                },
                ChildKind {
                    tag: "sea",
                    fields: &["sea_name", "sea_depth", "sea_area", "sea_bordering"],
                },
                ChildKind {
                    tag: "language",
                    fields: &[
                        "language_name",
                        "language_percentage",
                        "language_family",
                        "language_script",
                    ],
                },
                ChildKind {
                    tag: "religion",
                    fields: &[
                        "religion_name",
                        "religion_percentage",
                        "religion_branch",
                        "religion_origin",
                    ],
                },
                ChildKind {
                    tag: "ethnicgroup",
                    fields: &[
                        "ethnic_name",
                        "ethnic_percentage",
                        "ethnic_region",
                        "ethnic_language",
                    ],
                },
                ChildKind {
                    tag: "border",
                    fields: &[
                        "border_country",
                        "border_length",
                        "border_type",
                        "border_crossings",
                    ],
                },
                ChildKind {
                    tag: "organization",
                    fields: &[
                        "org_abbrev",
                        "org_name",
                        "org_established",
                        "org_headquarters",
                    ],
                },
                ChildKind {
                    tag: "membership",
                    fields: &[
                        "membership_org",
                        "membership_type",
                        "membership_since",
                        "membership_status",
                    ],
                },
                ChildKind {
                    tag: "economy",
                    fields: &["gdp_total", "gdp_agriculture", "gdp_industry", "inflation"],
                },
                ChildKind {
                    tag: "population_data",
                    fields: &["census_year", "population_count", "growth_rate", "density"],
                },
                ChildKind {
                    tag: "politics",
                    fields: &[
                        "independence_year",
                        "government",
                        "dependent_on",
                        "was_dependent",
                    ],
                },
                ChildKind {
                    tag: "airport",
                    fields: &[
                        "airport_code",
                        "airport_name",
                        "airport_city",
                        "airport_elevation",
                    ],
                },
                ChildKind {
                    tag: "port",
                    fields: &["port_name", "port_city", "port_depth", "port_traffic"],
                },
                ChildKind {
                    tag: "canal",
                    fields: &["canal_name", "canal_length", "canal_depth"],
                },
                ChildKind {
                    tag: "national_park",
                    fields: &["park_name", "park_area", "park_founded"],
                },
                ChildKind {
                    tag: "highway",
                    fields: &["highway_code", "highway_length", "highway_lanes"],
                },
                ChildKind {
                    tag: "railway",
                    fields: &["railway_name", "railway_length", "railway_gauge"],
                },
                ChildKind {
                    tag: "power_plant",
                    fields: &["plant_name", "plant_capacity", "plant_type"],
                },
            ],
        }],
    }
}

// ---------------------------------------------------------------------------------
// YELP — JSON, 7 tables, 34 columns.
// ---------------------------------------------------------------------------------

/// YELP-like business/review dataset (JSON; 7 tables, 34 columns).
pub fn yelp() -> DatasetSpec {
    DatasetSpec {
        name: "YELP",
        format: "JSON",
        entities: &[
            EntityKind {
                tag: "business",
                fields: &[
                    "business_id",
                    "business_name",
                    "business_city",
                    "business_state",
                    "business_stars",
                    "business_review_count",
                    "address",
                    "postal_code",
                ],
                children: &[
                    ChildKind {
                        tag: "business_category",
                        fields: &["category"],
                    },
                    ChildKind {
                        tag: "business_hours",
                        fields: &["day", "open_time", "close_time"],
                    },
                    ChildKind {
                        tag: "review",
                        fields: &[
                            "review_id",
                            "review_stars",
                            "review_text",
                            "review_useful",
                            "review_date",
                        ],
                    },
                    ChildKind {
                        tag: "checkin",
                        fields: &["checkin_date", "checkin_count"],
                    },
                    ChildKind {
                        tag: "tip",
                        fields: &["tip_user", "tip_text", "tip_date", "tip_likes"],
                    },
                ],
            },
            EntityKind {
                tag: "user",
                fields: &[
                    "user_id",
                    "user_name",
                    "user_review_count",
                    "yelping_since",
                    "user_fans",
                    "average_stars",
                ],
                children: &[],
            },
        ],
    }
}

/// All four dataset simulators in the order of Table 2.
pub fn all_datasets() -> Vec<DatasetSpec> {
    vec![dblp(), imdb(), mondial(), yelp()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_and_column_counts_match_the_paper() {
        let expectations = [
            ("DBLP", 9, 39),
            ("IMDB", 9, 35),
            ("MONDIAL", 25, 120),
            ("YELP", 7, 34),
        ];
        for (spec, (name, tables, cols)) in all_datasets().iter().zip(expectations) {
            assert_eq!(spec.name, name);
            assert_eq!(spec.table_count(), tables, "{name} table count");
            assert_eq!(spec.schema().total_columns(), cols, "{name} column count");
            spec.schema()
                .validate()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn generated_documents_are_consistent_with_expected_tables() {
        for spec in all_datasets() {
            let (tree, tables) = spec.generate(2);
            tree.validate().unwrap();
            let total: usize = tables.values().map(Table::len).sum();
            assert_eq!(total, spec.expected_rows(2), "{}", spec.name);
            for (name, table) in &tables {
                assert!(!table.is_empty(), "{}.{name} is empty", spec.name);
            }
        }
    }

    #[test]
    fn migration_plans_validate() {
        for spec in all_datasets() {
            let plan = spec.migration_plan();
            plan.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert_eq!(plan.tasks.len(), spec.table_count());
        }
    }

    #[test]
    fn document_text_renders_in_declared_format() {
        let xml = document_text(&dblp(), 1);
        assert!(xml.starts_with("<?xml"));
        mitra_hdt::parse_xml(&xml).unwrap();
        let json = document_text(&yelp(), 1);
        mitra_hdt::parse_json(&json).unwrap();
    }

    #[test]
    fn scaling_increases_rows_linearly() {
        let spec = imdb();
        assert_eq!(spec.expected_rows(4), 2 * spec.expected_rows(2));
        let (t1, _) = spec.generate(1);
        let (t4, _) = spec.generate(4);
        assert!(t4.len() > 3 * t1.len());
    }

    #[test]
    fn one_dataset_table_synthesizes_end_to_end() {
        // Keep the unit test fast: synthesize only the DBLP phdthesis table (4 columns,
        // no children).  The full per-dataset sweep runs in the bench harness.
        let spec = dblp();
        let (sample, expected) = spec.generate(2);
        let example = Example::new(sample.clone(), expected["phdthesis"].clone());
        let result =
            mitra_synth::synthesize::learn_transformation(&[example], &dataset_synth_config())
                .expect("phdthesis table should synthesize");
        let (big, big_expected) = spec.generate(5);
        let out = mitra_synth::exec::execute(&big, &result.program);
        assert!(
            out.same_bag(&big_expected["phdthesis"]),
            "generalization failed"
        );
    }
}
