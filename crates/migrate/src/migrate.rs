//! Full-database migration orchestration (Section 6).
//!
//! A [`MigrationPlan`] describes, for every table of the target schema, how its data
//! columns are produced (either a DSL program given directly or input–output examples
//! from which one is synthesized) and how its key columns are produced (via
//! [`KeySpec`]s).  Running the plan against a document yields a populated [`Database`]
//! together with per-table statistics (synthesis time, execution time, row counts) —
//! the numbers reported in Table 2 of the paper.

use crate::database::Database;
use crate::keys::{eval_key, KeySpec};
use crate::schema::Schema;
use mitra_dsl::eval::node_value;
use mitra_dsl::{pretty, Program, Table, Value};
use mitra_hdt::Hdt;
use mitra_synth::budget::BudgetExhausted;
use mitra_synth::exec::{execute_nodes_budgeted, ExecStats};
use mitra_synth::synthesize::{
    learn_transformation, Example, SynthConfig, SynthError, SynthProfile,
};
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::time::{Duration, Instant};

/// How the data columns of one target table are obtained.
#[derive(Debug, Clone)]
pub enum TableSource {
    /// A DSL program is already known (e.g. written by hand or previously synthesized).
    Program(Program),
    /// Input–output examples from which the program must be synthesized.
    Examples(Vec<Example>),
}

/// Description of how to populate one table of the target schema.
#[derive(Debug, Clone)]
pub struct TableTask {
    /// Name of the target table (must exist in the schema).
    pub table: String,
    /// Where the data columns come from.
    pub source: TableSource,
    /// For each *key* column of the table (columns not produced by the program), the
    /// key specification, in schema-column order: entries are `(column name, spec)`.
    pub keys: Vec<(String, KeySpec)>,
    /// The schema columns (by name, in order) that the program's output columns map to.
    pub data_columns: Vec<String>,
}

/// A full migration plan: the target schema plus one task per table.
#[derive(Debug, Clone)]
pub struct MigrationPlan {
    /// The target relational schema.
    pub schema: Schema,
    /// Per-table population tasks.
    pub tasks: Vec<TableTask>,
    /// Synthesis configuration used for example-based tasks.
    pub synth_config: SynthConfig,
    /// Abort on the first failing table (`Err` from [`MigrationPlan::run`])
    /// instead of degrading to a partial report.  Plan-level problems — an
    /// invalid schema, a task naming an unknown table or column — abort in
    /// either mode; `strict` only governs per-table synthesis/execution
    /// failures.
    pub strict: bool,
}

/// What became of one table of a (non-strict) migration run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableOutcome {
    /// The table synthesized, executed and populated normally.
    Ok,
    /// A deterministic fuel budget ran out for this table (during synthesis or
    /// execution); the payload carries the breach and partial work profile.
    BudgetExhausted(BudgetExhausted),
    /// Synthesis or execution failed (including a caught worker panic).
    Failed(MigrationError),
    /// The table was not attempted: one of its foreign keys references a table
    /// that did not populate, so its rows could only dangle.
    Skipped {
        /// Human-readable reason (names the failed referenced table).
        reason: String,
    },
}

impl TableOutcome {
    /// True for [`TableOutcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, TableOutcome::Ok)
    }

    /// Stable lowercase label (`ok` / `budget-exhausted` / `failed` / `skipped`)
    /// for reports and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            TableOutcome::Ok => "ok",
            TableOutcome::BudgetExhausted(_) => "budget-exhausted",
            TableOutcome::Failed(_) => "failed",
            TableOutcome::Skipped { .. } => "skipped",
        }
    }
}

impl fmt::Display for TableOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableOutcome::Ok => f.write_str("ok"),
            TableOutcome::BudgetExhausted(e) => write!(f, "budget exhausted: {e}"),
            TableOutcome::Failed(e) => write!(f, "failed: {e}"),
            TableOutcome::Skipped { reason } => write!(f, "skipped: {reason}"),
        }
    }
}

/// Per-table migration statistics.
#[derive(Debug, Clone)]
pub struct TableReport {
    /// Table name.
    pub table: String,
    /// What became of the table.  Non-`Ok` tables report zero rows, an empty
    /// program (unless synthesis succeeded and execution failed) and default
    /// execution stats.
    pub outcome: TableOutcome,
    /// Time spent synthesizing the program (zero when a program was supplied).
    /// With a parallel plan this is the table's own wall time on its worker;
    /// per-table times overlap and may sum to more than the phase wall clock.
    pub synthesis_time: Duration,
    /// Time spent executing the program and generating keys.
    pub execution_time: Duration,
    /// Rows produced.
    pub rows: usize,
    /// The program that populated the table, pretty-printed.  Thread-count
    /// determinism checks compare this text across runs.
    pub program: String,
    /// Per-phase synthesis profile (`None` when a program was supplied directly).
    pub profile: Option<SynthProfile>,
    /// Execution-engine statistics for this table (tuples considered before the
    /// residual filter, rows emitted, chunk fan-out).
    pub exec_stats: ExecStats,
}

/// Per-table execution breakdown — the execution-side sibling of [`SynthProfile`].
#[derive(Debug, Clone, Default)]
pub struct TableExecProfile {
    /// Table name.
    pub table: String,
    /// Wall-clock time executing the program and generating keys for this table.
    pub wall: Duration,
    /// Chunks the residual filter fanned out over (1 = it ran inline).
    pub chunks: usize,
    /// Tuples produced before the residual predicate.
    pub tuples_considered: usize,
    /// Rows the program emitted (before key columns are attached).
    pub rows_emitted: usize,
    /// Join steps executed as pre-order interval joins.
    pub interval_join_steps: usize,
    /// Join steps executed as hash joins.
    pub hash_join_steps: usize,
    /// Extension steps executed as cross products.
    pub cross_product_steps: usize,
}

/// The execution-phase profile of a whole migration: one entry per table, in task
/// order, plus the phase wall clock.
#[derive(Debug, Clone, Default)]
pub struct ExecutionProfile {
    /// Per-table breakdowns, in task order.
    pub tables: Vec<TableExecProfile>,
    /// Wall-clock time of the whole execution phase.
    pub wall: Duration,
}

/// The result of running a migration plan.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Populated database.
    pub database: Database,
    /// Per-table statistics.
    pub tables: Vec<TableReport>,
    /// Constraint violations found in the final database (empty on success).
    pub violations: usize,
    /// Wall-clock time of the synthesis phase (all tables, including fan-out).
    pub synthesis_wall: Duration,
    /// Wall-clock time of the execution phase (all tables).
    pub execution_wall: Duration,
}

impl MigrationReport {
    /// Total synthesis time across tables (sum of per-table worker times; see
    /// [`MigrationReport::synthesis_wall`] for the elapsed wall clock).
    pub fn total_synthesis_time(&self) -> Duration {
        self.tables.iter().map(|t| t.synthesis_time).sum()
    }

    /// Total execution time across tables.
    pub fn total_execution_time(&self) -> Duration {
        self.tables.iter().map(|t| t.execution_time).sum()
    }

    /// Total rows across tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows).sum()
    }

    /// The pretty-printed programs of every table, in task order.  Two runs of the
    /// same plan — at any two thread counts — must produce equal vectors.
    pub fn programs(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.program.as_str()).collect()
    }

    /// Field-wise sum of the per-table synthesis profiles (tables whose program was
    /// supplied directly contribute nothing).
    pub fn synthesis_profile(&self) -> SynthProfile {
        let mut total = SynthProfile::default();
        for t in &self.tables {
            if let Some(p) = &t.profile {
                total.merge(p);
            }
        }
        total
    }

    /// Counts per-table outcomes — the degradation matrix of a non-strict run.
    pub fn degradation(&self) -> DegradationSummary {
        let mut d = DegradationSummary::default();
        for t in &self.tables {
            match &t.outcome {
                TableOutcome::Ok => d.ok += 1,
                TableOutcome::BudgetExhausted(_) => d.budget_exhausted += 1,
                TableOutcome::Failed(_) => d.failed += 1,
                TableOutcome::Skipped { .. } => d.skipped += 1,
            }
        }
        d
    }

    /// True when at least one table did not populate normally.
    pub fn is_degraded(&self) -> bool {
        self.tables.iter().any(|t| !t.outcome.is_ok())
    }

    /// True when *no* table populated — the only degraded state that maps to a
    /// nonzero CLI/bench exit code.
    pub fn all_failed(&self) -> bool {
        !self.tables.is_empty() && self.tables.iter().all(|t| !t.outcome.is_ok())
    }

    /// A deterministic one-object JSON rendering of the degradation state: the
    /// outcome counts plus a per-table `[name, outcome-label, detail]` list in
    /// task order.  Built by hand — the migrate crate deliberately has no JSON
    /// dependency — and containing no wall-clock fields, so two runs of the same
    /// plan at any two thread counts render byte-identical summaries.
    pub fn summary_json(&self) -> String {
        let d = self.degradation();
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"ok\": {}, \"budget_exhausted\": {}, \"failed\": {}, \"skipped\": {}, \"tables\": [",
            d.ok, d.budget_exhausted, d.failed, d.skipped
        ));
        for (i, t) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let detail = match &t.outcome {
                TableOutcome::Ok => String::new(),
                other => other.to_string(),
            };
            out.push_str(&format!(
                "[{}, {}, {}]",
                json_string(&t.table),
                json_string(t.outcome.label()),
                json_string(&detail)
            ));
        }
        out.push_str("]}");
        out
    }

    /// Per-table execution breakdown (wall time, chunk fan-out, tuple counts) — the
    /// execution-side counterpart of [`MigrationReport::synthesis_profile`].
    pub fn execution_profile(&self) -> ExecutionProfile {
        ExecutionProfile {
            tables: self
                .tables
                .iter()
                .map(|t| TableExecProfile {
                    table: t.table.clone(),
                    wall: t.execution_time,
                    chunks: t.exec_stats.chunks,
                    tuples_considered: t.exec_stats.tuples_considered,
                    rows_emitted: t.exec_stats.rows_emitted,
                    interval_join_steps: t.exec_stats.interval_join_steps,
                    hash_join_steps: t.exec_stats.hash_join_steps,
                    cross_product_steps: t.exec_stats.cross_product_steps,
                })
                .collect(),
            wall: self.execution_wall,
        }
    }
}

/// Outcome counts of a migration run, one bucket per [`TableOutcome`] variant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationSummary {
    /// Tables that populated normally.
    pub ok: usize,
    /// Tables whose fuel budget ran out.
    pub budget_exhausted: usize,
    /// Tables whose synthesis or execution failed (including caught panics).
    pub failed: usize,
    /// Tables skipped because a referenced table did not populate.
    pub skipped: usize,
}

impl DegradationSummary {
    /// Total number of tables.
    pub fn total(&self) -> usize {
        self.ok + self.budget_exhausted + self.failed + self.skipped
    }
}

impl fmt::Display for DegradationSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} tables ok ({} budget-exhausted, {} failed, {} skipped)",
            self.ok,
            self.total(),
            self.budget_exhausted,
            self.failed,
            self.skipped
        )
    }
}

/// Minimal JSON string escaping for [`MigrationReport::summary_json`].
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Errors raised while running a migration plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationError {
    /// The schema itself is invalid.
    InvalidSchema(String),
    /// A task references a table that is not part of the schema.
    UnknownTable(String),
    /// A task references a column that is not part of its table.
    UnknownColumn {
        /// The table of the task.
        table: String,
        /// The missing column.
        column: String,
    },
    /// Synthesis failed for a table.
    Synthesis {
        /// The table whose program could not be synthesized.
        table: String,
        /// The underlying synthesis error.
        error: SynthError,
    },
    /// The program arity does not match the declared data columns.
    ArityMismatch(String),
    /// A worker panicked while synthesizing or executing a table; the panic was
    /// caught at the table boundary and isolated to that table.
    Panicked {
        /// The table whose worker panicked.
        table: String,
        /// The stringified panic payload.
        message: String,
    },
}

impl fmt::Display for MigrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationError::InvalidSchema(e) => write!(f, "invalid schema: {e}"),
            MigrationError::UnknownTable(t) => write!(f, "task references unknown table `{t}`"),
            MigrationError::UnknownColumn { table, column } => {
                write!(f, "task for `{table}` references unknown column `{column}`")
            }
            MigrationError::Synthesis { table, error } => {
                write!(f, "synthesis failed for table `{table}`: {error}")
            }
            MigrationError::ArityMismatch(t) => {
                write!(
                    f,
                    "program arity does not match data columns for table `{t}`"
                )
            }
            MigrationError::Panicked { table, message } => {
                write!(f, "worker panicked for table `{table}`: {message}")
            }
        }
    }
}

impl std::error::Error for MigrationError {}

impl MigrationPlan {
    /// Creates a plan for a schema with no tasks yet.
    pub fn new(schema: Schema) -> Self {
        MigrationPlan {
            schema,
            tasks: Vec::new(),
            synth_config: SynthConfig::default(),
            strict: false,
        }
    }

    /// Adds a task (builder style).
    pub fn with_task(mut self, task: TableTask) -> Self {
        self.tasks.push(task);
        self
    }

    /// Sets abort-on-first-error mode (builder style).
    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }

    /// Validates the plan against the schema without running it.
    pub fn validate(&self) -> Result<(), MigrationError> {
        self.schema
            .validate()
            .map_err(|e| MigrationError::InvalidSchema(e.0))?;
        for task in &self.tasks {
            let Some(table) = self.schema.table(&task.table) else {
                return Err(MigrationError::UnknownTable(task.table.clone()));
            };
            for col in task
                .data_columns
                .iter()
                .chain(task.keys.iter().map(|(c, _)| c))
            {
                if table.column_index(col).is_none() {
                    return Err(MigrationError::UnknownColumn {
                        table: task.table.clone(),
                        column: col.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Runs the plan against a document, producing the populated database and report.
    ///
    /// The same `document` is used for every table, matching the paper's setting where
    /// a single large dataset is shredded into multiple tables.
    ///
    /// Synthesis is the dominant cost and every table's task is independent, so the
    /// synthesis phase fans out across tables on up to `synth_config.threads` pool
    /// workers (`0` = the process-global setting, `1` = sequential); each table's
    /// own `learn_transformation` may fan out further, bounded by the pool's nesting
    /// limit.  Results are deterministic: per-table outcomes are merged in task
    /// order, so the populated database, the reported error (if any) and the
    /// synthesized programs are identical at every thread count.
    ///
    /// **Partial failure.** By default a failing table — synthesis error, budget
    /// exhaustion, or a worker panic — degrades only itself: its
    /// [`TableReport::outcome`] records what happened, tables whose foreign keys
    /// reference it are [`TableOutcome::Skipped`], and every other table still
    /// synthesizes, executes, and emits rows.  `run` returns `Err` only for
    /// plan-validation failures; use [`MigrationReport::degradation`] /
    /// [`MigrationReport::all_failed`] to inspect the outcome matrix.  With
    /// [`MigrationPlan::with_strict`] the pre-degradation behaviour is restored:
    /// the first failure in task order aborts the whole run with `Err`.
    pub fn run(&self, document: &Hdt) -> Result<MigrationReport, MigrationError> {
        let _run_span = mitra_trace::span_detail("migrate", "run_plan", || {
            format!("tasks={}", self.tasks.len())
        });
        self.validate()?;
        // Shared read-only across workers (synthesis examples carry their own trees,
        // but execution below reuses this document): build its index exactly once.
        document.ensure_index();
        let threads = mitra_pool::resolve(self.synth_config.threads);

        // Phase 1 — synthesis fan-out: obtain every table's program.  The arity
        // check lives inside the worker so the canonical task-order merge reports
        // the same first error the sequential loop would have.  Each slot is
        // panic-isolated: a panicking table (including an injected
        // `migrate.table` fault) poisons only its own outcome.
        let _synth_span = mitra_trace::span("migrate", "synthesis_phase");
        let synth_start = Instant::now();
        type Synthesized = (Program, Duration, Option<SynthProfile>);
        type TableProgram = Result<Synthesized, MigrationError>;
        let outcomes: Vec<Result<TableProgram, mitra_pool::PanicPayload>> =
            mitra_pool::parallel_map_catch(threads, &self.tasks, |i, task| {
                let _span =
                    mitra_trace::span_detail("migrate", "synthesize_table", || task.table.clone());
                // Fault-injection site keyed by the task index, so which table
                // dies is independent of worker scheduling.
                mitra_trace::fault::hit("migrate.table", i as u64);
                let t0 = Instant::now();
                let (program, profile) = match &task.source {
                    TableSource::Program(p) => (p.clone(), None),
                    TableSource::Examples(examples) => {
                        let synthesis = learn_transformation(examples, &self.synth_config)
                            .map_err(|error| MigrationError::Synthesis {
                                table: task.table.clone(),
                                error,
                            })?;
                        (synthesis.program, Some(synthesis.profile))
                    }
                };
                let synthesis_time = match &task.source {
                    TableSource::Program(_) => Duration::ZERO,
                    TableSource::Examples(_) => t0.elapsed(),
                };
                if program.arity() != task.data_columns.len() {
                    return Err(MigrationError::ArityMismatch(task.table.clone()));
                }
                Ok((program, synthesis_time, profile))
            });
        // Canonical task-order merge.  Strict mode reports the first failure in
        // task order — the same error the sequential abort-on-first-error loop
        // would have raised.
        let mut synthesized: Vec<(Option<Synthesized>, TableOutcome)> =
            Vec::with_capacity(outcomes.len());
        for (task, outcome) in self.tasks.iter().zip(outcomes) {
            match outcome {
                Ok(Ok(p)) => synthesized.push((Some(p), TableOutcome::Ok)),
                Ok(Err(e)) => {
                    if self.strict {
                        return Err(e);
                    }
                    let o = match e {
                        MigrationError::Synthesis {
                            error: SynthError::BudgetExhausted(b),
                            ..
                        } => TableOutcome::BudgetExhausted(b),
                        other => TableOutcome::Failed(other),
                    };
                    synthesized.push((None, o));
                }
                Err(panic) => {
                    let e = MigrationError::Panicked {
                        table: task.table.clone(),
                        message: panic.message,
                    };
                    if self.strict {
                        return Err(e);
                    }
                    synthesized.push((None, TableOutcome::Failed(e)));
                }
            }
        }
        let synthesis_wall = synth_start.elapsed();
        drop(_synth_span);

        // Degrade dependents, to a fixpoint: a table whose foreign key references
        // a table that did not populate would only emit dangling rows — skip it
        // (and anything referencing *it*) instead.
        loop {
            let bad: std::collections::HashSet<&str> = self
                .tasks
                .iter()
                .zip(&synthesized)
                .filter(|(_, (_, o))| !o.is_ok())
                .map(|(t, _)| t.table.as_str())
                .collect();
            let mut changed = false;
            for (task, slot) in self.tasks.iter().zip(synthesized.iter_mut()) {
                if !slot.1.is_ok() {
                    continue;
                }
                // Tables were validated against the schema up front; a miss here
                // simply means no FK edges to inspect for this task.
                let Some(table_schema) = self.schema.table(&task.table) else {
                    continue;
                };
                if let Some(fk) = table_schema
                    .foreign_keys
                    .iter()
                    .find(|fk| bad.contains(fk.referenced_table.as_str()))
                {
                    slot.1 = TableOutcome::Skipped {
                        reason: format!(
                            "foreign key references table `{}` which did not populate",
                            fk.referenced_table
                        ),
                    };
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Phase 2 — execution, in task order.  Non-`Ok` tables contribute a
        // report entry but no rows; each executing table is wrapped in its own
        // `catch_unwind` (the nested pool fan-out re-panics deterministically,
        // so a worker panic surfaces here) and bounded by the row budget.
        let _exec_span = mitra_trace::span("migrate", "execution_phase");
        let exec_start = Instant::now();
        let mut database = Database::new(self.schema.clone());
        let mut reports = Vec::with_capacity(self.tasks.len());
        for (task, (prog, outcome)) in self.tasks.iter().zip(synthesized) {
            // An `Ok` outcome always carries a program by construction; should
            // that invariant ever break, fall through to the rowless-report arm
            // instead of panicking mid-migration.
            let (program, synthesis_time, profile) = match prog {
                Some(parts) if outcome.is_ok() => parts,
                prog => {
                    // A skipped table did synthesize: keep its program and profile so
                    // the degradation report shows what was lost.
                    let (program_text, synthesis_time, profile) = match prog {
                        Some((program, synthesis_time, profile)) => {
                            (pretty::program(&program), synthesis_time, profile)
                        }
                        None => (String::new(), Duration::ZERO, None),
                    };
                    let outcome = if outcome.is_ok() {
                        TableOutcome::Failed(MigrationError::Synthesis {
                            table: task.table.clone(),
                            error: SynthError::NoProgram,
                        })
                    } else {
                        outcome
                    };
                    reports.push(TableReport {
                        table: task.table.clone(),
                        outcome,
                        synthesis_time,
                        execution_time: Duration::ZERO,
                        rows: 0,
                        program: program_text,
                        profile,
                        exec_stats: ExecStats::default(),
                    });
                    continue;
                }
            };
            // `run` validated every task table against the schema up front; a
            // missing table here means the schema was mutated mid-run, which we
            // degrade (per-table failure) rather than crash on.
            let Some(table_schema) = self.schema.table(&task.table).cloned() else {
                reports.push(TableReport {
                    table: task.table.clone(),
                    outcome: TableOutcome::Failed(MigrationError::UnknownTable(task.table.clone())),
                    synthesis_time,
                    execution_time: Duration::ZERO,
                    rows: 0,
                    program: pretty::program(&program),
                    profile,
                    exec_stats: ExecStats::default(),
                });
                continue;
            };

            // Execute with the optimized engine, keeping node-level rows so the key
            // generators can see which tree nodes each row came from.
            let _table_span =
                mitra_trace::span_detail("migrate", "execute_table", || task.table.clone());
            let table_exec_start = Instant::now();
            let max_rows = self.synth_config.budget.max_rows;
            let executed = std::panic::catch_unwind(AssertUnwindSafe(|| {
                execute_nodes_budgeted(document, &program, max_rows)
            }));
            let (node_rows, exec_stats) = match executed {
                Err(payload) => {
                    let message = mitra_pool::panic_message(payload.as_ref());
                    mitra_trace::fault::record_panic(
                        format!("migrate.exec:{}", task.table),
                        message.clone(),
                    );
                    let e = MigrationError::Panicked {
                        table: task.table.clone(),
                        message,
                    };
                    if self.strict {
                        return Err(e);
                    }
                    reports.push(TableReport {
                        table: task.table.clone(),
                        outcome: TableOutcome::Failed(e),
                        synthesis_time,
                        execution_time: table_exec_start.elapsed(),
                        rows: 0,
                        program: pretty::program(&program),
                        profile,
                        exec_stats: ExecStats::default(),
                    });
                    continue;
                }
                Ok(Err(breach)) => {
                    let exhausted = BudgetExhausted::new(breach, profile.unwrap_or_default());
                    if self.strict {
                        return Err(MigrationError::Synthesis {
                            table: task.table.clone(),
                            error: SynthError::BudgetExhausted(exhausted),
                        });
                    }
                    reports.push(TableReport {
                        table: task.table.clone(),
                        outcome: TableOutcome::BudgetExhausted(exhausted),
                        synthesis_time,
                        execution_time: table_exec_start.elapsed(),
                        rows: 0,
                        program: pretty::program(&program),
                        profile,
                        exec_stats: ExecStats::default(),
                    });
                    continue;
                }
                Ok(Ok(result)) => result,
            };
            let mut out = Table::new(table_schema.column_names());
            for nodes in &node_rows {
                let data_values: Vec<Value> =
                    nodes.iter().map(|n| node_value(document, *n)).collect();
                let mut row: Vec<Value> = vec![Value::Null; table_schema.arity()];
                // Columns were validated against the schema up front; a lookup
                // miss would leave the cell `Null` rather than crash the table.
                for (i, col) in task.data_columns.iter().enumerate() {
                    if let Some(idx) = table_schema.column_index(col) {
                        row[idx] = data_values[i].clone();
                    }
                }
                for (col, spec) in &task.keys {
                    if let Some(idx) = table_schema.column_index(col) {
                        row[idx] =
                            eval_key(document, nodes, &data_values, spec).unwrap_or(Value::Null);
                    }
                }
                out.push(row);
            }
            let rows = out.len();
            database.set_table(&task.table, out);
            let execution_time = table_exec_start.elapsed();

            reports.push(TableReport {
                table: task.table.clone(),
                outcome: TableOutcome::Ok,
                synthesis_time,
                execution_time,
                rows,
                program: pretty::program(&program),
                profile,
                exec_stats,
            });
        }
        let execution_wall = exec_start.elapsed();
        drop(_exec_span);

        let violations = database.check_constraints().len();
        Ok(MigrationReport {
            database,
            tables: reports,
            violations,
            synthesis_wall,
            execution_wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use mitra_dsl::ast::{
        ColumnExtractor, CompareOp, NodeExtractor, Operand, Predicate, TableExtractor,
    };
    use mitra_hdt::generate::social_network;

    /// Schema: person(pk, name, pid) and friendship(person_fk, friend_pid, years).
    fn schema() -> Schema {
        Schema::new()
            .with_table(
                TableSchema::new(
                    "person",
                    vec![
                        Column::text("pk"),
                        Column::integer("pid"),
                        Column::text("name"),
                    ],
                )
                .with_primary_key(&["pk"]),
            )
            .with_table(
                TableSchema::new(
                    "friendship",
                    vec![
                        Column::text("person_fk"),
                        Column::integer("friend_pid"),
                        Column::integer("years"),
                    ],
                )
                .with_foreign_key(&["person_fk"], "person", &["pk"]),
            )
    }

    fn person_program() -> Program {
        use ColumnExtractor as CE;
        let id = CE::pchildren(CE::children(CE::Input, "Person"), "id", 0);
        let name = CE::pchildren(CE::children(CE::Input, "Person"), "name", 0);
        let pred = Predicate::Compare {
            extractor: NodeExtractor::parent(NodeExtractor::Id),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::parent(NodeExtractor::Id),
                index: 1,
            },
        };
        Program::new(TableExtractor::new(vec![id, name]), pred)
    }

    fn friendship_program() -> Program {
        use ColumnExtractor as CE;
        let friend = CE::children(
            CE::pchildren(CE::children(CE::Input, "Person"), "Friendship", 0),
            "Friend",
        );
        let fid = CE::pchildren(friend.clone(), "fid", 0);
        let years = CE::pchildren(friend, "years", 0);
        let pred = Predicate::Compare {
            extractor: NodeExtractor::parent(NodeExtractor::Id),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::parent(NodeExtractor::Id),
                index: 1,
            },
        };
        Program::new(TableExtractor::new(vec![fid, years]), pred)
    }

    fn plan() -> MigrationPlan {
        MigrationPlan::new(schema())
            .with_task(TableTask {
                table: "person".to_string(),
                source: TableSource::Program(person_program()),
                // pk is synthesized from the row's nodes.
                keys: vec![("pk".to_string(), KeySpec::SyntheticPrimary)],
                data_columns: vec!["pid".to_string(), "name".to_string()],
            })
            .with_task(TableTask {
                table: "friendship".to_string(),
                source: TableSource::Program(friendship_program()),
                // The foreign key recovers the Person row's (id, name) nodes from the
                // fid node: Person = parent(parent(parent(fid))).
                keys: vec![(
                    "person_fk".to_string(),
                    KeySpec::Foreign {
                        derivations: vec![
                            (
                                0,
                                NodeExtractor::child(
                                    NodeExtractor::parent(NodeExtractor::parent(
                                        NodeExtractor::parent(NodeExtractor::Id),
                                    )),
                                    "id",
                                    0,
                                ),
                            ),
                            (
                                0,
                                NodeExtractor::child(
                                    NodeExtractor::parent(NodeExtractor::parent(
                                        NodeExtractor::parent(NodeExtractor::Id),
                                    )),
                                    "name",
                                    0,
                                ),
                            ),
                        ],
                    },
                )],
                data_columns: vec!["friend_pid".to_string(), "years".to_string()],
            })
    }

    #[test]
    fn plan_validation_catches_unknown_names() {
        let mut bad = plan();
        bad.tasks[0].table = "nope".to_string();
        assert!(matches!(
            bad.run(&social_network(2, 1)),
            Err(MigrationError::UnknownTable(_))
        ));

        let mut bad2 = plan();
        bad2.tasks[0].data_columns[0] = "ghost".to_string();
        assert!(matches!(
            bad2.run(&social_network(2, 1)),
            Err(MigrationError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn migration_populates_both_tables() {
        let doc = social_network(4, 2);
        let report = plan().run(&doc).unwrap();
        assert_eq!(report.database.row_count("person"), 4);
        assert_eq!(report.database.row_count("friendship"), 8);
        assert_eq!(report.total_rows(), 12);
        assert_eq!(report.tables.len(), 2);
    }

    #[test]
    fn execution_profile_reports_every_table() {
        let doc = social_network(4, 2);
        let report = plan().run(&doc).unwrap();
        let profile = report.execution_profile();
        assert_eq!(profile.tables.len(), 2);
        assert_eq!(profile.tables[0].table, "person");
        assert_eq!(profile.tables[1].table, "friendship");
        for t in &profile.tables {
            assert!(t.chunks >= 1, "chunk count missing for {}", t.table);
            assert!(t.tuples_considered >= t.rows_emitted);
        }
        assert_eq!(profile.tables[0].rows_emitted, 4);
        assert_eq!(profile.tables[1].rows_emitted, 8);
        assert!(profile.wall >= profile.tables.iter().map(|t| t.wall).sum());
    }

    #[test]
    fn generated_keys_satisfy_constraints() {
        let doc = social_network(5, 2);
        let report = plan().run(&doc).unwrap();
        assert_eq!(report.violations, 0, "constraint violations found");
    }

    #[test]
    fn foreign_keys_join_back_to_the_right_person() {
        let doc = social_network(3, 1);
        let report = plan().run(&doc).unwrap();
        let db = &report.database;
        // Every friendship row's person_fk must resolve to a person row, and the
        // referenced person must not be the friend itself (fid differs from pid).
        let friendship = db.table("friendship").unwrap();
        for row in &friendship.rows {
            let fk = &row[0];
            let person = db
                .select_where("person", "pk", fk)
                .pop()
                .expect("fk must resolve");
            let friend_pid = &row[1];
            assert_ne!(
                &person[1], friend_pid,
                "a person cannot befriend themselves"
            );
        }
    }

    #[test]
    fn synthesis_based_task_works_end_to_end() {
        // Synthesize the person-name table from an example instead of a hand-written program.
        let example_doc = social_network(3, 1);
        let output = Table::from_rows(&["name"], &[&["Alice"], &["Bob"], &["Carol"]]);
        let schema = Schema::new().with_table(
            TableSchema::new("names", vec![Column::text("pk"), Column::text("name")])
                .with_primary_key(&["pk"]),
        );
        let plan = MigrationPlan::new(schema).with_task(TableTask {
            table: "names".to_string(),
            source: TableSource::Examples(vec![Example::new(example_doc, output)]),
            keys: vec![("pk".to_string(), KeySpec::SyntheticPrimary)],
            data_columns: vec!["name".to_string()],
        });
        let big = social_network(10, 1);
        let report = plan.run(&big).unwrap();
        assert_eq!(report.database.row_count("names"), 10);
        assert!(report.total_synthesis_time() > Duration::ZERO);
        assert_eq!(report.violations, 0);
    }

    #[test]
    fn thread_count_does_not_change_migration_results() {
        let example_doc = social_network(3, 1);
        let output = Table::from_rows(&["name"], &[&["Alice"], &["Bob"], &["Carol"]]);
        let schema = Schema::new().with_table(
            TableSchema::new("names", vec![Column::text("pk"), Column::text("name")])
                .with_primary_key(&["pk"]),
        );
        let base_plan = MigrationPlan::new(schema).with_task(TableTask {
            table: "names".to_string(),
            source: TableSource::Examples(vec![Example::new(example_doc, output)]),
            keys: vec![("pk".to_string(), KeySpec::SyntheticPrimary)],
            data_columns: vec!["name".to_string()],
        });
        let big = social_network(8, 2);
        let run_at = |threads: usize| {
            let mut plan = base_plan.clone();
            plan.synth_config.threads = threads;
            plan.run(&big).unwrap()
        };
        let sequential = run_at(1);
        let parallel = run_at(4);
        assert_eq!(sequential.programs(), parallel.programs());
        assert_eq!(
            sequential.database.table("names").unwrap().rows,
            parallel.database.table("names").unwrap().rows
        );
        assert!(sequential.synthesis_wall > Duration::ZERO);
        assert!(!sequential.tables[0].program.is_empty());
    }

    #[test]
    fn arity_mismatch_degrades_the_table_and_strict_mode_aborts() {
        let mut p = plan();
        p.tasks[0].data_columns.pop();
        // Non-strict: person fails, friendship (whose foreign key references
        // person) is skipped, and the run still returns a report.
        let report = p.run(&social_network(2, 1)).unwrap();
        assert!(matches!(
            report.tables[0].outcome,
            TableOutcome::Failed(MigrationError::ArityMismatch(_))
        ));
        match &report.tables[1].outcome {
            TableOutcome::Skipped { reason } => assert!(reason.contains("person")),
            other => panic!("expected friendship to be skipped, got {other:?}"),
        }
        assert_eq!(report.total_rows(), 0);
        assert!(report.all_failed());
        // Strict restores the abort-on-first-error contract.
        let strict = p.with_strict(true);
        assert!(matches!(
            strict.run(&social_network(2, 1)),
            Err(MigrationError::ArityMismatch(_))
        ));
    }

    /// Four independent tables, all driven by the same hand-written program.
    fn four_table_plan() -> MigrationPlan {
        let mut schema = Schema::new();
        let mut tasks = Vec::new();
        for name in ["t0", "t1", "t2", "t3"] {
            schema = schema.with_table(
                TableSchema::new(
                    name,
                    vec![
                        Column::text("pk"),
                        Column::integer("pid"),
                        Column::text("name"),
                    ],
                )
                .with_primary_key(&["pk"]),
            );
            tasks.push(TableTask {
                table: name.to_string(),
                source: TableSource::Program(person_program()),
                keys: vec![("pk".to_string(), KeySpec::SyntheticPrimary)],
                data_columns: vec!["pid".to_string(), "name".to_string()],
            });
        }
        let mut plan = MigrationPlan::new(schema);
        for task in tasks {
            plan = plan.with_task(task);
        }
        plan
    }

    /// Clears the process-global fault even when the test panics mid-way.
    struct FaultGuard;
    impl Drop for FaultGuard {
        fn drop(&mut self) {
            mitra_trace::fault::set_fault(None);
        }
    }

    #[test]
    fn poisoned_table_leaves_siblings_populated_and_identical_across_threads() {
        // `migrate.table#3` only exists in this 4-task plan, so the
        // process-global fault cannot fire in concurrently running tests (their
        // plans have at most 2 tasks).
        let _guard = FaultGuard;
        mitra_trace::fault::set_fault(Some(mitra_trace::fault::FaultSpec {
            site: "migrate.table".into(),
            nth: 3,
        }));
        let doc = social_network(4, 2);
        let run_at = |threads: usize| {
            let mut p = four_table_plan();
            p.synth_config.threads = threads;
            p.run(&doc).unwrap()
        };
        let seq = run_at(1);
        assert_eq!(seq.tables.len(), 4);
        for t in &seq.tables[..3] {
            assert!(t.outcome.is_ok(), "table {} should be ok", t.table);
            assert_eq!(t.rows, 4);
        }
        match &seq.tables[3].outcome {
            TableOutcome::Failed(MigrationError::Panicked { table, message }) => {
                assert_eq!(table, "t3");
                assert_eq!(message, "injected fault: migrate.table#3");
            }
            other => panic!("expected a panicked outcome, got {other:?}"),
        }
        let d = seq.degradation();
        assert_eq!(
            (d.ok, d.failed, d.skipped, d.budget_exhausted),
            (3, 1, 0, 0)
        );
        assert!(seq.is_degraded());
        assert!(!seq.all_failed());
        // The degradation report is byte-identical at every thread count.
        let par = run_at(4);
        assert_eq!(seq.summary_json(), par.summary_json());
        // Strict mode turns the same poison into a hard error.
        let strict = four_table_plan().with_strict(true);
        assert!(matches!(
            strict.run(&doc),
            Err(MigrationError::Panicked { .. })
        ));
    }

    #[test]
    fn budget_exhaustion_degrades_only_the_affected_table() {
        let example_doc = social_network(3, 1);
        let output = Table::from_rows(&["name"], &[&["Alice"], &["Bob"], &["Carol"]]);
        let schema = Schema::new()
            .with_table(
                TableSchema::new("names", vec![Column::text("pk"), Column::text("name")])
                    .with_primary_key(&["pk"]),
            )
            .with_table(
                TableSchema::new(
                    "person",
                    vec![
                        Column::text("pk"),
                        Column::integer("pid"),
                        Column::text("name"),
                    ],
                )
                .with_primary_key(&["pk"]),
            );
        let mut plan = MigrationPlan::new(schema)
            .with_task(TableTask {
                table: "names".to_string(),
                source: TableSource::Examples(vec![Example::new(example_doc, output)]),
                keys: vec![("pk".to_string(), KeySpec::SyntheticPrimary)],
                data_columns: vec!["name".to_string()],
            })
            .with_task(TableTask {
                table: "person".to_string(),
                source: TableSource::Program(person_program()),
                keys: vec![("pk".to_string(), KeySpec::SyntheticPrimary)],
                data_columns: vec!["pid".to_string(), "name".to_string()],
            });
        // Zero candidate fuel: the synthesis-backed table exhausts immediately,
        // the program-backed table is untouched (its source needs no search).
        plan.synth_config.budget = mitra_synth::budget::Budget {
            max_candidates: Some(0),
            ..Default::default()
        };
        let report = plan.run(&social_network(4, 2)).unwrap();
        match &report.tables[0].outcome {
            TableOutcome::BudgetExhausted(b) => {
                assert_eq!(
                    b.breach.resource,
                    mitra_synth::budget::BudgetResource::Candidates
                );
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
        assert_eq!(report.tables[0].rows, 0);
        assert!(report.tables[1].outcome.is_ok());
        assert_eq!(report.tables[1].rows, 4);
        assert!(report.is_degraded());
        assert!(!report.all_failed());
        let summary = report.summary_json();
        assert!(summary.contains("\"budget_exhausted\": 1"), "{summary}");
        assert!(summary.contains("\"ok\": 1"), "{summary}");
    }
}
