//! Full-database migration orchestration (Section 6).
//!
//! A [`MigrationPlan`] describes, for every table of the target schema, how its data
//! columns are produced (either a DSL program given directly or input–output examples
//! from which one is synthesized) and how its key columns are produced (via
//! [`KeySpec`]s).  Running the plan against a document yields a populated [`Database`]
//! together with per-table statistics (synthesis time, execution time, row counts) —
//! the numbers reported in Table 2 of the paper.

use crate::database::Database;
use crate::keys::{eval_key, KeySpec};
use crate::schema::Schema;
use mitra_dsl::eval::node_value;
use mitra_dsl::{pretty, Program, Table, Value};
use mitra_hdt::Hdt;
use mitra_synth::exec::{execute_nodes_with_stats, ExecStats};
use mitra_synth::synthesize::{
    learn_transformation, Example, SynthConfig, SynthError, SynthProfile,
};
use std::fmt;
use std::time::{Duration, Instant};

/// How the data columns of one target table are obtained.
#[derive(Debug, Clone)]
pub enum TableSource {
    /// A DSL program is already known (e.g. written by hand or previously synthesized).
    Program(Program),
    /// Input–output examples from which the program must be synthesized.
    Examples(Vec<Example>),
}

/// Description of how to populate one table of the target schema.
#[derive(Debug, Clone)]
pub struct TableTask {
    /// Name of the target table (must exist in the schema).
    pub table: String,
    /// Where the data columns come from.
    pub source: TableSource,
    /// For each *key* column of the table (columns not produced by the program), the
    /// key specification, in schema-column order: entries are `(column name, spec)`.
    pub keys: Vec<(String, KeySpec)>,
    /// The schema columns (by name, in order) that the program's output columns map to.
    pub data_columns: Vec<String>,
}

/// A full migration plan: the target schema plus one task per table.
#[derive(Debug, Clone)]
pub struct MigrationPlan {
    /// The target relational schema.
    pub schema: Schema,
    /// Per-table population tasks.
    pub tasks: Vec<TableTask>,
    /// Synthesis configuration used for example-based tasks.
    pub synth_config: SynthConfig,
}

/// Per-table migration statistics.
#[derive(Debug, Clone)]
pub struct TableReport {
    /// Table name.
    pub table: String,
    /// Time spent synthesizing the program (zero when a program was supplied).
    /// With a parallel plan this is the table's own wall time on its worker;
    /// per-table times overlap and may sum to more than the phase wall clock.
    pub synthesis_time: Duration,
    /// Time spent executing the program and generating keys.
    pub execution_time: Duration,
    /// Rows produced.
    pub rows: usize,
    /// The program that populated the table, pretty-printed.  Thread-count
    /// determinism checks compare this text across runs.
    pub program: String,
    /// Per-phase synthesis profile (`None` when a program was supplied directly).
    pub profile: Option<SynthProfile>,
    /// Execution-engine statistics for this table (tuples considered before the
    /// residual filter, rows emitted, chunk fan-out).
    pub exec_stats: ExecStats,
}

/// Per-table execution breakdown — the execution-side sibling of [`SynthProfile`].
#[derive(Debug, Clone, Default)]
pub struct TableExecProfile {
    /// Table name.
    pub table: String,
    /// Wall-clock time executing the program and generating keys for this table.
    pub wall: Duration,
    /// Chunks the residual filter fanned out over (1 = it ran inline).
    pub chunks: usize,
    /// Tuples produced before the residual predicate.
    pub tuples_considered: usize,
    /// Rows the program emitted (before key columns are attached).
    pub rows_emitted: usize,
}

/// The execution-phase profile of a whole migration: one entry per table, in task
/// order, plus the phase wall clock.
#[derive(Debug, Clone, Default)]
pub struct ExecutionProfile {
    /// Per-table breakdowns, in task order.
    pub tables: Vec<TableExecProfile>,
    /// Wall-clock time of the whole execution phase.
    pub wall: Duration,
}

/// The result of running a migration plan.
#[derive(Debug, Clone)]
pub struct MigrationReport {
    /// Populated database.
    pub database: Database,
    /// Per-table statistics.
    pub tables: Vec<TableReport>,
    /// Constraint violations found in the final database (empty on success).
    pub violations: usize,
    /// Wall-clock time of the synthesis phase (all tables, including fan-out).
    pub synthesis_wall: Duration,
    /// Wall-clock time of the execution phase (all tables).
    pub execution_wall: Duration,
}

impl MigrationReport {
    /// Total synthesis time across tables (sum of per-table worker times; see
    /// [`MigrationReport::synthesis_wall`] for the elapsed wall clock).
    pub fn total_synthesis_time(&self) -> Duration {
        self.tables.iter().map(|t| t.synthesis_time).sum()
    }

    /// Total execution time across tables.
    pub fn total_execution_time(&self) -> Duration {
        self.tables.iter().map(|t| t.execution_time).sum()
    }

    /// Total rows across tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(|t| t.rows).sum()
    }

    /// The pretty-printed programs of every table, in task order.  Two runs of the
    /// same plan — at any two thread counts — must produce equal vectors.
    pub fn programs(&self) -> Vec<&str> {
        self.tables.iter().map(|t| t.program.as_str()).collect()
    }

    /// Field-wise sum of the per-table synthesis profiles (tables whose program was
    /// supplied directly contribute nothing).
    pub fn synthesis_profile(&self) -> SynthProfile {
        let mut total = SynthProfile::default();
        for t in &self.tables {
            if let Some(p) = &t.profile {
                total.merge(p);
            }
        }
        total
    }

    /// Per-table execution breakdown (wall time, chunk fan-out, tuple counts) — the
    /// execution-side counterpart of [`MigrationReport::synthesis_profile`].
    pub fn execution_profile(&self) -> ExecutionProfile {
        ExecutionProfile {
            tables: self
                .tables
                .iter()
                .map(|t| TableExecProfile {
                    table: t.table.clone(),
                    wall: t.execution_time,
                    chunks: t.exec_stats.chunks,
                    tuples_considered: t.exec_stats.tuples_considered,
                    rows_emitted: t.exec_stats.rows_emitted,
                })
                .collect(),
            wall: self.execution_wall,
        }
    }
}

/// Errors raised while running a migration plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigrationError {
    /// The schema itself is invalid.
    InvalidSchema(String),
    /// A task references a table that is not part of the schema.
    UnknownTable(String),
    /// A task references a column that is not part of its table.
    UnknownColumn {
        /// The table of the task.
        table: String,
        /// The missing column.
        column: String,
    },
    /// Synthesis failed for a table.
    Synthesis {
        /// The table whose program could not be synthesized.
        table: String,
        /// The underlying synthesis error.
        error: SynthError,
    },
    /// The program arity does not match the declared data columns.
    ArityMismatch(String),
}

impl fmt::Display for MigrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationError::InvalidSchema(e) => write!(f, "invalid schema: {e}"),
            MigrationError::UnknownTable(t) => write!(f, "task references unknown table `{t}`"),
            MigrationError::UnknownColumn { table, column } => {
                write!(f, "task for `{table}` references unknown column `{column}`")
            }
            MigrationError::Synthesis { table, error } => {
                write!(f, "synthesis failed for table `{table}`: {error}")
            }
            MigrationError::ArityMismatch(t) => {
                write!(
                    f,
                    "program arity does not match data columns for table `{t}`"
                )
            }
        }
    }
}

impl std::error::Error for MigrationError {}

impl MigrationPlan {
    /// Creates a plan for a schema with no tasks yet.
    pub fn new(schema: Schema) -> Self {
        MigrationPlan {
            schema,
            tasks: Vec::new(),
            synth_config: SynthConfig::default(),
        }
    }

    /// Adds a task (builder style).
    pub fn with_task(mut self, task: TableTask) -> Self {
        self.tasks.push(task);
        self
    }

    /// Validates the plan against the schema without running it.
    pub fn validate(&self) -> Result<(), MigrationError> {
        self.schema
            .validate()
            .map_err(|e| MigrationError::InvalidSchema(e.0))?;
        for task in &self.tasks {
            let Some(table) = self.schema.table(&task.table) else {
                return Err(MigrationError::UnknownTable(task.table.clone()));
            };
            for col in task
                .data_columns
                .iter()
                .chain(task.keys.iter().map(|(c, _)| c))
            {
                if table.column_index(col).is_none() {
                    return Err(MigrationError::UnknownColumn {
                        table: task.table.clone(),
                        column: col.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Runs the plan against a document, producing the populated database and report.
    ///
    /// The same `document` is used for every table, matching the paper's setting where
    /// a single large dataset is shredded into multiple tables.
    ///
    /// Synthesis is the dominant cost and every table's task is independent, so the
    /// synthesis phase fans out across tables on up to `synth_config.threads` pool
    /// workers (`0` = the process-global setting, `1` = sequential); each table's
    /// own `learn_transformation` may fan out further, bounded by the pool's nesting
    /// limit.  Results are deterministic: per-table outcomes are merged in task
    /// order, so the populated database, the reported error (if any) and the
    /// synthesized programs are identical at every thread count.
    pub fn run(&self, document: &Hdt) -> Result<MigrationReport, MigrationError> {
        let _run_span = mitra_trace::span_detail("migrate", "run_plan", || {
            format!("tasks={}", self.tasks.len())
        });
        self.validate()?;
        // Shared read-only across workers (synthesis examples carry their own trees,
        // but execution below reuses this document): build its index exactly once.
        document.ensure_index();
        let threads = mitra_pool::resolve(self.synth_config.threads);

        // Phase 1 — synthesis fan-out: obtain every table's program.  The arity
        // check lives inside the worker so the canonical task-order merge reports
        // the same first error the sequential loop would have.
        let _synth_span = mitra_trace::span("migrate", "synthesis_phase");
        let synth_start = Instant::now();
        type TableProgram = Result<(Program, Duration, Option<SynthProfile>), MigrationError>;
        let outcomes: Vec<TableProgram> =
            mitra_pool::parallel_map(threads, &self.tasks, |_, task| {
                let _span =
                    mitra_trace::span_detail("migrate", "synthesize_table", || task.table.clone());
                let t0 = Instant::now();
                let (program, profile) = match &task.source {
                    TableSource::Program(p) => (p.clone(), None),
                    TableSource::Examples(examples) => {
                        let synthesis = learn_transformation(examples, &self.synth_config)
                            .map_err(|error| MigrationError::Synthesis {
                                table: task.table.clone(),
                                error,
                            })?;
                        (synthesis.program, Some(synthesis.profile))
                    }
                };
                let synthesis_time = match &task.source {
                    TableSource::Program(_) => Duration::ZERO,
                    TableSource::Examples(_) => t0.elapsed(),
                };
                if program.arity() != task.data_columns.len() {
                    return Err(MigrationError::ArityMismatch(task.table.clone()));
                }
                Ok((program, synthesis_time, profile))
            });
        let mut programs = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            programs.push(outcome?);
        }
        let synthesis_wall = synth_start.elapsed();
        drop(_synth_span);

        // Phase 2 — execution, in task order.
        let _exec_span = mitra_trace::span("migrate", "execution_phase");
        let exec_start = Instant::now();
        let mut database = Database::new(self.schema.clone());
        let mut reports = Vec::with_capacity(self.tasks.len());
        for (task, (program, synthesis_time, profile)) in self.tasks.iter().zip(programs) {
            let table_schema = self
                .schema
                .table(&task.table)
                .expect("validated above")
                .clone();

            // Execute with the optimized engine, keeping node-level rows so the key
            // generators can see which tree nodes each row came from.
            let _table_span =
                mitra_trace::span_detail("migrate", "execute_table", || task.table.clone());
            let table_exec_start = Instant::now();
            let (node_rows, exec_stats) = execute_nodes_with_stats(document, &program);
            let mut out = Table::new(table_schema.column_names());
            for nodes in &node_rows {
                let data_values: Vec<Value> =
                    nodes.iter().map(|n| node_value(document, *n)).collect();
                let mut row: Vec<Value> = vec![Value::Null; table_schema.arity()];
                for (i, col) in task.data_columns.iter().enumerate() {
                    let idx = table_schema.column_index(col).expect("validated");
                    row[idx] = data_values[i].clone();
                }
                for (col, spec) in &task.keys {
                    let idx = table_schema.column_index(col).expect("validated");
                    row[idx] = eval_key(document, nodes, &data_values, spec).unwrap_or(Value::Null);
                }
                out.push(row);
            }
            let rows = out.len();
            database.set_table(&task.table, out);
            let execution_time = table_exec_start.elapsed();

            reports.push(TableReport {
                table: task.table.clone(),
                synthesis_time,
                execution_time,
                rows,
                program: pretty::program(&program),
                profile,
                exec_stats,
            });
        }
        let execution_wall = exec_start.elapsed();
        drop(_exec_span);

        let violations = database.check_constraints().len();
        Ok(MigrationReport {
            database,
            tables: reports,
            violations,
            synthesis_wall,
            execution_wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};
    use mitra_dsl::ast::{
        ColumnExtractor, CompareOp, NodeExtractor, Operand, Predicate, TableExtractor,
    };
    use mitra_hdt::generate::social_network;

    /// Schema: person(pk, name, pid) and friendship(person_fk, friend_pid, years).
    fn schema() -> Schema {
        Schema::new()
            .with_table(
                TableSchema::new(
                    "person",
                    vec![
                        Column::text("pk"),
                        Column::integer("pid"),
                        Column::text("name"),
                    ],
                )
                .with_primary_key(&["pk"]),
            )
            .with_table(
                TableSchema::new(
                    "friendship",
                    vec![
                        Column::text("person_fk"),
                        Column::integer("friend_pid"),
                        Column::integer("years"),
                    ],
                )
                .with_foreign_key(&["person_fk"], "person", &["pk"]),
            )
    }

    fn person_program() -> Program {
        use ColumnExtractor as CE;
        let id = CE::pchildren(CE::children(CE::Input, "Person"), "id", 0);
        let name = CE::pchildren(CE::children(CE::Input, "Person"), "name", 0);
        let pred = Predicate::Compare {
            extractor: NodeExtractor::parent(NodeExtractor::Id),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::parent(NodeExtractor::Id),
                index: 1,
            },
        };
        Program::new(TableExtractor::new(vec![id, name]), pred)
    }

    fn friendship_program() -> Program {
        use ColumnExtractor as CE;
        let friend = CE::children(
            CE::pchildren(CE::children(CE::Input, "Person"), "Friendship", 0),
            "Friend",
        );
        let fid = CE::pchildren(friend.clone(), "fid", 0);
        let years = CE::pchildren(friend, "years", 0);
        let pred = Predicate::Compare {
            extractor: NodeExtractor::parent(NodeExtractor::Id),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::parent(NodeExtractor::Id),
                index: 1,
            },
        };
        Program::new(TableExtractor::new(vec![fid, years]), pred)
    }

    fn plan() -> MigrationPlan {
        MigrationPlan::new(schema())
            .with_task(TableTask {
                table: "person".to_string(),
                source: TableSource::Program(person_program()),
                // pk is synthesized from the row's nodes.
                keys: vec![("pk".to_string(), KeySpec::SyntheticPrimary)],
                data_columns: vec!["pid".to_string(), "name".to_string()],
            })
            .with_task(TableTask {
                table: "friendship".to_string(),
                source: TableSource::Program(friendship_program()),
                // The foreign key recovers the Person row's (id, name) nodes from the
                // fid node: Person = parent(parent(parent(fid))).
                keys: vec![(
                    "person_fk".to_string(),
                    KeySpec::Foreign {
                        derivations: vec![
                            (
                                0,
                                NodeExtractor::child(
                                    NodeExtractor::parent(NodeExtractor::parent(
                                        NodeExtractor::parent(NodeExtractor::Id),
                                    )),
                                    "id",
                                    0,
                                ),
                            ),
                            (
                                0,
                                NodeExtractor::child(
                                    NodeExtractor::parent(NodeExtractor::parent(
                                        NodeExtractor::parent(NodeExtractor::Id),
                                    )),
                                    "name",
                                    0,
                                ),
                            ),
                        ],
                    },
                )],
                data_columns: vec!["friend_pid".to_string(), "years".to_string()],
            })
    }

    #[test]
    fn plan_validation_catches_unknown_names() {
        let mut bad = plan();
        bad.tasks[0].table = "nope".to_string();
        assert!(matches!(
            bad.run(&social_network(2, 1)),
            Err(MigrationError::UnknownTable(_))
        ));

        let mut bad2 = plan();
        bad2.tasks[0].data_columns[0] = "ghost".to_string();
        assert!(matches!(
            bad2.run(&social_network(2, 1)),
            Err(MigrationError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn migration_populates_both_tables() {
        let doc = social_network(4, 2);
        let report = plan().run(&doc).unwrap();
        assert_eq!(report.database.row_count("person"), 4);
        assert_eq!(report.database.row_count("friendship"), 8);
        assert_eq!(report.total_rows(), 12);
        assert_eq!(report.tables.len(), 2);
    }

    #[test]
    fn execution_profile_reports_every_table() {
        let doc = social_network(4, 2);
        let report = plan().run(&doc).unwrap();
        let profile = report.execution_profile();
        assert_eq!(profile.tables.len(), 2);
        assert_eq!(profile.tables[0].table, "person");
        assert_eq!(profile.tables[1].table, "friendship");
        for t in &profile.tables {
            assert!(t.chunks >= 1, "chunk count missing for {}", t.table);
            assert!(t.tuples_considered >= t.rows_emitted);
        }
        assert_eq!(profile.tables[0].rows_emitted, 4);
        assert_eq!(profile.tables[1].rows_emitted, 8);
        assert!(profile.wall >= profile.tables.iter().map(|t| t.wall).sum());
    }

    #[test]
    fn generated_keys_satisfy_constraints() {
        let doc = social_network(5, 2);
        let report = plan().run(&doc).unwrap();
        assert_eq!(report.violations, 0, "constraint violations found");
    }

    #[test]
    fn foreign_keys_join_back_to_the_right_person() {
        let doc = social_network(3, 1);
        let report = plan().run(&doc).unwrap();
        let db = &report.database;
        // Every friendship row's person_fk must resolve to a person row, and the
        // referenced person must not be the friend itself (fid differs from pid).
        let friendship = db.table("friendship").unwrap();
        for row in &friendship.rows {
            let fk = &row[0];
            let person = db
                .select_where("person", "pk", fk)
                .pop()
                .expect("fk must resolve");
            let friend_pid = &row[1];
            assert_ne!(
                &person[1], friend_pid,
                "a person cannot befriend themselves"
            );
        }
    }

    #[test]
    fn synthesis_based_task_works_end_to_end() {
        // Synthesize the person-name table from an example instead of a hand-written program.
        let example_doc = social_network(3, 1);
        let output = Table::from_rows(&["name"], &[&["Alice"], &["Bob"], &["Carol"]]);
        let schema = Schema::new().with_table(
            TableSchema::new("names", vec![Column::text("pk"), Column::text("name")])
                .with_primary_key(&["pk"]),
        );
        let plan = MigrationPlan::new(schema).with_task(TableTask {
            table: "names".to_string(),
            source: TableSource::Examples(vec![Example::new(example_doc, output)]),
            keys: vec![("pk".to_string(), KeySpec::SyntheticPrimary)],
            data_columns: vec!["name".to_string()],
        });
        let big = social_network(10, 1);
        let report = plan.run(&big).unwrap();
        assert_eq!(report.database.row_count("names"), 10);
        assert!(report.total_synthesis_time() > Duration::ZERO);
        assert_eq!(report.violations, 0);
    }

    #[test]
    fn thread_count_does_not_change_migration_results() {
        let example_doc = social_network(3, 1);
        let output = Table::from_rows(&["name"], &[&["Alice"], &["Bob"], &["Carol"]]);
        let schema = Schema::new().with_table(
            TableSchema::new("names", vec![Column::text("pk"), Column::text("name")])
                .with_primary_key(&["pk"]),
        );
        let base_plan = MigrationPlan::new(schema).with_task(TableTask {
            table: "names".to_string(),
            source: TableSource::Examples(vec![Example::new(example_doc, output)]),
            keys: vec![("pk".to_string(), KeySpec::SyntheticPrimary)],
            data_columns: vec!["name".to_string()],
        });
        let big = social_network(8, 2);
        let run_at = |threads: usize| {
            let mut plan = base_plan.clone();
            plan.synth_config.threads = threads;
            plan.run(&big).unwrap()
        };
        let sequential = run_at(1);
        let parallel = run_at(4);
        assert_eq!(sequential.programs(), parallel.programs());
        assert_eq!(
            sequential.database.table("names").unwrap().rows,
            parallel.database.table("names").unwrap().rows
        );
        assert!(sequential.synthesis_wall > Duration::ZERO);
        assert!(!sequential.tables[0].program.is_empty());
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let mut p = plan();
        p.tasks[0].data_columns.pop();
        assert!(matches!(
            p.run(&social_network(2, 1)),
            Err(MigrationError::ArityMismatch(_))
        ));
    }
}
