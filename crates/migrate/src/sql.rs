//! SQL dump back-end: emits `CREATE TABLE` DDL and `INSERT` statements for a populated
//! database, so migration results can be loaded into an actual RDBMS.

use crate::database::Database;
use crate::schema::{Schema, TableSchema};
use mitra_dsl::Value;

/// Emits `CREATE TABLE` statements for the whole schema.
pub fn dump_ddl(schema: &Schema) -> String {
    let mut out = String::new();
    for table in &schema.tables {
        out.push_str(&create_table(table));
        out.push('\n');
    }
    out
}

/// Emits the `CREATE TABLE` statement for one table.
pub fn create_table(table: &TableSchema) -> String {
    let mut out = format!("CREATE TABLE {} (\n", quote_ident(&table.name));
    let mut lines: Vec<String> = table
        .columns
        .iter()
        .map(|c| format!("  {} {}", quote_ident(&c.name), c.ty.sql_name()))
        .collect();
    if !table.primary_key.is_empty() {
        lines.push(format!(
            "  PRIMARY KEY ({})",
            table
                .primary_key
                .iter()
                .map(|c| quote_ident(c))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    for fk in &table.foreign_keys {
        lines.push(format!(
            "  FOREIGN KEY ({}) REFERENCES {} ({})",
            fk.columns
                .iter()
                .map(|c| quote_ident(c))
                .collect::<Vec<_>>()
                .join(", "),
            quote_ident(&fk.referenced_table),
            fk.referenced_columns
                .iter()
                .map(|c| quote_ident(c))
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    out.push_str(&lines.join(",\n"));
    out.push_str("\n);\n");
    out
}

/// Emits a full dump: DDL followed by `INSERT` statements for every row.
pub fn dump_sql(db: &Database) -> String {
    let mut out = dump_ddl(&db.schema);
    out.push('\n');
    for table in &db.schema.tables {
        if let Some(data) = db.table(&table.name) {
            for row in &data.rows {
                out.push_str(&insert_statement(&table.name, &table.column_names(), row));
                out.push('\n');
            }
        }
    }
    out
}

/// Emits one `INSERT` statement.
pub fn insert_statement(table: &str, columns: &[String], row: &[Value]) -> String {
    let cols = columns
        .iter()
        .map(|c| quote_ident(c))
        .collect::<Vec<_>>()
        .join(", ");
    let vals = row.iter().map(sql_literal).collect::<Vec<_>>().join(", ");
    format!(
        "INSERT INTO {} ({cols}) VALUES ({vals});",
        quote_ident(table)
    )
}

/// Renders a value as a SQL literal.
pub fn sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
    }
}

/// Quotes an identifier with double quotes (escaping embedded quotes).
pub fn quote_ident(name: &str) -> String {
    format!("\"{}\"", name.replace('"', "\"\""))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, TableSchema};

    fn schema() -> Schema {
        Schema::new()
            .with_table(
                TableSchema::new("person", vec![Column::integer("pid"), Column::text("name")])
                    .with_primary_key(&["pid"]),
            )
            .with_table(
                TableSchema::new(
                    "friend",
                    vec![Column::integer("pid"), Column::integer("fid")],
                )
                .with_foreign_key(&["pid"], "person", &["pid"]),
            )
    }

    #[test]
    fn ddl_contains_keys_and_types() {
        let ddl = dump_ddl(&schema());
        assert!(ddl.contains("CREATE TABLE \"person\""));
        assert!(ddl.contains("\"pid\" INTEGER"));
        assert!(ddl.contains("PRIMARY KEY (\"pid\")"));
        assert!(ddl.contains("FOREIGN KEY (\"pid\") REFERENCES \"person\" (\"pid\")"));
    }

    #[test]
    fn insert_statements_escape_strings() {
        let stmt = insert_statement(
            "person",
            &["pid".to_string(), "name".to_string()],
            &[Value::int(1), Value::str("O'Brien")],
        );
        assert_eq!(
            stmt,
            "INSERT INTO \"person\" (\"pid\", \"name\") VALUES (1, 'O''Brien');"
        );
    }

    #[test]
    fn literals_for_all_value_kinds() {
        assert_eq!(sql_literal(&Value::Null), "NULL");
        assert_eq!(sql_literal(&Value::Bool(true)), "TRUE");
        assert_eq!(sql_literal(&Value::Float(2.5)), "2.5");
    }

    #[test]
    fn full_dump_contains_rows() {
        let mut db = Database::new(schema());
        db.insert("person", vec![Value::int(1), Value::str("Alice")]);
        db.insert("friend", vec![Value::int(1), Value::int(1)]);
        let dump = dump_sql(&db);
        assert!(dump.contains("INSERT INTO \"person\""));
        assert!(dump.contains("'Alice'"));
        assert!(dump.contains("INSERT INTO \"friend\""));
    }

    #[test]
    fn identifiers_with_quotes_are_escaped() {
        assert_eq!(quote_ident("we\"ird"), "\"we\"\"ird\"");
    }
}
