//! A small SQL query engine over the in-memory [`crate::Database`].
//!
//! The paper's motivation for migrating hierarchical documents into relations is that
//! the result "may need to be queried by an existing application that interacts with a
//! relational database" and that relational layouts give better query performance
//! (Section 1).  This module closes that loop for the reproduction: once a document
//! has been migrated, the resulting database can actually be queried.
//!
//! Supported surface:
//!
//! * `SELECT` of columns, `*`, or aggregates (`COUNT`, `SUM`, `AVG`, `MIN`, `MAX`);
//! * `FROM table [alias]` with any number of `JOIN table [alias] ON <expr>` clauses
//!   (inner joins only);
//! * `WHERE` with comparisons (`= != < <= > >=`), `AND` / `OR` / `NOT`, `IS [NOT] NULL`
//!   and parentheses;
//! * `GROUP BY`, `ORDER BY ... [ASC|DESC]`, and `LIMIT`.
//!
//! Equality joins are executed with a hash join; everything else falls back to a
//! filtered nested-loop join.  The engine is deliberately small — it is a substrate for
//! examples, tests and benchmarks, not a competitive query processor.
//!
//! ```
//! use mitra_migrate::{Column, Database, Schema, TableSchema};
//! use mitra_migrate::query::run_query;
//! use mitra_dsl::{Table, Value};
//!
//! let schema = Schema::new().with_table(
//!     TableSchema::new("person", vec![Column::text("name"), Column::integer("age")]),
//! );
//! let mut db = Database::new(schema);
//! db.insert("person", vec![Value::str("Ada"), Value::int(36)]);
//! db.insert("person", vec![Value::str("Grace"), Value::int(85)]);
//!
//! let result = run_query(&db, "SELECT name FROM person WHERE age > 50").unwrap();
//! assert_eq!(result.rows, vec![vec![Value::str("Grace")]]);
//! ```

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{Aggregate, ComparisonOp, Expr, Join, OrderKey, Query, SelectItem, TableRef};
pub use exec::execute_query;
pub use parser::parse_query;

use crate::Database;
use mitra_dsl::Table;
use std::fmt;

/// Errors raised while parsing or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query text could not be parsed; the string describes the problem.
    Parse(String),
    /// The query references a table that is not in the database.
    UnknownTable(String),
    /// The query references a column that no visible table provides.
    UnknownColumn(String),
    /// A column reference matches more than one visible table.
    AmbiguousColumn(String),
    /// Aggregates and plain columns were mixed without a GROUP BY.
    InvalidAggregation(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Parse(msg) => write!(f, "syntax error: {msg}"),
            QueryError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            QueryError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            QueryError::AmbiguousColumn(c) => write!(f, "ambiguous column `{c}`"),
            QueryError::InvalidAggregation(msg) => write!(f, "invalid aggregation: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

/// Parses and executes `sql` against `db`, returning the result table.
pub fn run_query(db: &Database, sql: &str) -> Result<Table, QueryError> {
    let query = parse_query(sql)?;
    execute_query(db, &query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Column, Schema, TableSchema};
    use mitra_dsl::Value;

    /// A two-table database (authors, papers with an author foreign key) used by the
    /// end-to-end query tests.
    fn sample_db() -> Database {
        let schema = Schema::new()
            .with_table(
                TableSchema::new(
                    "author",
                    vec![
                        Column::integer("aid"),
                        Column::text("name"),
                        Column::text("country"),
                    ],
                )
                .with_primary_key(&["aid"]),
            )
            .with_table(
                TableSchema::new(
                    "paper",
                    vec![
                        Column::integer("pid"),
                        Column::text("title"),
                        Column::integer("year"),
                        Column::integer("aid"),
                    ],
                )
                .with_primary_key(&["pid"])
                .with_foreign_key(&["aid"], "author", &["aid"]),
            );
        let mut db = Database::new(schema);
        for (aid, name, country) in [(1, "Ada", "UK"), (2, "Grace", "US"), (3, "Edsger", "NL")] {
            db.insert(
                "author",
                vec![Value::int(aid), Value::str(name), Value::str(country)],
            );
        }
        for (pid, title, year, aid) in [
            (10, "Notes", 1843, 1),
            (11, "Compilers", 1952, 2),
            (12, "GOTO", 1968, 3),
            (13, "THE", 1968, 3),
        ] {
            db.insert(
                "paper",
                vec![
                    Value::int(pid),
                    Value::str(title),
                    Value::int(year),
                    Value::int(aid),
                ],
            );
        }
        db
    }

    #[test]
    fn select_star_and_projection() {
        let db = sample_db();
        let all = run_query(&db, "SELECT * FROM author").unwrap();
        assert_eq!(all.len(), 3);
        assert_eq!(all.columns, vec!["aid", "name", "country"]);
        let names = run_query(&db, "SELECT name FROM author").unwrap();
        assert_eq!(names.arity(), 1);
    }

    #[test]
    fn where_filters_rows() {
        let db = sample_db();
        let result = run_query(&db, "SELECT title FROM paper WHERE year = 1968").unwrap();
        assert_eq!(result.len(), 2);
        let result = run_query(
            &db,
            "SELECT title FROM paper WHERE year > 1900 AND aid != 3",
        )
        .unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.rows[0][0], Value::str("Compilers"));
    }

    #[test]
    fn join_on_foreign_key() {
        let db = sample_db();
        let result = run_query(
            &db,
            "SELECT author.name, paper.title FROM paper JOIN author ON paper.aid = author.aid \
             WHERE author.country = 'NL' ORDER BY paper.title",
        )
        .unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result.rows[0][1], Value::str("GOTO"));
        assert_eq!(result.rows[1][1], Value::str("THE"));
    }

    #[test]
    fn aggregates_and_group_by() {
        let db = sample_db();
        let count = run_query(&db, "SELECT COUNT(*) FROM paper").unwrap();
        assert_eq!(count.rows[0][0], Value::int(4));
        let by_year = run_query(
            &db,
            "SELECT year, COUNT(*) FROM paper GROUP BY year ORDER BY year",
        )
        .unwrap();
        assert_eq!(by_year.len(), 3);
        assert_eq!(by_year.rows[2], vec![Value::int(1968), Value::int(2)]);
        let span = run_query(&db, "SELECT MIN(year), MAX(year) FROM paper").unwrap();
        assert_eq!(span.rows[0], vec![Value::int(1843), Value::int(1968)]);
    }

    #[test]
    fn order_by_desc_and_limit() {
        let db = sample_db();
        let result = run_query(
            &db,
            "SELECT title FROM paper ORDER BY year DESC, title LIMIT 2",
        )
        .unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result.rows[0][0], Value::str("GOTO"));
    }

    #[test]
    fn errors_are_descriptive() {
        let db = sample_db();
        assert!(matches!(
            run_query(&db, "SELECT * FROM nosuch"),
            Err(QueryError::UnknownTable(_))
        ));
        assert!(matches!(
            run_query(&db, "SELECT nosuch FROM author"),
            Err(QueryError::UnknownColumn(_))
        ));
        assert!(matches!(
            run_query(&db, "SELECT FROM author"),
            Err(QueryError::Parse(_))
        ));
        assert!(matches!(
            run_query(
                &db,
                "SELECT paper.aid FROM paper JOIN author ON paper.aid = author.aid WHERE aid = 1"
            ),
            Err(QueryError::AmbiguousColumn(_))
        ));
    }
}
