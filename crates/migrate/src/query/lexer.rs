//! Tokenizer for the SQL subset.

use super::QueryError;

/// A SQL token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// A keyword or identifier (keywords are recognized case-insensitively by the
    /// parser; the original spelling is preserved here).
    Word(String),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    StringLiteral(String),
    /// A numeric literal.
    Number(String),
    /// A punctuation or operator symbol: `, . ( ) * = != <> < <= > >=`.
    Symbol(&'static str),
}

impl Token {
    /// Returns the word if this token is a word.
    pub fn as_word(&self) -> Option<&str> {
        match self {
            Token::Word(w) => Some(w),
            _ => None,
        }
    }

    /// True when this token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        self.as_word().is_some_and(|w| w.eq_ignore_ascii_case(kw))
    }

    /// True when this token is the given symbol.
    pub fn is_symbol(&self, s: &str) -> bool {
        matches!(self, Token::Symbol(sym) if *sym == s)
    }
}

/// Splits `input` into tokens.
pub fn tokenize(input: &str) -> Result<Vec<Token>, QueryError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            _ if b.is_ascii_whitespace() => i += 1,
            b',' => {
                tokens.push(Token::Symbol(","));
                i += 1;
            }
            b'.' => {
                tokens.push(Token::Symbol("."));
                i += 1;
            }
            b'(' => {
                tokens.push(Token::Symbol("("));
                i += 1;
            }
            b')' => {
                tokens.push(Token::Symbol(")"));
                i += 1;
            }
            b'*' => {
                tokens.push(Token::Symbol("*"));
                i += 1;
            }
            b'=' => {
                tokens.push(Token::Symbol("="));
                i += 1;
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol("!="));
                    i += 2;
                } else {
                    return Err(QueryError::Parse("expected `=` after `!`".into()));
                }
            }
            b'<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    tokens.push(Token::Symbol("<="));
                    i += 2;
                }
                Some(b'>') => {
                    tokens.push(Token::Symbol("!="));
                    i += 2;
                }
                _ => {
                    tokens.push(Token::Symbol("<"));
                    i += 1;
                }
            },
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(">="));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(">"));
                    i += 1;
                }
            }
            b'\'' => {
                let (literal, consumed) = lex_string(&input[i..])?;
                tokens.push(Token::StringLiteral(literal));
                i += consumed;
            }
            b'"' | b'`' => {
                // Quoted identifier: treat the contents as a word.
                let quote = b as char;
                let rest = &input[i + 1..];
                let Some(end) = rest.find(quote) else {
                    return Err(QueryError::Parse("unterminated quoted identifier".into()));
                };
                tokens.push(Token::Word(rest[..end].to_string()));
                i += end + 2;
            }
            _ if b.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                tokens.push(Token::Number(input[start..i].to_string()));
            }
            _ if b.is_ascii_alphabetic() || b == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token::Word(input[start..i].to_string()));
            }
            other => {
                return Err(QueryError::Parse(format!(
                    "unexpected character `{}`",
                    other as char
                )));
            }
        }
    }
    Ok(tokens)
}

/// Lexes a single-quoted string starting at the beginning of `input`; returns the
/// unescaped contents and the number of bytes consumed (including both quotes).
fn lex_string(input: &str) -> Result<(String, usize), QueryError> {
    debug_assert!(input.starts_with('\''));
    let mut out = String::new();
    let bytes = input.as_bytes();
    let mut i = 1;
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            let ch_len = input[i..].chars().next().map_or(1, char::len_utf8);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(QueryError::Parse("unterminated string literal".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_simple_query() {
        let tokens = tokenize("SELECT a, b FROM t WHERE a >= 3").unwrap();
        assert_eq!(tokens.len(), 10);
        assert!(tokens[0].is_keyword("select"));
        assert!(tokens[2].is_symbol(","));
        assert!(tokens[8].is_symbol(">="));
        assert_eq!(tokens[9], Token::Number("3".into()));
    }

    #[test]
    fn string_literals_support_escaped_quotes() {
        let tokens = tokenize("name = 'O''Brien'").unwrap();
        assert_eq!(tokens[2], Token::StringLiteral("O'Brien".into()));
    }

    #[test]
    fn not_equals_spellings() {
        let a = tokenize("a != b").unwrap();
        let b = tokenize("a <> b").unwrap();
        assert_eq!(a[1], Token::Symbol("!="));
        assert_eq!(b[1], Token::Symbol("!="));
    }

    #[test]
    fn quoted_identifiers_become_words() {
        let tokens = tokenize("SELECT \"year\" FROM `paper`").unwrap();
        assert_eq!(tokens[1], Token::Word("year".into()));
        assert_eq!(tokens[3], Token::Word("paper".into()));
    }

    #[test]
    fn bad_input_is_reported() {
        assert!(matches!(tokenize("a ! b"), Err(QueryError::Parse(_))));
        assert!(matches!(tokenize("a = 'open"), Err(QueryError::Parse(_))));
        assert!(matches!(tokenize("a ; b"), Err(QueryError::Parse(_))));
    }
}
