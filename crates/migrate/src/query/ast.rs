//! Abstract syntax of the supported SQL subset.

use mitra_dsl::Value;
use std::cmp::Ordering;
use std::fmt;

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The projection list.
    pub select: Vec<SelectItem>,
    /// The driving table.
    pub from: TableRef,
    /// Inner joins applied left to right.
    pub joins: Vec<Join>,
    /// Optional filter applied after the joins.
    pub where_clause: Option<Expr>,
    /// Grouping columns (empty means no `GROUP BY`).
    pub group_by: Vec<ColumnRef>,
    /// Ordering keys applied to the final rows.
    pub order_by: Vec<OrderKey>,
    /// Optional row-count cap.
    pub limit: Option<usize>,
}

/// One entry of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*` — every column of every joined table, in join order.
    Wildcard,
    /// A plain column reference.
    Column(ColumnRef),
    /// An aggregate over a column (or `COUNT(*)`).
    Aggregate {
        /// The aggregate function.
        function: Aggregate,
        /// The aggregated column; `None` only for `COUNT(*)`.
        column: Option<ColumnRef>,
    },
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Aggregate {
    /// Row count (ignores NULLs when applied to a column).
    Count,
    /// Numeric sum.
    Sum,
    /// Numeric average.
    Avg,
    /// Minimum under [`Value::compare`].
    Min,
    /// Maximum under [`Value::compare`].
    Max,
}

impl Aggregate {
    /// SQL spelling of the function, used when naming output columns.
    pub fn sql_name(self) -> &'static str {
        match self {
            Aggregate::Count => "COUNT",
            Aggregate::Sum => "SUM",
            Aggregate::Avg => "AVG",
            Aggregate::Min => "MIN",
            Aggregate::Max => "MAX",
        }
    }
}

/// A possibly table-qualified column name.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Table name or alias, when written as `table.column`.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// An unqualified column reference.
    pub fn unqualified(column: impl Into<String>) -> Self {
        ColumnRef {
            table: None,
            column: column.into(),
        }
    }

    /// A `table.column` reference.
    pub fn qualified(table: impl Into<String>, column: impl Into<String>) -> Self {
        ColumnRef {
            table: Some(table.into()),
            column: column.into(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.column),
            None => write!(f, "{}", self.column),
        }
    }
}

/// A table in the `FROM` clause, with an optional alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Name of the table in the database schema.
    pub name: String,
    /// Alias used to qualify columns; defaults to the table name.
    pub alias: String,
}

impl TableRef {
    /// A table reference without an explicit alias.
    pub fn named(name: impl Into<String>) -> Self {
        let name = name.into();
        TableRef {
            alias: name.clone(),
            name,
        }
    }

    /// A table reference with an alias.
    pub fn aliased(name: impl Into<String>, alias: impl Into<String>) -> Self {
        TableRef {
            name: name.into(),
            alias: alias.into(),
        }
    }
}

/// One `JOIN table ON condition` clause (inner join).
#[derive(Debug, Clone, PartialEq)]
pub struct Join {
    /// The joined table.
    pub table: TableRef,
    /// The join condition.
    pub on: Expr,
}

/// An `ORDER BY` key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderKey {
    /// The ordering column.
    pub column: ColumnRef,
    /// True for descending order.
    pub descending: bool,
}

/// Comparison operators usable in `WHERE` and `ON` clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComparisonOp {
    /// `=`
    Eq,
    /// `!=` or `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl ComparisonOp {
    /// Evaluates the operator against a comparison result; `None` (incomparable, e.g.
    /// anything against NULL) makes every operator false, matching SQL's three-valued
    /// logic collapsed to false.
    pub fn test(self, ordering: Option<Ordering>) -> bool {
        let Some(ord) = ordering else { return false };
        match self {
            ComparisonOp::Eq => ord == Ordering::Equal,
            ComparisonOp::Ne => ord != Ordering::Equal,
            ComparisonOp::Lt => ord == Ordering::Less,
            ComparisonOp::Le => ord != Ordering::Greater,
            ComparisonOp::Gt => ord == Ordering::Greater,
            ComparisonOp::Ge => ord != Ordering::Less,
        }
    }
}

/// Boolean / scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A column reference.
    Column(ColumnRef),
    /// A literal value.
    Literal(Value),
    /// A binary comparison.
    Comparison {
        /// Left operand.
        lhs: Box<Expr>,
        /// Operator.
        op: ComparisonOp,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Logical disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `expr IS NULL` (or `IS NOT NULL` when `negated`).
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

impl Expr {
    /// Convenience constructor for `lhs op rhs`.
    pub fn comparison(lhs: Expr, op: ComparisonOp, rhs: Expr) -> Expr {
        Expr::Comparison {
            lhs: Box::new(lhs),
            op,
            rhs: Box::new(rhs),
        }
    }

    /// Collects every column referenced anywhere in the expression.
    pub fn referenced_columns(&self) -> Vec<&ColumnRef> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a ColumnRef>) {
        match self {
            Expr::Column(c) => out.push(c),
            Expr::Literal(_) => {}
            Expr::Comparison { lhs, rhs, .. } => {
                lhs.collect_columns(out);
                rhs.collect_columns(out);
            }
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::Not(e) => e.collect_columns(out),
            Expr::IsNull { expr, .. } => expr.collect_columns(out),
        }
    }

    /// Splits a conjunction into its conjuncts (`a AND b AND c` → `[a, b, c]`).
    pub fn conjuncts(&self) -> Vec<&Expr> {
        match self {
            Expr::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            other => vec![other],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_op_truth_table() {
        assert!(ComparisonOp::Eq.test(Some(Ordering::Equal)));
        assert!(!ComparisonOp::Eq.test(Some(Ordering::Less)));
        assert!(ComparisonOp::Le.test(Some(Ordering::Equal)));
        assert!(ComparisonOp::Ne.test(Some(Ordering::Greater)));
        // NULL-ish comparisons are false for every operator.
        for op in [
            ComparisonOp::Eq,
            ComparisonOp::Ne,
            ComparisonOp::Lt,
            ComparisonOp::Le,
            ComparisonOp::Gt,
            ComparisonOp::Ge,
        ] {
            assert!(!op.test(None));
        }
    }

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let a = Expr::Literal(Value::Bool(true));
        let b = Expr::Literal(Value::Bool(false));
        let c = Expr::Literal(Value::Null);
        let e = Expr::And(
            Box::new(Expr::And(Box::new(a.clone()), Box::new(b.clone()))),
            Box::new(c.clone()),
        );
        assert_eq!(e.conjuncts(), vec![&a, &b, &c]);
        assert_eq!(a.conjuncts().len(), 1);
    }

    #[test]
    fn referenced_columns_walks_the_whole_tree() {
        let e = Expr::Or(
            Box::new(Expr::comparison(
                Expr::Column(ColumnRef::qualified("t", "a")),
                ComparisonOp::Lt,
                Expr::Literal(Value::int(3)),
            )),
            Box::new(Expr::IsNull {
                expr: Box::new(Expr::Column(ColumnRef::unqualified("b"))),
                negated: true,
            }),
        );
        let cols = e.referenced_columns();
        assert_eq!(cols.len(), 2);
        assert_eq!(cols[0].to_string(), "t.a");
        assert_eq!(cols[1].to_string(), "b");
    }

    #[test]
    fn column_ref_display() {
        assert_eq!(ColumnRef::unqualified("x").to_string(), "x");
        assert_eq!(ColumnRef::qualified("t", "x").to_string(), "t.x");
    }
}
