//! Recursive-descent parser for the SQL subset.

use super::ast::{
    Aggregate, ColumnRef, ComparisonOp, Expr, Join, OrderKey, Query, SelectItem, TableRef,
};
use super::lexer::{tokenize, Token};
use super::QueryError;
use mitra_dsl::Value;

/// Parses a `SELECT` statement.
pub fn parse_query(sql: &str) -> Result<Query, QueryError> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let query = parser.parse_select()?;
    if !parser.at_end() {
        return Err(QueryError::Parse(format!(
            "unexpected trailing input near `{}`",
            parser.describe_current()
        )));
    }
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn advance(&mut self) -> Option<&Token> {
        let tok = self.tokens.get(self.pos);
        if tok.is_some() {
            self.pos += 1;
        }
        tok
    }

    fn describe_current(&self) -> String {
        match self.peek() {
            Some(Token::Word(w)) => w.clone(),
            Some(Token::StringLiteral(s)) => format!("'{s}'"),
            Some(Token::Number(n)) => n.clone(),
            Some(Token::Symbol(s)) => (*s).to_string(),
            None => "end of input".to_string(),
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_keyword(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(QueryError::Parse(format!(
                "expected `{kw}`, found `{}`",
                self.describe_current()
            )))
        }
    }

    fn eat_symbol(&mut self, s: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_symbol(s)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, s: &str) -> Result<(), QueryError> {
        if self.eat_symbol(s) {
            Ok(())
        } else {
            Err(QueryError::Parse(format!(
                "expected `{s}`, found `{}`",
                self.describe_current()
            )))
        }
    }

    fn expect_word(&mut self, what: &str) -> Result<String, QueryError> {
        match self.advance() {
            Some(Token::Word(w)) if !is_reserved(w) => Ok(w.clone()),
            _ => {
                // `advance` already moved past the offending token; step back for the
                // error message.
                self.pos = self.pos.saturating_sub(1);
                Err(QueryError::Parse(format!(
                    "expected {what}, found `{}`",
                    self.describe_current()
                )))
            }
        }
    }

    fn parse_select(&mut self) -> Result<Query, QueryError> {
        self.expect_keyword("SELECT")?;
        let select = self.parse_select_list()?;
        self.expect_keyword("FROM")?;
        let from = self.parse_table_ref()?;

        let mut joins = Vec::new();
        loop {
            let inner = self.eat_keyword("INNER");
            if self.eat_keyword("JOIN") {
                let table = self.parse_table_ref()?;
                self.expect_keyword("ON")?;
                let on = self.parse_expr()?;
                joins.push(Join { table, on });
            } else if inner {
                return Err(QueryError::Parse("expected `JOIN` after `INNER`".into()));
            } else {
                break;
            }
        }

        let where_clause = if self.eat_keyword("WHERE") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.parse_column_ref()?);
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let column = self.parse_column_ref()?;
                let descending = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderKey { column, descending });
                if !self.eat_symbol(",") {
                    break;
                }
            }
        }

        let limit = if self.eat_keyword("LIMIT") {
            match self.advance() {
                Some(Token::Number(n)) => Some(
                    n.parse::<usize>()
                        .map_err(|_| QueryError::Parse(format!("invalid LIMIT value `{n}`")))?,
                ),
                _ => return Err(QueryError::Parse("expected a number after LIMIT".into())),
            }
        } else {
            None
        };

        Ok(Query {
            select,
            from,
            joins,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn parse_select_list(&mut self) -> Result<Vec<SelectItem>, QueryError> {
        let mut items = Vec::new();
        loop {
            items.push(self.parse_select_item()?);
            if !self.eat_symbol(",") {
                break;
            }
        }
        Ok(items)
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, QueryError> {
        if self.eat_symbol("*") {
            return Ok(SelectItem::Wildcard);
        }
        // Aggregate?
        if let Some(function) = self.peek().and_then(aggregate_keyword) {
            if self
                .tokens
                .get(self.pos + 1)
                .is_some_and(|t| t.is_symbol("("))
            {
                self.pos += 2; // function name and '('
                let column = if self.eat_symbol("*") {
                    if function != Aggregate::Count {
                        return Err(QueryError::Parse(format!(
                            "`*` is only valid inside COUNT, not {}",
                            function.sql_name()
                        )));
                    }
                    None
                } else {
                    Some(self.parse_column_ref()?)
                };
                self.expect_symbol(")")?;
                return Ok(SelectItem::Aggregate { function, column });
            }
        }
        Ok(SelectItem::Column(self.parse_column_ref()?))
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, QueryError> {
        let name = self.expect_word("a table name")?;
        // Optional alias: `table alias` or `table AS alias`.
        if self.eat_keyword("AS") {
            let alias = self.expect_word("an alias")?;
            return Ok(TableRef::aliased(name, alias));
        }
        if let Some(Token::Word(w)) = self.peek() {
            if !is_reserved(w) {
                let alias = w.clone();
                self.pos += 1;
                return Ok(TableRef::aliased(name, alias));
            }
        }
        Ok(TableRef::named(name))
    }

    fn parse_column_ref(&mut self) -> Result<ColumnRef, QueryError> {
        let first = self.expect_word("a column name")?;
        if self.eat_symbol(".") {
            let column = self.expect_word("a column name")?;
            Ok(ColumnRef::qualified(first, column))
        } else {
            Ok(ColumnRef::unqualified(first))
        }
    }

    /// `expr := and_expr (OR and_expr)*`
    fn parse_expr(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.parse_and_expr()?;
        while self.eat_keyword("OR") {
            let rhs = self.parse_and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// `and_expr := unary_expr (AND unary_expr)*`
    fn parse_and_expr(&mut self) -> Result<Expr, QueryError> {
        let mut lhs = self.parse_unary_expr()?;
        while self.eat_keyword("AND") {
            let rhs = self.parse_unary_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    /// `unary_expr := NOT unary_expr | comparison`
    fn parse_unary_expr(&mut self) -> Result<Expr, QueryError> {
        if self.eat_keyword("NOT") {
            let inner = self.parse_unary_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_comparison()
    }

    /// `comparison := operand [(= | != | < | <= | > | >=) operand | IS [NOT] NULL]`
    fn parse_comparison(&mut self) -> Result<Expr, QueryError> {
        let lhs = self.parse_operand()?;
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(lhs),
                negated,
            });
        }
        let op = match self.peek() {
            Some(Token::Symbol("=")) => Some(ComparisonOp::Eq),
            Some(Token::Symbol("!=")) => Some(ComparisonOp::Ne),
            Some(Token::Symbol("<")) => Some(ComparisonOp::Lt),
            Some(Token::Symbol("<=")) => Some(ComparisonOp::Le),
            Some(Token::Symbol(">")) => Some(ComparisonOp::Gt),
            Some(Token::Symbol(">=")) => Some(ComparisonOp::Ge),
            _ => None,
        };
        match op {
            Some(op) => {
                self.pos += 1;
                let rhs = self.parse_operand()?;
                Ok(Expr::comparison(lhs, op, rhs))
            }
            None => Ok(lhs),
        }
    }

    /// `operand := '(' expr ')' | literal | column_ref`
    fn parse_operand(&mut self) -> Result<Expr, QueryError> {
        if self.eat_symbol("(") {
            let inner = self.parse_expr()?;
            self.expect_symbol(")")?;
            return Ok(inner);
        }
        match self.peek().cloned() {
            Some(Token::StringLiteral(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Str(s)))
            }
            Some(Token::Number(n)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::from_data(&n)))
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("NULL") => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Null))
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("TRUE") => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(true)))
            }
            Some(Token::Word(w)) if w.eq_ignore_ascii_case("FALSE") => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Bool(false)))
            }
            Some(Token::Word(_)) => Ok(Expr::Column(self.parse_column_ref()?)),
            _ => Err(QueryError::Parse(format!(
                "expected a value or column, found `{}`",
                self.describe_current()
            ))),
        }
    }
}

/// Keywords that cannot be used as bare identifiers (so that `FROM t WHERE ...` does
/// not read `WHERE` as an alias of `t`).
fn is_reserved(word: &str) -> bool {
    const RESERVED: [&str; 18] = [
        "SELECT", "FROM", "WHERE", "JOIN", "INNER", "ON", "AND", "OR", "NOT", "GROUP", "ORDER",
        "BY", "LIMIT", "AS", "IS", "NULL", "ASC", "DESC",
    ];
    RESERVED.iter().any(|kw| word.eq_ignore_ascii_case(kw))
}

fn aggregate_keyword(token: &Token) -> Option<Aggregate> {
    let word = token.as_word()?;
    match word.to_ascii_uppercase().as_str() {
        "COUNT" => Some(Aggregate::Count),
        "SUM" => Some(Aggregate::Sum),
        "AVG" => Some(Aggregate::Avg),
        "MIN" => Some(Aggregate::Min),
        "MAX" => Some(Aggregate::Max),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_projection_and_filter() {
        let q = parse_query("SELECT a, t.b FROM t WHERE a = 1 AND t.b != 'x'").unwrap();
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.from, TableRef::named("t"));
        let conjuncts = q.where_clause.as_ref().unwrap().conjuncts().len();
        assert_eq!(conjuncts, 2);
    }

    #[test]
    fn parses_joins_with_aliases() {
        let q = parse_query(
            "SELECT p.title FROM paper AS p JOIN author a ON p.aid = a.aid WHERE a.name = 'Ada'",
        )
        .unwrap();
        assert_eq!(q.from, TableRef::aliased("paper", "p"));
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].table, TableRef::aliased("author", "a"));
    }

    #[test]
    fn parses_group_order_limit() {
        let q = parse_query(
            "SELECT year, COUNT(*) FROM paper GROUP BY year ORDER BY year DESC LIMIT 5",
        )
        .unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].descending);
        assert_eq!(q.limit, Some(5));
        assert!(matches!(
            q.select[1],
            SelectItem::Aggregate {
                function: Aggregate::Count,
                column: None
            }
        ));
    }

    #[test]
    fn parses_parentheses_not_and_is_null() {
        let q =
            parse_query("SELECT a FROM t WHERE NOT (a < 3 OR a > 7) AND b IS NOT NULL").unwrap();
        let w = q.where_clause.unwrap();
        assert!(matches!(w, Expr::And(_, _)));
    }

    #[test]
    fn operator_precedence_and_binds_tighter_than_or() {
        let q = parse_query("SELECT a FROM t WHERE a = 1 OR a = 2 AND a = 3").unwrap();
        match q.where_clause.unwrap() {
            Expr::Or(lhs, rhs) => {
                assert!(matches!(*lhs, Expr::Comparison { .. }));
                assert!(matches!(*rhs, Expr::And(_, _)));
            }
            other => panic!("expected OR at the root, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_queries() {
        for sql in [
            "",
            "SELECT",
            "SELECT FROM t",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t JOIN u",
            "SELECT a FROM t LIMIT many",
            "SELECT SUM(*) FROM t",
            "SELECT a FROM t extra garbage here",
        ] {
            assert!(parse_query(sql).is_err(), "expected error for `{sql}`");
        }
    }

    #[test]
    fn count_star_and_count_column_both_parse() {
        let q = parse_query("SELECT COUNT(*), COUNT(a) FROM t").unwrap();
        assert_eq!(q.select.len(), 2);
        assert!(matches!(
            q.select[1],
            SelectItem::Aggregate {
                function: Aggregate::Count,
                column: Some(_)
            }
        ));
    }
}
