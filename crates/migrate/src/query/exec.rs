//! Execution of parsed queries against the in-memory database.
//!
//! The pipeline is: bind tables → join (hash join for equality conditions, filtered
//! nested loop otherwise) → filter → group/aggregate → order → limit → project.

use super::ast::{Aggregate, ColumnRef, ComparisonOp, Expr, Join, Query, SelectItem, TableRef};
use super::QueryError;
use crate::Database;
use mitra_dsl::{Row, Table, Value};
use mitra_synth::ops::ValueInterner;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Executes a parsed query against the database.
pub fn execute_query(db: &Database, query: &Query) -> Result<Table, QueryError> {
    // Bind the FROM table and all joined tables to their rows and column layout.
    let mut working = BoundRows::from_table(db, &query.from)?;
    for join in &query.joins {
        working = working.join(db, join)?;
    }

    // WHERE.
    if let Some(filter) = &query.where_clause {
        working
            .rows
            .retain(|row| evaluate_predicate(filter, &working.layout, row).unwrap_or(false));
        // Surface binding errors (unknown/ambiguous columns) even if the table is
        // empty: evaluate once against a row of NULLs.
        if working.rows.is_empty() {
            let probe: Row = vec![Value::Null; working.layout.width()];
            evaluate_predicate(filter, &working.layout, &probe)?;
        }
    }

    // GROUP BY / aggregation / projection.
    let mut result = project(query, &working)?;

    // ORDER BY over the projected result (by output column name) falling back to the
    // pre-projection layout when the key is not part of the projection.
    if !query.order_by.is_empty() {
        order_rows(query, &working, &mut result)?;
    }

    if let Some(limit) = query.limit {
        result.rows.truncate(limit);
    }
    Ok(result)
}

/// The column layout of an intermediate row: one entry per column, carrying the table
/// alias and the column name.
#[derive(Debug, Clone)]
struct Layout {
    columns: Vec<(String, String)>,
}

impl Layout {
    fn width(&self) -> usize {
        self.columns.len()
    }

    /// Resolves a column reference to an index in the row.
    fn resolve(&self, column: &ColumnRef) -> Result<usize, QueryError> {
        let matches: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, (alias, name))| {
                name == &column.column && column.table.as_ref().is_none_or(|t| t == alias)
            })
            .map(|(i, _)| i)
            .collect();
        match matches.as_slice() {
            [] => Err(QueryError::UnknownColumn(column.to_string())),
            [i] => Ok(*i),
            _ => Err(QueryError::AmbiguousColumn(column.to_string())),
        }
    }
}

/// A set of intermediate rows plus the layout describing their columns.
struct BoundRows {
    layout: Layout,
    rows: Vec<Row>,
}

impl BoundRows {
    /// Binds a base table.
    fn from_table(db: &Database, table_ref: &TableRef) -> Result<Self, QueryError> {
        let table = db
            .table(&table_ref.name)
            .ok_or_else(|| QueryError::UnknownTable(table_ref.name.clone()))?;
        let layout = Layout {
            columns: table
                .columns
                .iter()
                .map(|c| (table_ref.alias.clone(), c.clone()))
                .collect(),
        };
        Ok(BoundRows {
            layout,
            rows: table.rows.clone(),
        })
    }

    /// Inner-joins `self` with the join's table.
    fn join(self, db: &Database, join: &Join) -> Result<Self, QueryError> {
        let right = BoundRows::from_table(db, &join.table)?;
        let combined_layout = Layout {
            columns: self
                .layout
                .columns
                .iter()
                .chain(right.layout.columns.iter())
                .cloned()
                .collect(),
        };

        // Fast path: a single equality conjunct with one side in each input can be
        // executed as a hash join.
        if let Some((left_idx, right_idx, residual)) =
            equi_join_key(&join.on, &self.layout, &right.layout)
        {
            // Keys are interned value ids from the shared physical-operator layer
            // (`mitra_synth::ops::ValueInterner`): one u32 per distinct value
            // instead of a rendered `String` per row.
            let mut interner = ValueInterner::new();
            let mut index: HashMap<u32, Vec<&Row>> = HashMap::new();
            for row in &right.rows {
                index
                    .entry(interner.intern(&row[right_idx]))
                    .or_default()
                    .push(row);
            }
            let mut rows = Vec::new();
            for left_row in &self.rows {
                if left_row[left_idx].is_null() {
                    continue;
                }
                let Some(matches) = index.get(&interner.intern(&left_row[left_idx])) else {
                    continue;
                };
                for right_row in matches {
                    let mut combined = left_row.clone();
                    combined.extend_from_slice(right_row);
                    let keep = match &residual {
                        Some(expr) => {
                            evaluate_predicate(expr, &combined_layout, &combined).unwrap_or(false)
                        }
                        None => true,
                    };
                    if keep {
                        rows.push(combined);
                    }
                }
            }
            return Ok(BoundRows {
                layout: combined_layout,
                rows,
            });
        }

        // General case: filtered nested-loop join.
        let mut rows = Vec::new();
        for left_row in &self.rows {
            for right_row in &right.rows {
                let mut combined = left_row.clone();
                combined.extend_from_slice(right_row);
                if evaluate_predicate(&join.on, &combined_layout, &combined).unwrap_or(false) {
                    rows.push(combined);
                }
            }
        }
        // Surface binding errors even when one side is empty.
        if rows.is_empty() {
            let probe: Row = vec![Value::Null; combined_layout.width()];
            evaluate_predicate(&join.on, &combined_layout, &probe)?;
        }
        Ok(BoundRows {
            layout: combined_layout,
            rows,
        })
    }
}

/// If the ON condition contains an equality between a left-side column and a
/// right-side column, returns `(left index, right index within the right layout,
/// residual condition)`.
fn equi_join_key(on: &Expr, left: &Layout, right: &Layout) -> Option<(usize, usize, Option<Expr>)> {
    let conjuncts = on.conjuncts();
    for (i, conjunct) in conjuncts.iter().enumerate() {
        let Expr::Comparison {
            lhs,
            op: ComparisonOp::Eq,
            rhs,
        } = conjunct
        else {
            continue;
        };
        let (Expr::Column(a), Expr::Column(b)) = (lhs.as_ref(), rhs.as_ref()) else {
            continue;
        };
        let pair = match (left.resolve(a), right.resolve(b)) {
            (Ok(l), Ok(r)) => Some((l, r)),
            _ => match (left.resolve(b), right.resolve(a)) {
                (Ok(l), Ok(r)) => Some((l, r)),
                _ => None,
            },
        };
        let Some((left_idx, right_idx)) = pair else {
            continue;
        };
        // Everything except this conjunct becomes the residual filter.
        let residual = conjuncts
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, e)| (*e).clone())
            .reduce(|a, b| Expr::And(Box::new(a), Box::new(b)));
        return Some((left_idx, right_idx, residual));
    }
    None
}

/// Evaluates a boolean expression against one row.
fn evaluate_predicate(expr: &Expr, layout: &Layout, row: &Row) -> Result<bool, QueryError> {
    match expr {
        Expr::Comparison { lhs, op, rhs } => {
            let l = evaluate_scalar(lhs, layout, row)?;
            let r = evaluate_scalar(rhs, layout, row)?;
            Ok(op.test(l.compare(&r)))
        }
        // Both sides are always evaluated so binding errors (unknown or ambiguous
        // columns) are never masked by short-circuiting.
        Expr::And(a, b) => {
            let left = evaluate_predicate(a, layout, row)?;
            let right = evaluate_predicate(b, layout, row)?;
            Ok(left && right)
        }
        Expr::Or(a, b) => {
            let left = evaluate_predicate(a, layout, row)?;
            let right = evaluate_predicate(b, layout, row)?;
            Ok(left || right)
        }
        Expr::Not(e) => Ok(!evaluate_predicate(e, layout, row)?),
        Expr::IsNull { expr, negated } => {
            let v = evaluate_scalar(expr, layout, row)?;
            Ok(v.is_null() != *negated)
        }
        // A bare column or literal used in boolean position: truthy when a boolean
        // true, non-zero number, or non-empty string.
        other => {
            let v = evaluate_scalar(other, layout, row)?;
            Ok(match v {
                Value::Bool(b) => b,
                Value::Null => false,
                Value::Int(i) => i != 0,
                Value::Float(f) => f != 0.0,
                Value::Str(s) => !s.is_empty(),
            })
        }
    }
}

/// Evaluates a scalar expression against one row.
fn evaluate_scalar(expr: &Expr, layout: &Layout, row: &Row) -> Result<Value, QueryError> {
    match expr {
        Expr::Column(c) => Ok(row[layout.resolve(c)?].clone()),
        Expr::Literal(v) => Ok(v.clone()),
        other => {
            // Nested boolean expressions used as scalars evaluate to a boolean value.
            Ok(Value::Bool(evaluate_predicate(other, layout, row)?))
        }
    }
}

/// Applies GROUP BY / aggregation / plain projection and names the output columns.
fn project(query: &Query, working: &BoundRows) -> Result<Table, QueryError> {
    let has_aggregate = query
        .select
        .iter()
        .any(|item| matches!(item, SelectItem::Aggregate { .. }));

    if !has_aggregate && query.group_by.is_empty() {
        return project_plain(query, working);
    }

    // Aggregation path: plain columns in the projection must be GROUP BY columns.
    for item in &query.select {
        if let SelectItem::Column(c) = item {
            let in_group = query
                .group_by
                .iter()
                .any(|g| g.column == c.column && (g.table.is_none() || g.table == c.table));
            if !in_group {
                return Err(QueryError::InvalidAggregation(format!(
                    "column `{c}` must appear in GROUP BY or inside an aggregate"
                )));
            }
        }
        if matches!(item, SelectItem::Wildcard) {
            return Err(QueryError::InvalidAggregation(
                "`*` cannot be combined with aggregates".into(),
            ));
        }
    }

    let group_indices: Vec<usize> = query
        .group_by
        .iter()
        .map(|c| working.layout.resolve(c))
        .collect::<Result<_, _>>()?;

    // Group rows by the rendered grouping key (insertion order preserved).
    let mut group_order: Vec<Vec<String>> = Vec::new();
    let mut groups: HashMap<Vec<String>, Vec<&Row>> = HashMap::new();
    for row in &working.rows {
        let key: Vec<String> = group_indices.iter().map(|&i| row[i].render()).collect();
        if !groups.contains_key(&key) {
            group_order.push(key.clone());
        }
        groups.entry(key).or_default().push(row);
    }
    // A global aggregate over an empty input still produces one row.
    if groups.is_empty() && group_indices.is_empty() {
        group_order.push(Vec::new());
        groups.insert(Vec::new(), Vec::new());
    }

    let columns = output_column_names(query);
    let mut table = Table::new(columns);
    for key in group_order {
        let rows = &groups[&key];
        let mut out_row = Vec::with_capacity(query.select.len());
        for item in &query.select {
            match item {
                SelectItem::Column(c) => {
                    let idx = working.layout.resolve(c)?;
                    let value = rows.first().map(|r| r[idx].clone()).unwrap_or(Value::Null);
                    out_row.push(value);
                }
                SelectItem::Aggregate { function, column } => {
                    out_row.push(compute_aggregate(
                        *function,
                        column.as_ref(),
                        rows,
                        &working.layout,
                    )?);
                }
                SelectItem::Wildcard => unreachable!("rejected above"),
            }
        }
        table.push(out_row);
    }
    Ok(table)
}

/// Projection without aggregation.
fn project_plain(query: &Query, working: &BoundRows) -> Result<Table, QueryError> {
    let mut indices: Vec<usize> = Vec::new();
    let mut columns: Vec<String> = Vec::new();
    for item in &query.select {
        match item {
            SelectItem::Wildcard => {
                for (i, (_, name)) in working.layout.columns.iter().enumerate() {
                    indices.push(i);
                    columns.push(name.clone());
                }
            }
            SelectItem::Column(c) => {
                indices.push(working.layout.resolve(c)?);
                columns.push(c.column.clone());
            }
            SelectItem::Aggregate { .. } => unreachable!("handled by the aggregate path"),
        }
    }
    let mut table = Table::new(columns);
    for row in &working.rows {
        table.push(indices.iter().map(|&i| row[i].clone()).collect());
    }
    Ok(table)
}

/// Names for the output columns of an aggregate projection.
fn output_column_names(query: &Query) -> Vec<String> {
    query
        .select
        .iter()
        .map(|item| match item {
            SelectItem::Wildcard => "*".to_string(),
            SelectItem::Column(c) => c.column.clone(),
            SelectItem::Aggregate { function, column } => match column {
                Some(c) => format!("{}({})", function.sql_name(), c),
                None => format!("{}(*)", function.sql_name()),
            },
        })
        .collect()
}

/// Computes one aggregate over the rows of a group.
fn compute_aggregate(
    function: Aggregate,
    column: Option<&ColumnRef>,
    rows: &[&Row],
    layout: &Layout,
) -> Result<Value, QueryError> {
    // COUNT(*) needs no column; every other aggregate does.
    let values: Vec<Value> = match column {
        None => return Ok(Value::Int(rows.len() as i64)),
        Some(c) => {
            let idx = layout.resolve(c)?;
            rows.iter()
                .map(|r| r[idx].clone())
                .filter(|v| !v.is_null())
                .collect()
        }
    };
    let result = match function {
        Aggregate::Count => Value::Int(values.len() as i64),
        Aggregate::Sum | Aggregate::Avg => {
            let numbers: Vec<f64> = values.iter().filter_map(Value::as_number).collect();
            if numbers.is_empty() {
                Value::Null
            } else {
                let sum: f64 = numbers.iter().sum();
                match function {
                    Aggregate::Sum => float_value(sum),
                    _ => float_value(sum / numbers.len() as f64),
                }
            }
        }
        Aggregate::Min => extremum(&values, Ordering::Less),
        Aggregate::Max => extremum(&values, Ordering::Greater),
    };
    Ok(result)
}

/// Wraps a float, collapsing integral results to `Value::Int`.
fn float_value(f: f64) -> Value {
    if f.fract() == 0.0 && f.abs() < 1e15 {
        Value::Int(f as i64)
    } else {
        Value::Float(f)
    }
}

fn extremum(values: &[Value], keep: Ordering) -> Value {
    let mut best: Option<&Value> = None;
    for v in values {
        match best {
            None => best = Some(v),
            Some(b) => {
                if v.compare(b) == Some(keep) {
                    best = Some(v);
                }
            }
        }
    }
    best.cloned().unwrap_or(Value::Null)
}

/// Sorts the projected rows by the ORDER BY keys.
fn order_rows(query: &Query, working: &BoundRows, result: &mut Table) -> Result<(), QueryError> {
    // Each key resolves either to an output column (by name) or, when the query has no
    // aggregation, to a pre-projection column evaluated per original row.  For
    // simplicity and predictability we require ORDER BY keys to be present in the
    // output when aggregating.
    let mut key_indices = Vec::with_capacity(query.order_by.len());
    for key in &query.order_by {
        let by_output = result
            .columns
            .iter()
            .position(|c| c == &key.column.column || c == &key.column.to_string());
        match by_output {
            Some(i) => key_indices.push((i, key.descending)),
            None => {
                if query.group_by.is_empty()
                    && !query
                        .select
                        .iter()
                        .any(|s| matches!(s, SelectItem::Aggregate { .. }))
                {
                    // Re-project the key column: append it temporarily.
                    let idx = working.layout.resolve(&key.column)?;
                    let n = result.columns.len();
                    result.columns.push(format!("__order_{n}"));
                    for (row, source) in result.rows.iter_mut().zip(working.rows.iter()) {
                        row.push(source[idx].clone());
                    }
                    key_indices.push((n, key.descending));
                } else {
                    return Err(QueryError::UnknownColumn(format!(
                        "ORDER BY column `{}` is not in the projection",
                        key.column
                    )));
                }
            }
        }
    }

    result.rows.sort_by(|a, b| {
        for &(idx, descending) in &key_indices {
            let ord = a[idx].compare(&b[idx]).unwrap_or(Ordering::Equal);
            let ord = if descending { ord.reverse() } else { ord };
            if ord != Ordering::Equal {
                return ord;
            }
        }
        Ordering::Equal
    });

    // Drop temporary ordering columns.
    let visible = result
        .columns
        .iter()
        .filter(|c| !c.starts_with("__order_"))
        .count();
    if visible != result.columns.len() {
        result.columns.truncate(visible);
        for row in &mut result.rows {
            row.truncate(visible);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Column, Schema, TableSchema};

    fn tiny_db() -> Database {
        let schema = Schema::new()
            .with_table(TableSchema::new(
                "t",
                vec![Column::integer("a"), Column::text("b")],
            ))
            .with_table(TableSchema::new(
                "u",
                vec![Column::integer("a"), Column::text("c")],
            ));
        let mut db = Database::new(schema);
        for (a, b) in [(1, "x"), (2, "y"), (3, "z")] {
            db.insert("t", vec![Value::int(a), Value::str(b)]);
        }
        for (a, c) in [(1, "one"), (3, "three"), (4, "four")] {
            db.insert("u", vec![Value::int(a), Value::str(c)]);
        }
        db
    }

    fn run(db: &Database, sql: &str) -> Table {
        super::super::run_query(db, sql).unwrap()
    }

    #[test]
    fn hash_join_and_nested_loop_join_agree() {
        let db = tiny_db();
        // Equality condition → hash join.
        let hash = run(
            &db,
            "SELECT t.a, u.c FROM t JOIN u ON t.a = u.a ORDER BY t.a",
        );
        // Written as an inequality sandwich the planner falls back to a nested loop.
        let nested = run(
            &db,
            "SELECT t.a, u.c FROM t JOIN u ON t.a <= u.a AND t.a >= u.a ORDER BY t.a",
        );
        assert_eq!(hash.rows, nested.rows);
        assert_eq!(hash.len(), 2);
    }

    #[test]
    fn join_with_residual_condition() {
        let db = tiny_db();
        let out = run(
            &db,
            "SELECT t.a FROM t JOIN u ON t.a = u.a AND u.c != 'one'",
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0][0], Value::int(3));
    }

    #[test]
    fn empty_result_still_reports_unknown_columns() {
        let db = tiny_db();
        let err = super::super::run_query(&db, "SELECT a FROM t WHERE a > 100 AND nosuch = 1");
        assert!(matches!(err, Err(QueryError::UnknownColumn(_))));
    }

    #[test]
    fn aggregates_ignore_nulls() {
        let schema = Schema::new().with_table(TableSchema::new("v", vec![Column::integer("x")]));
        let mut db = Database::new(schema);
        db.insert("v", vec![Value::int(10)]);
        db.insert("v", vec![Value::Null]);
        db.insert("v", vec![Value::int(20)]);
        let out = run(
            &db,
            "SELECT COUNT(x), SUM(x), AVG(x), MIN(x), MAX(x) FROM v",
        );
        assert_eq!(
            out.rows[0],
            vec![
                Value::int(2),
                Value::int(30),
                Value::int(15),
                Value::int(10),
                Value::int(20)
            ]
        );
    }

    #[test]
    fn global_aggregate_over_empty_table_yields_one_row() {
        let schema = Schema::new().with_table(TableSchema::new("v", vec![Column::integer("x")]));
        let db = Database::new(schema);
        let out = run(&db, "SELECT COUNT(*) FROM v");
        assert_eq!(out.rows, vec![vec![Value::int(0)]]);
    }

    #[test]
    fn order_by_column_not_in_projection() {
        let db = tiny_db();
        let out = run(&db, "SELECT b FROM t ORDER BY a DESC");
        assert_eq!(out.columns, vec!["b"]);
        assert_eq!(out.rows[0][0], Value::str("z"));
    }

    #[test]
    fn mixing_plain_columns_and_aggregates_requires_group_by() {
        let db = tiny_db();
        let err = super::super::run_query(&db, "SELECT b, COUNT(*) FROM t");
        assert!(matches!(err, Err(QueryError::InvalidAggregation(_))));
    }
}
