//! The append-only checkpoint journal (`journal.jsonl`).
//!
//! One JSON record per line, every record with a **fixed field order** so the
//! journal of an uninterrupted run is byte-deterministic at every thread count
//! (shards are journaled in shard order).  Timings are carried by separate
//! `timing` records — never inside the comparable `header`/`shard`/`complete`
//! payloads — so byte-identity probes can filter them out mechanically.
//!
//! Record kinds:
//!
//! * `header`  — corpus identity (FNV hash, doc count, shard layout, tables);
//!   written once at the start of a fresh run, validated on resume.
//! * `synth`   — shape/program counts after the synthesis pass (fresh runs).
//! * `shard`   — one per completed shard, fsync'd before the next wave starts:
//!   per-table row counts, quarantine records, and the FNV hash of the written
//!   shard file, so resume can verify the checkpoint survived the crash.
//! * `timing`  — wall-clock seconds for one shard (non-compared).
//! * `complete` — terminal record of a finished run.

use super::{fnv64, CorpusError, FailureKind, QuarantineRecord};
use mitra_hdt::{parse_json, JsonValue};
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// Renders a string as a JSON string literal (same escaping rules as
/// `MigrationReport::summary_json`).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders one quarantine record with fixed field order — the exact line
/// format of the failure ledger.
pub(crate) fn quarantine_json(q: &QuarantineRecord) -> String {
    format!(
        "{{\"doc\": {}, \"offset\": {}, \"kind\": {}, \"error\": {}, \"attempts\": {}}}",
        q.doc,
        q.offset,
        json_string(q.kind.label()),
        json_string(&q.error),
        q.attempts
    )
}

/// The parsed `header` record of a journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalHeader {
    /// Journal format version.
    pub version: u64,
    /// Document format label (`xml` / `json` / `html`).
    pub format: String,
    /// FNV-1a hash of the whole corpus text.
    pub corpus_hash: u64,
    /// Documents in the corpus.
    pub docs: usize,
    /// Documents per shard.
    pub shard_size: usize,
    /// Total shards.
    pub shards: usize,
    /// Target table names, in task order.
    pub tables: Vec<String>,
}

impl JournalHeader {
    /// Renders the header record (fixed field order).
    pub fn to_json_line(&self) -> String {
        let tables: Vec<String> = self.tables.iter().map(|t| json_string(t)).collect();
        format!(
            "{{\"kind\": \"header\", \"version\": {}, \"format\": {}, \"corpus_hash\": \"{:016x}\", \
             \"docs\": {}, \"shard_size\": {}, \"shards\": {}, \"tables\": [{}]}}",
            self.version,
            json_string(&self.format),
            self.corpus_hash,
            self.docs,
            self.shard_size,
            self.shards,
            tables.join(", ")
        )
    }
}

/// The journal record of one completed shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRecord {
    /// Shard index.
    pub shard: usize,
    /// Documents in the shard.
    pub docs: usize,
    /// Documents that produced rows.
    pub ok: usize,
    /// Escalating-budget retry attempts made within the shard.
    pub retried: u64,
    /// Rows per table `(name, rows)`, in task order.
    pub rows: Vec<(String, usize)>,
    /// Quarantined documents of this shard, in document order.
    pub quarantined: Vec<QuarantineRecord>,
    /// FNV-1a hash of the shard result file's bytes.
    pub result_hash: u64,
}

impl ShardRecord {
    /// Renders the shard record (fixed field order, no timings).
    pub fn to_json_line(&self) -> String {
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|(name, n)| format!("[{}, {n}]", json_string(name)))
            .collect();
        let quarantined: Vec<String> = self.quarantined.iter().map(quarantine_json).collect();
        format!(
            "{{\"kind\": \"shard\", \"shard\": {}, \"docs\": {}, \"ok\": {}, \"retried\": {}, \
             \"rows\": [{}], \"quarantined\": [{}], \"result_hash\": \"{:016x}\"}}",
            self.shard,
            self.docs,
            self.ok,
            self.retried,
            rows.join(", "),
            quarantined.join(", "),
            self.result_hash
        )
    }
}

/// Appends fsync'd records to `journal.jsonl`.  Every [`JournalWriter::record`]
/// call writes one line and `sync_data`s it, so a record observed by a resumed
/// process is complete.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: String,
}

impl JournalWriter {
    /// Starts a fresh journal (truncates any previous one).
    pub fn create(path: &Path) -> Result<JournalWriter, CorpusError> {
        let file = File::create(path).map_err(|e| CorpusError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        })?;
        Ok(JournalWriter {
            file,
            path: path.display().to_string(),
        })
    }

    /// Opens an existing journal for appending (resume).
    pub fn append(path: &Path) -> Result<JournalWriter, CorpusError> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| CorpusError::Io {
                path: path.display().to_string(),
                error: e.to_string(),
            })?;
        Ok(JournalWriter {
            file,
            path: path.display().to_string(),
        })
    }

    /// Appends one record line and fsyncs it to disk.
    pub fn record(&mut self, line: &str) -> Result<(), CorpusError> {
        let io_err = |e: std::io::Error| CorpusError::Io {
            path: self.path.clone(),
            error: e.to_string(),
        };
        self.file.write_all(line.as_bytes()).map_err(io_err)?;
        self.file.write_all(b"\n").map_err(io_err)?;
        self.file.sync_data().map_err(io_err)?;
        Ok(())
    }
}

/// Everything a resume needs from a journal: the header, the completed shards
/// (last record per shard wins), the synthesis counts, and whether the run
/// already completed.
#[derive(Debug, Clone)]
pub struct JournalState {
    /// The validated header record.
    pub header: JournalHeader,
    /// Completed shards by index.
    pub shards: BTreeMap<usize, ShardRecord>,
    /// `(shapes, programs_synthesized)` from the synth record, if present.
    pub synth: Option<(usize, usize)>,
    /// True when a `complete` record was journaled.
    pub complete: bool,
}

fn num_u64(v: &JsonValue) -> Option<u64> {
    match v {
        JsonValue::Number(n) if *n >= 0.0 => Some(*n as u64),
        _ => None,
    }
}

fn field_u64(obj: &JsonValue, key: &str) -> Result<u64, CorpusError> {
    obj.get(key)
        .and_then(num_u64)
        .ok_or_else(|| CorpusError::Journal(format!("record missing numeric field `{key}`")))
}

fn field_str<'a>(obj: &'a JsonValue, key: &str) -> Result<&'a str, CorpusError> {
    obj.get(key)
        .and_then(JsonValue::as_str)
        .ok_or_else(|| CorpusError::Journal(format!("record missing string field `{key}`")))
}

fn field_hex(obj: &JsonValue, key: &str) -> Result<u64, CorpusError> {
    let s = field_str(obj, key)?;
    u64::from_str_radix(s, 16)
        .map_err(|_| CorpusError::Journal(format!("field `{key}` is not a hex hash: {s:?}")))
}

fn parse_quarantine(v: &JsonValue) -> Result<QuarantineRecord, CorpusError> {
    let kind = field_str(v, "kind")?;
    let kind = FailureKind::from_label(kind)
        .ok_or_else(|| CorpusError::Journal(format!("unknown failure kind {kind:?}")))?;
    Ok(QuarantineRecord {
        doc: field_u64(v, "doc")? as usize,
        offset: field_u64(v, "offset")? as usize,
        kind,
        error: field_str(v, "error")?.to_string(),
        attempts: field_u64(v, "attempts")? as u32,
    })
}

fn parse_shard(v: &JsonValue) -> Result<ShardRecord, CorpusError> {
    let rows = match v.get("rows") {
        Some(JsonValue::Array(entries)) => {
            let mut rows = Vec::with_capacity(entries.len());
            for e in entries {
                let JsonValue::Array(pair) = e else {
                    return Err(CorpusError::Journal("shard row entry is not a pair".into()));
                };
                let (Some(name), Some(n)) = (
                    pair.first().and_then(JsonValue::as_str),
                    pair.get(1).and_then(num_u64),
                ) else {
                    return Err(CorpusError::Journal("shard row entry is not a pair".into()));
                };
                rows.push((name.to_string(), n as usize));
            }
            rows
        }
        _ => return Err(CorpusError::Journal("shard record missing `rows`".into())),
    };
    let quarantined = match v.get("quarantined") {
        Some(JsonValue::Array(entries)) => entries
            .iter()
            .map(parse_quarantine)
            .collect::<Result<Vec<_>, _>>()?,
        _ => {
            return Err(CorpusError::Journal(
                "shard record missing `quarantined`".into(),
            ))
        }
    };
    Ok(ShardRecord {
        shard: field_u64(v, "shard")? as usize,
        docs: field_u64(v, "docs")? as usize,
        ok: field_u64(v, "ok")? as usize,
        retried: field_u64(v, "retried")?,
        rows,
        quarantined,
        result_hash: field_hex(v, "result_hash")?,
    })
}

/// Loads and parses a journal file.  Unknown record kinds are ignored (forward
/// compatibility); a trailing partial line — possible if the crash hit mid
/// `write` — is tolerated and discarded, which is safe because a record only
/// *gains* effect once fully written and parseable.
pub fn load_journal(path: &Path) -> Result<JournalState, CorpusError> {
    let text = std::fs::read_to_string(path).map_err(|e| CorpusError::Io {
        path: path.display().to_string(),
        error: e.to_string(),
    })?;
    let mut header: Option<JournalHeader> = None;
    let mut shards: BTreeMap<usize, ShardRecord> = BTreeMap::new();
    let mut synth: Option<(usize, usize)> = None;
    let mut complete = false;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let Ok(value) = parse_json(line) else {
            // A torn final record from the crash; everything before it is
            // intact because each record was fsync'd separately.
            continue;
        };
        let kind = value.get("kind").and_then(JsonValue::as_str).unwrap_or("");
        match kind {
            "header" => {
                let tables = match value.get("tables") {
                    Some(JsonValue::Array(entries)) => entries
                        .iter()
                        .map(|t| {
                            t.as_str().map(str::to_string).ok_or_else(|| {
                                CorpusError::Journal("header table name is not a string".into())
                            })
                        })
                        .collect::<Result<Vec<_>, _>>()?,
                    _ => return Err(CorpusError::Journal("header missing `tables`".into())),
                };
                header = Some(JournalHeader {
                    version: field_u64(&value, "version")?,
                    format: field_str(&value, "format")?.to_string(),
                    corpus_hash: field_hex(&value, "corpus_hash")?,
                    docs: field_u64(&value, "docs")? as usize,
                    shard_size: field_u64(&value, "shard_size")? as usize,
                    shards: field_u64(&value, "shards")? as usize,
                    tables,
                });
            }
            "shard" => {
                let record = parse_shard(&value)?;
                shards.insert(record.shard, record);
            }
            "synth" => {
                synth = Some((
                    field_u64(&value, "shapes")? as usize,
                    field_u64(&value, "programs")? as usize,
                ));
            }
            "complete" => complete = true,
            _ => {}
        }
    }
    let header = header.ok_or_else(|| CorpusError::Journal("journal has no header".into()))?;
    Ok(JournalState {
        header,
        shards,
        synth,
        complete,
    })
}

/// Verifies a journaled shard against its on-disk shard file: the file must
/// exist and hash to the journaled `result_hash`.  Shards that fail the check
/// are simply re-run by `resume`.
pub fn verify_shard_file(shards_dir: &Path, record: &ShardRecord) -> bool {
    let path = shards_dir.join(super::shard::shard_file_name(record.shard));
    match std::fs::read(&path) {
        Ok(bytes) => fnv64(&bytes) == record.result_hash,
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> ShardRecord {
        ShardRecord {
            shard: 3,
            docs: 32,
            ok: 30,
            retried: 2,
            rows: vec![("customer".into(), 61), ("purchase".into(), 95)],
            quarantined: vec![QuarantineRecord {
                doc: 100,
                offset: 4523,
                kind: FailureKind::Malformed,
                error: "xml parse error: unexpected \"end\"".into(),
                attempts: 1,
            }],
            result_hash: 0x0123_4567_89ab_cdef,
        }
    }

    #[test]
    fn records_round_trip_through_the_journal() {
        let dir = std::env::temp_dir().join(format!("mitra-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.jsonl");
        let header = JournalHeader {
            version: 1,
            format: "xml".into(),
            corpus_hash: 0xdead_beef_0000_0001,
            docs: 200,
            shard_size: 32,
            shards: 7,
            tables: vec!["customer".into(), "purchase".into()],
        };
        let record = sample_record();
        {
            let mut w = JournalWriter::create(&path).unwrap();
            w.record(&header.to_json_line()).unwrap();
            w.record("{\"kind\": \"synth\", \"shapes\": 2, \"programs\": 4}")
                .unwrap();
            w.record(&record.to_json_line()).unwrap();
            w.record("{\"kind\": \"timing\", \"shard\": 3, \"secs\": 0.125}")
                .unwrap();
        }
        // A torn trailing record must not poison the intact prefix.
        {
            let mut w = JournalWriter::append(&path).unwrap();
            w.record("{\"kind\": \"shard\", \"shard\": 4, \"do")
                .unwrap();
        }
        let state = load_journal(&path).unwrap();
        assert_eq!(state.header, header);
        assert_eq!(state.synth, Some((2, 4)));
        assert!(!state.complete);
        assert_eq!(state.shards.len(), 1);
        assert_eq!(state.shards[&3], record);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn record_lines_use_fixed_field_order() {
        let line = sample_record().to_json_line();
        let shard_pos = line.find("\"shard\"").unwrap();
        let rows_pos = line.find("\"rows\"").unwrap();
        let q_pos = line.find("\"quarantined\"").unwrap();
        let hash_pos = line.find("\"result_hash\"").unwrap();
        assert!(shard_pos < rows_pos && rows_pos < q_pos && q_pos < hash_pos);
        assert!(!line.contains("secs"), "no timings in shard records");
        assert!(line.contains("\"result_hash\": \"0123456789abcdef\""));
    }

    #[test]
    fn json_string_escapes_control_characters() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
