//! The corpus runner: scan → synthesize-per-shape → execute in checkpointed
//! shard waves → assemble.
//!
//! Determinism contract (the corpus-level extension of the per-table contract
//! in [`crate::migrate`]):
//!
//! * every per-document decision — parse outcome, shape, retry escalation,
//!   quarantine — is a pure function of the corpus text and the job, never of
//!   wall-clock or scheduling;
//! * shard workers fan out over `mitra-pool` but their outputs are journaled
//!   and persisted **in shard order**, and final tables are assembled by
//!   concatenating the persisted shard files in shard order, so assembled
//!   artifacts are byte-identical at every thread count;
//! * [`resume`] takes the same assembly path over a mix of journaled and
//!   freshly executed shards, which makes interrupted+resumed byte-identity
//!   structural rather than incidental.
//!
//! Fault sites: `corpus.shard` fires at shard-worker entry (an injected panic
//! kills the run mid-corpus, exercising crash-resume); `corpus.doc` fires at
//! document entry inside the per-document `catch_unwind` (an injected panic is
//! quarantined as a typed `panic` failure instead).

use super::journal::{
    self, quarantine_json, JournalHeader, JournalState, JournalWriter, ShardRecord,
};
use super::shard::{parse_shard, render_row, render_shard, shard_file_name, split_csv_line};
use super::{
    fnv64, parse_corpus_text, CorpusDoc, CorpusError, CorpusJob, CorpusReport, CorpusTableSource,
    FailureKind, QuarantineRecord,
};
use crate::database::Database;
use crate::keys::{eval_key, KeySpec};
use crate::schema::TableSchema;
use mitra_dsl::eval::node_value;
use mitra_dsl::{Program, Table, Value};
use mitra_pool::{panic_message, parallel_map_catch};
use mitra_synth::exec::execute_nodes_budgeted;
use mitra_synth::fingerprint::{fingerprint, Fingerprint, ProgramCache};
use mitra_synth::synthesize::{learn_transformation, Example, SynthError};
use std::collections::{BTreeMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::time::Instant;

/// What the program cache stores per shape: the per-task programs, or the
/// typed failure every document of the shape inherits.
type ShapePrograms = Result<Vec<Program>, (FailureKind, String)>;

/// Runs a corpus job from scratch, truncating any previous journal in
/// `out_dir`.  On success the directory holds `journal.jsonl`,
/// `shards/shard-*.tbl`, `tables/<table>.csv`, `failure_ledger.jsonl`,
/// `summary.json` and `timings.json`.
pub fn run(
    job: &CorpusJob,
    corpus_text: &str,
    out_dir: &Path,
) -> Result<CorpusReport, CorpusError> {
    run_impl(job, corpus_text, out_dir, false)
}

/// Resumes an interrupted run: verifies the journal against the corpus,
/// re-executes only the shards without a verified checkpoint, and assembles
/// artifacts byte-identical to an uninterrupted [`run`].
pub fn resume(
    job: &CorpusJob,
    corpus_text: &str,
    out_dir: &Path,
) -> Result<CorpusReport, CorpusError> {
    run_impl(job, corpus_text, out_dir, true)
}

fn io_err(path: &Path) -> impl Fn(std::io::Error) -> CorpusError + '_ {
    move |e| CorpusError::Io {
        path: path.display().to_string(),
        error: e.to_string(),
    }
}

fn run_impl(
    job: &CorpusJob,
    corpus_text: &str,
    out_dir: &Path,
    resuming: bool,
) -> Result<CorpusReport, CorpusError> {
    let run_start = Instant::now();
    job.validate().map_err(CorpusError::Plan)?;
    let schemas: Vec<TableSchema> = job
        .tasks
        .iter()
        .filter_map(|t| job.schema.table(&t.table).cloned())
        .collect();
    if schemas.len() != job.tasks.len() {
        // validate() checked every task table; reaching here means the schema
        // changed under us.
        return Err(CorpusError::Corpus("schema lost a task table".into()));
    }
    let (_header, docs) = parse_corpus_text(corpus_text);
    let shard_size = job.config.shard_size.max(1);
    let shard_count = docs.len().div_ceil(shard_size);
    let tables = job.table_names();
    let corpus_hash = fnv64(corpus_text.as_bytes());

    let shards_dir = out_dir.join("shards");
    let tables_dir = out_dir.join("tables");
    std::fs::create_dir_all(&shards_dir).map_err(io_err(&shards_dir))?;
    std::fs::create_dir_all(&tables_dir).map_err(io_err(&tables_dir))?;
    let journal_path = out_dir.join("journal.jsonl");

    let expected_header = JournalHeader {
        version: 1,
        format: job.format.label().to_string(),
        corpus_hash,
        docs: docs.len(),
        shard_size,
        shards: shard_count,
        tables: tables.clone(),
    };

    let mut completed: BTreeMap<usize, ShardRecord> = BTreeMap::new();
    let mut prior_synth: Option<(usize, usize)> = None;
    let mut writer = if resuming {
        let state: JournalState = journal::load_journal(&journal_path)?;
        if state.header != expected_header {
            return Err(CorpusError::Journal(format!(
                "journal does not match this corpus/job (journaled {:?}, expected {:?})",
                state.header, expected_header
            )));
        }
        for (idx, record) in state.shards {
            if idx < shard_count && journal::verify_shard_file(&shards_dir, &record) {
                completed.insert(idx, record);
            }
        }
        prior_synth = state.synth;
        mitra_trace::counter_add!("corpus.resumed_shards", completed.len() as u64);
        JournalWriter::append(&journal_path)?
    } else {
        let mut w = JournalWriter::create(&journal_path)?;
        w.record(&expected_header.to_json_line())?;
        w
    };
    let resumed_shards = completed.len();

    let pending: Vec<usize> = (0..shard_count)
        .filter(|i| !completed.contains_key(i))
        .collect();

    // Pass 1+2: fingerprint every document and synthesize once per shape.
    // The scan covers *all* documents — even those of already-checkpointed
    // shards — so each shape's exemplar (its lowest document index) is a pure
    // function of the corpus, identical for fresh and resumed runs.
    let synth_start = Instant::now();
    let cache: ProgramCache<ShapePrograms> = ProgramCache::new();
    let (shapes, programs_synthesized) = if pending.is_empty() {
        prior_synth.unwrap_or((0, 0))
    } else {
        let fps: Vec<Option<Fingerprint>> =
            parallel_map_catch(job.config.threads, &docs, |_, doc| {
                job.format.parse(doc.text).ok().map(|t| fingerprint(&t))
            })
            .into_iter()
            .map(|slot| slot.unwrap_or(None))
            .collect();
        let mut seen: HashSet<Fingerprint> = HashSet::new();
        let mut order: Vec<(Fingerprint, usize)> = Vec::new();
        for (i, fp) in fps.iter().enumerate() {
            if let Some(fp) = fp {
                if seen.insert(*fp) {
                    order.push((*fp, i));
                }
            }
        }
        let learned = parallel_map_catch(job.config.threads, &order, |_, &(_, exemplar)| {
            synthesize_shape(job, docs[exemplar])
        });
        let mut programs = 0usize;
        for (slot, &(fp, _)) in learned.into_iter().zip(&order) {
            let (entry, count) = match slot {
                Ok((entry, count)) => (entry, count),
                Err(payload) => (Err((FailureKind::Panic, payload.message)), 0),
            };
            programs += count;
            cache.insert(fp, entry);
        }
        mitra_trace::counter_add!("corpus.programs_synthesized", programs as u64);
        writer.record(&format!(
            "{{\"kind\": \"synth\", \"shapes\": {}, \"programs\": {programs}}}",
            order.len()
        ))?;
        (order.len(), programs)
    };
    let synth_wall = synth_start.elapsed();

    // Pass 3: execute pending shards in waves of one shard per worker; each
    // wave's results are journaled and persisted in shard order before the
    // next wave starts, so a crash loses at most one wave of work.
    let exec_start = Instant::now();
    let wave_size = mitra_pool::resolve(job.config.threads).max(1);
    for wave in pending.chunks(wave_size) {
        let results = parallel_map_catch(job.config.threads, wave, |_, &shard_idx| {
            run_shard(job, &schemas, &docs, shard_idx, shard_size, &cache)
        });
        let mut panicked: Option<(usize, String)> = None;
        for (&shard_idx, slot) in wave.iter().zip(results) {
            match slot {
                Ok(output) => {
                    let record =
                        persist_shard(&shards_dir, &mut writer, shard_idx, &tables, output)?;
                    completed.insert(shard_idx, record);
                }
                Err(payload) => {
                    // Keep journaling the wave's survivors before reporting
                    // the first panicked shard — that is the checkpoint a
                    // resume continues from.
                    if panicked.is_none() {
                        panicked = Some((shard_idx, payload.message));
                    }
                }
            }
        }
        if let Some((shard, message)) = panicked {
            return Err(CorpusError::ShardPanicked { shard, message });
        }
    }
    let exec_wall = exec_start.elapsed();

    // Assembly: concatenate the persisted shard files in shard order.  Fresh
    // and resumed runs share this path, so byte-identity of the final tables
    // does not depend on which shards were replayed.
    let mut table_lines: Vec<Vec<String>> = vec![Vec::new(); tables.len()];
    for shard_idx in 0..shard_count {
        let path = shards_dir.join(shard_file_name(shard_idx));
        let text = std::fs::read_to_string(&path).map_err(io_err(&path))?;
        let sections = parse_shard(&text)?;
        if sections.len() != tables.len() {
            return Err(CorpusError::Corpus(format!(
                "shard {shard_idx} has {} sections, expected {}",
                sections.len(),
                tables.len()
            )));
        }
        for (t, (name, lines)) in sections.into_iter().enumerate() {
            if name != tables[t] {
                return Err(CorpusError::Corpus(format!(
                    "shard {shard_idx} section {t} is {name:?}, expected {:?}",
                    tables[t]
                )));
            }
            table_lines[t].extend(lines);
        }
    }

    let mut table_rows: Vec<(String, usize)> = Vec::with_capacity(tables.len());
    let mut database = Database::new(job.schema.clone());
    for ((name, schema), lines) in tables.iter().zip(&schemas).zip(&table_lines) {
        let columns = schema.column_names();
        let mut csv = columns.join(",");
        csv.push('\n');
        let mut table = Table::new(columns);
        for line in lines {
            csv.push_str(line);
            csv.push('\n');
            let row: Vec<Value> = split_csv_line(line)
                .iter()
                .map(|c| Value::from_data(c))
                .collect();
            table.push(row);
        }
        let path = tables_dir.join(format!("{name}.csv"));
        std::fs::write(&path, csv).map_err(io_err(&path))?;
        table_rows.push((name.clone(), table.len()));
        database.set_table(name, table);
    }
    let violations = database.check_constraints().len();

    let mut quarantined: Vec<QuarantineRecord> = Vec::new();
    let mut ok_docs = 0usize;
    let mut retried = 0u64;
    for record in completed.values() {
        ok_docs += record.ok;
        retried += record.retried;
        quarantined.extend(record.quarantined.iter().cloned());
    }
    let mut ledger = String::new();
    for q in &quarantined {
        ledger.push_str(&quarantine_json(q));
        ledger.push('\n');
    }
    let ledger_path = out_dir.join("failure_ledger.jsonl");
    std::fs::write(&ledger_path, ledger).map_err(io_err(&ledger_path))?;

    let report = CorpusReport {
        docs: docs.len(),
        ok_docs,
        shards: shard_count,
        shapes,
        programs_synthesized,
        resumed_shards,
        retried,
        quarantined,
        table_rows,
        violations,
        synth_wall,
        exec_wall,
        wall: run_start.elapsed(),
    };
    let summary_path = out_dir.join("summary.json");
    std::fs::write(&summary_path, report.summary_json()).map_err(io_err(&summary_path))?;
    let timings_path = out_dir.join("timings.json");
    std::fs::write(&timings_path, report.timings_json()).map_err(io_err(&timings_path))?;
    writer.record(&format!(
        "{{\"kind\": \"complete\", \"ok_docs\": {ok_docs}, \"quarantined\": {}, \"violations\": {violations}}}",
        report.quarantined.len()
    ))?;
    Ok(report)
}

/// Learns the per-task programs for one shape from its exemplar document.
/// Returns the cache entry plus the number of `learn_transformation` calls
/// that produced a program.
fn synthesize_shape(job: &CorpusJob, exemplar: CorpusDoc<'_>) -> (ShapePrograms, usize) {
    let tree = match job.format.parse(exemplar.text) {
        Ok(t) => t,
        // The scan already parsed this document; treat a flaky re-parse as a
        // shape-level failure rather than crashing the pass.
        Err(e) => return (Err((FailureKind::Malformed, e.to_string())), 0),
    };
    let mut programs = Vec::with_capacity(job.tasks.len());
    let mut learned = 0usize;
    for task in &job.tasks {
        match &task.source {
            CorpusTableSource::Program(p) => programs.push(p.clone()),
            CorpusTableSource::Oracle(oracle) => {
                let Some(expected) = oracle(&tree) else {
                    return (
                        Err((
                            FailureKind::Synthesis,
                            format!("oracle produced no example for table {}", task.table),
                        )),
                        learned,
                    );
                };
                let example = Example::new(tree.clone(), expected);
                match learn_transformation(&[example], &job.config.synth) {
                    Ok(synthesis) => {
                        learned += 1;
                        programs.push(synthesis.program);
                    }
                    Err(SynthError::BudgetExhausted(e)) => {
                        return (
                            Err((
                                FailureKind::Budget,
                                format!("synthesis for table {}: {e}", task.table),
                            )),
                            learned,
                        )
                    }
                    Err(e) => {
                        return (
                            Err((
                                FailureKind::Synthesis,
                                format!("synthesis for table {}: {e}", task.table),
                            )),
                            learned,
                        )
                    }
                }
            }
        }
    }
    (Ok(programs), learned)
}

/// The in-memory result of one executed shard, before persistence.
struct ShardOutput {
    docs: usize,
    ok: usize,
    retried: u64,
    quarantined: Vec<QuarantineRecord>,
    /// `(table, csv lines)` in task order — the shard file's sections.
    sections: Vec<(String, Vec<String>)>,
}

/// What became of one document.
enum DocResult {
    /// CSV lines per task (task order) plus retry attempts spent.
    Ok(Vec<Vec<String>>, u64),
    Quarantine(QuarantineRecord),
}

fn run_shard(
    job: &CorpusJob,
    schemas: &[TableSchema],
    docs: &[CorpusDoc<'_>],
    shard_idx: usize,
    shard_size: usize,
    cache: &ProgramCache<ShapePrograms>,
) -> ShardOutput {
    mitra_trace::fault::hit("corpus.shard", shard_idx as u64);
    let start = shard_idx * shard_size;
    let end = (start + shard_size).min(docs.len());
    let mut sections: Vec<(String, Vec<String>)> = job
        .tasks
        .iter()
        .map(|t| (t.table.clone(), Vec::new()))
        .collect();
    let mut quarantined = Vec::new();
    let mut ok = 0usize;
    let mut retried = 0u64;
    for doc in &docs[start..end] {
        let outcome = catch_unwind(AssertUnwindSafe(|| process_doc(job, schemas, *doc, cache)));
        match outcome {
            Ok(DocResult::Ok(lines, doc_retries)) => {
                ok += 1;
                retried += doc_retries;
                for ((_, section), task_lines) in sections.iter_mut().zip(lines) {
                    section.extend(task_lines);
                }
            }
            Ok(DocResult::Quarantine(record)) => quarantined.push(record),
            Err(payload) => {
                let message = panic_message(payload.as_ref());
                mitra_trace::fault::record_panic(
                    format!("corpus.doc#{}", doc.index),
                    message.clone(),
                );
                quarantined.push(QuarantineRecord {
                    doc: doc.index,
                    offset: doc.offset,
                    kind: FailureKind::Panic,
                    error: message,
                    attempts: 1,
                });
            }
        }
    }
    ShardOutput {
        docs: end - start,
        ok,
        retried,
        quarantined,
        sections,
    }
}

/// Processes one document end to end.  Whole-document atomic: rows are only
/// committed when **every** task executed within budget, so a quarantined
/// document contributes no rows to any table and surviving rows can never
/// dangle across tables.
fn process_doc(
    job: &CorpusJob,
    schemas: &[TableSchema],
    doc: CorpusDoc<'_>,
    cache: &ProgramCache<ShapePrograms>,
) -> DocResult {
    mitra_trace::fault::hit("corpus.doc", doc.index as u64);
    let quarantine = |kind: FailureKind, error: String, attempts: u32| {
        DocResult::Quarantine(QuarantineRecord {
            doc: doc.index,
            offset: doc.offset,
            kind,
            error,
            attempts,
        })
    };
    let tree = match job.format.parse(doc.text) {
        Ok(t) => t,
        Err(e) => return quarantine(FailureKind::Malformed, e.to_string(), 1),
    };
    let fp = fingerprint(&tree);
    let Some(entry) = cache.get(fp) else {
        // Only possible if the scan pass failed on this shape's exemplar.
        return quarantine(
            FailureKind::Panic,
            "shape was not fingerprinted during the scan pass".into(),
            1,
        );
    };
    let programs = match entry.as_ref() {
        Ok(p) => p,
        Err((kind, error)) => return quarantine(*kind, error.clone(), 1),
    };

    let max_attempts = job.config.retry.max_attempts.max(1);
    let escalation = job.config.retry.escalation.max(1);
    let mut retries = 0u64;
    for attempt in 1..=max_attempts {
        // Fuel-based escalation: attempt k runs with base * escalation^(k-1)
        // row fuel — a pure function of the attempt number, so retry outcomes
        // are identical at every thread count.
        let fuel = job
            .config
            .max_rows_per_doc
            .map(|base| base.saturating_mul(escalation.saturating_pow(attempt - 1)));
        let mut lines: Vec<Vec<String>> = Vec::with_capacity(job.tasks.len());
        let mut breach = None;
        for ((task, program), schema) in job.tasks.iter().zip(programs).zip(schemas) {
            match execute_nodes_budgeted(&tree, program, fuel) {
                Err(b) => {
                    breach = Some(b);
                    break;
                }
                Ok((node_rows, _stats)) => {
                    let mut task_lines = Vec::with_capacity(node_rows.len());
                    for nodes in &node_rows {
                        let data_values: Vec<Value> =
                            nodes.iter().map(|n| node_value(&tree, *n)).collect();
                        let mut row: Vec<Value> = vec![Value::Null; schema.arity()];
                        for (i, col) in task.data_columns.iter().enumerate() {
                            if let Some(idx) = schema.column_index(col) {
                                row[idx] = data_values[i].clone();
                            }
                        }
                        for (col, spec) in &task.keys {
                            if let Some(idx) = schema.column_index(col) {
                                let value = eval_key(&tree, nodes, &data_values, spec)
                                    .unwrap_or(Value::Null);
                                row[idx] = namespace_key(value, spec, doc.index);
                            }
                        }
                        task_lines.push(render_row(&row));
                    }
                    lines.push(task_lines);
                }
            }
        }
        match breach {
            None => return DocResult::Ok(lines, retries),
            Some(b) => {
                if attempt < max_attempts && job.config.max_rows_per_doc.is_some() {
                    retries += 1;
                } else {
                    return quarantine(FailureKind::Budget, b.to_string(), attempt);
                }
            }
        }
    }
    // Unreachable: the loop always returns; satisfy the checker defensively.
    quarantine(
        FailureKind::Budget,
        "retry loop exhausted".into(),
        max_attempts,
    )
}

/// Namespaces node-identity keys per document: `node_key` joins node ids that
/// are only unique *within* one tree, so synthetic primary keys and the
/// foreign keys that re-derive them get a `d<doc>_` prefix to stay injective
/// across the concatenated corpus.  Data-derived keys pass through untouched.
fn namespace_key(value: Value, spec: &KeySpec, doc_index: usize) -> Value {
    match (value, spec) {
        (v, KeySpec::FromColumn(_)) => v,
        (Value::Str(s), _) => Value::Str(format!("d{doc_index}_{s}")),
        (v, _) => v,
    }
}

/// Writes one executed shard's file, fsyncs it, and journals its record
/// followed by a non-compared `timing` record.
fn persist_shard(
    shards_dir: &Path,
    writer: &mut JournalWriter,
    shard_idx: usize,
    tables: &[String],
    output: ShardOutput,
) -> Result<ShardRecord, CorpusError> {
    let shard_start = Instant::now();
    let text = render_shard(&output.sections);
    let path = shards_dir.join(shard_file_name(shard_idx));
    std::fs::write(&path, &text).map_err(io_err(&path))?;
    let file = std::fs::File::open(&path).map_err(io_err(&path))?;
    file.sync_data().map_err(io_err(&path))?;
    let record = ShardRecord {
        shard: shard_idx,
        docs: output.docs,
        ok: output.ok,
        retried: output.retried,
        rows: tables
            .iter()
            .zip(&output.sections)
            .map(|(name, (_, lines))| (name.clone(), lines.len()))
            .collect(),
        quarantined: output.quarantined,
        result_hash: fnv64(text.as_bytes()),
    };
    writer.record(&record.to_json_line())?;
    mitra_trace::counter_add!("corpus.docs", record.docs as u64);
    mitra_trace::counter_add!("corpus.quarantined", record.quarantined.len() as u64);
    mitra_trace::counter_add!("corpus.retried", record.retried);
    writer.record(&format!(
        "{{\"kind\": \"timing\", \"shard\": {shard_idx}, \"secs\": {:.6}}}",
        shard_start.elapsed().as_secs_f64()
    ))?;
    Ok(record)
}
