//! Checkpointed corpus migration service (DESIGN.md §12).
//!
//! `mitra-synth` learns one program in seconds and executes it in milliseconds;
//! a corpus-scale migration (many documents sharing a handful of shapes) must
//! therefore synthesize **once per shape** and stream the learned programs over
//! every document.  This module is the long-running service around that split:
//!
//! * **Per-shape program cache** — each document is fingerprinted
//!   ([`mitra_synth::fingerprint`]) and synthesis runs once per distinct
//!   fingerprint, not once per document.
//! * **Deterministic sharding** — documents are processed in fixed-size shards,
//!   fanned across `mitra-pool` in waves, with per-shard result tables and a
//!   canonical-order concatenation, so the assembled tables are byte-identical
//!   at every thread count.
//! * **Checkpointing** — an append-only journal ([`journal`]) records one
//!   fsync'd record per completed shard; [`run::resume`] replays only
//!   unfinished shards and produces artifacts byte-identical to an
//!   uninterrupted run.
//! * **Quarantine** — documents that fail with typed errors (malformed parse,
//!   budget exhaustion, panic-isolated workers) land in a failure ledger with
//!   error text and byte offset; `BudgetExhausted` documents are retried with
//!   deterministically escalating fuel budgets before being quarantined.
//!
//! All comparable artifacts (assembled tables, failure ledger, `summary.json`)
//! use fixed field order and carry **no timings**; wall-clock numbers live in
//! `timings.json` and journal `timing` records, which byte-identity probes
//! ignore.

pub mod journal;
pub mod run;
pub mod shard;

use crate::keys::KeySpec;
use crate::migrate::MigrationError;
use crate::schema::Schema;
use mitra_dsl::{Program, Table};
use mitra_hdt::{Hdt, HdtError};
use mitra_synth::synthesize::SynthConfig;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

pub use journal::{JournalHeader, JournalState, JournalWriter, ShardRecord};
pub use run::{resume, run};

/// 64-bit FNV-1a over raw bytes — the hash used for the corpus identity and the
/// per-shard result hashes recorded in the journal.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The source format every document of a corpus is parsed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DocFormat {
    /// XML via [`mitra_hdt::xml::xml_to_hdt`].
    Xml,
    /// JSON via [`mitra_hdt::json::json_to_hdt`].
    Json,
    /// HTML via [`mitra_hdt::html::html_to_hdt`].
    Html,
}

impl DocFormat {
    /// Parses one document into an HDT.
    pub fn parse(self, text: &str) -> Result<Hdt, HdtError> {
        match self {
            DocFormat::Xml => mitra_hdt::xml::xml_to_hdt(text),
            DocFormat::Json => mitra_hdt::json::json_to_hdt(text),
            DocFormat::Html => mitra_hdt::html::html_to_hdt(text),
        }
    }

    /// Stable lowercase label used in journals and corpus headers.
    pub fn label(self) -> &'static str {
        match self {
            DocFormat::Xml => "xml",
            DocFormat::Json => "json",
            DocFormat::Html => "html",
        }
    }

    /// Inverse of [`DocFormat::label`].
    pub fn from_label(label: &str) -> Option<DocFormat> {
        match label {
            "xml" => Some(DocFormat::Xml),
            "json" => Some(DocFormat::Json),
            "html" => Some(DocFormat::Html),
            _ => None,
        }
    }
}

/// A pure function from a parsed document to the expected output table for one
/// target table — the corpus-side analogue of a per-document input–output
/// example.  Returning `None` marks the shape unsynthesizable for this table.
pub type ExampleOracle = Arc<dyn Fn(&Hdt) -> Option<Table> + Send + Sync>;

/// How the data columns of one corpus table are obtained.
#[derive(Clone)]
pub enum CorpusTableSource {
    /// A DSL program known up front (applied to every shape unchanged).
    Program(Program),
    /// An oracle that builds the expected output for a shape's exemplar
    /// document; a program is synthesized from that example once per shape.
    Oracle(ExampleOracle),
}

impl fmt::Debug for CorpusTableSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusTableSource::Program(p) => f.debug_tuple("Program").field(p).finish(),
            CorpusTableSource::Oracle(_) => f.write_str("Oracle(..)"),
        }
    }
}

/// Description of how to populate one table of the target schema from every
/// document of the corpus.  Mirrors [`crate::migrate::TableTask`].
#[derive(Debug, Clone)]
pub struct CorpusTask {
    /// Name of the target table (must exist in the schema).
    pub table: String,
    /// Where the data columns come from.
    pub source: CorpusTableSource,
    /// Key specifications `(column name, spec)` for the key columns, in schema
    /// order.  Synthetic and foreign keys are namespaced per document (prefix
    /// `d<doc>_`) so they stay injective across the concatenated corpus.
    pub keys: Vec<(String, KeySpec)>,
    /// The schema columns (by name, in order) the program's output maps to.
    pub data_columns: Vec<String>,
}

/// Deterministic retry policy for `BudgetExhausted` documents: fuel-based,
/// never wall-clock, so retry outcomes are identical at any thread count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per document (first try included).
    pub max_attempts: u32,
    /// Fuel multiplier applied on each retry: attempt `k` (1-based) runs with
    /// `max_rows_per_doc * escalation^(k-1)` row fuel.
    pub escalation: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            escalation: 4,
        }
    }
}

/// Knobs of a corpus run.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Documents per shard (the checkpoint granularity).
    pub shard_size: usize,
    /// Worker threads for scanning and shard execution (`0` = process-global).
    pub threads: usize,
    /// Synthesis configuration used for oracle-sourced tables.
    pub synth: SynthConfig,
    /// Row fuel per document execution (`None` = unlimited; retries escalate
    /// from this base).
    pub max_rows_per_doc: Option<u64>,
    /// Retry policy for budget-exhausted documents.
    pub retry: RetryPolicy,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            shard_size: 32,
            threads: 0,
            synth: SynthConfig::default(),
            max_rows_per_doc: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// A full corpus job: target schema, per-table tasks, document format, knobs.
#[derive(Debug, Clone)]
pub struct CorpusJob {
    /// The target relational schema.
    pub schema: Schema,
    /// Per-table population tasks (every document feeds every table).
    pub tasks: Vec<CorpusTask>,
    /// Format every corpus document is parsed as.
    pub format: DocFormat,
    /// Run configuration.
    pub config: CorpusConfig,
}

impl CorpusJob {
    /// Validates schema and tasks without running (mirrors
    /// [`crate::migrate::MigrationPlan::validate`]).
    pub fn validate(&self) -> Result<(), MigrationError> {
        self.schema
            .validate()
            .map_err(|e| MigrationError::InvalidSchema(e.0))?;
        for task in &self.tasks {
            let Some(table) = self.schema.table(&task.table) else {
                return Err(MigrationError::UnknownTable(task.table.clone()));
            };
            for col in task
                .data_columns
                .iter()
                .chain(task.keys.iter().map(|(c, _)| c))
            {
                if table.column_index(col).is_none() {
                    return Err(MigrationError::UnknownColumn {
                        table: task.table.clone(),
                        column: col.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    /// The target table names, in task order (the canonical table order of
    /// every shard file and journal record).
    pub fn table_names(&self) -> Vec<String> {
        self.tasks.iter().map(|t| t.table.clone()).collect()
    }
}

/// Why a document was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The document failed to parse in the corpus format.
    Malformed,
    /// A deterministic fuel budget ran out (after retries).
    Budget,
    /// A worker panicked while processing the document (panic-isolated).
    Panic,
    /// Synthesis failed for the document's shape.
    Synthesis,
}

impl FailureKind {
    /// Stable lowercase label used in the failure ledger and journal.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Malformed => "malformed",
            FailureKind::Budget => "budget-exhausted",
            FailureKind::Panic => "panic",
            FailureKind::Synthesis => "synthesis",
        }
    }

    /// Inverse of [`FailureKind::label`].
    pub fn from_label(label: &str) -> Option<FailureKind> {
        match label {
            "malformed" => Some(FailureKind::Malformed),
            "budget-exhausted" => Some(FailureKind::Budget),
            "panic" => Some(FailureKind::Panic),
            "synthesis" => Some(FailureKind::Synthesis),
            _ => None,
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One quarantined document: identity, typed failure, and how hard we tried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// Document index within the corpus (0-based, comment/blank lines skipped).
    pub doc: usize,
    /// Byte offset of the document's line start within the corpus file.
    pub offset: usize,
    /// Typed failure kind.
    pub kind: FailureKind,
    /// Human-readable error text.
    pub error: String,
    /// Attempts made (>1 only for escalating budget retries).
    pub attempts: u32,
}

/// One document of a parsed corpus: index, byte offset of its line start, text.
#[derive(Debug, Clone, Copy)]
pub struct CorpusDoc<'a> {
    /// 0-based document index (comment and blank lines are not documents).
    pub index: usize,
    /// Byte offset of the line start within the corpus text.
    pub offset: usize,
    /// The document source (one line).
    pub text: &'a str,
}

/// Key/value pairs of a `#mitra-corpus` header line.
#[derive(Debug, Clone, Default)]
pub struct CorpusHeader {
    /// Pairs in header order.
    pub pairs: Vec<(String, String)>,
}

impl CorpusHeader {
    /// Looks up a header key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Splits corpus text into documents: one document per line; blank lines and
/// `#`-prefixed lines are skipped; an optional leading `#mitra-corpus v1 k=v…`
/// line is parsed into a [`CorpusHeader`].  Offsets are byte offsets of line
/// starts, so ledger entries point back into the corpus file.
pub fn parse_corpus_text(text: &str) -> (CorpusHeader, Vec<CorpusDoc<'_>>) {
    let mut header = CorpusHeader::default();
    let mut docs = Vec::new();
    let mut offset = 0usize;
    let mut first_line = true;
    for line in text.split('\n') {
        let start = offset;
        offset += line.len() + 1;
        let trimmed = line.trim_end_matches('\r');
        if first_line && trimmed.starts_with("#mitra-corpus") {
            for token in trimmed.split_whitespace().skip(1) {
                if let Some((k, v)) = token.split_once('=') {
                    header.pairs.push((k.to_string(), v.to_string()));
                }
            }
            first_line = false;
            continue;
        }
        first_line = false;
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        docs.push(CorpusDoc {
            index: docs.len(),
            offset: start,
            text: trimmed,
        });
    }
    (header, docs)
}

/// Errors of the corpus service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// A filesystem operation failed.
    Io {
        /// Path involved.
        path: String,
        /// Rendered `std::io::Error`.
        error: String,
    },
    /// The corpus text or its header is unusable.
    Corpus(String),
    /// The checkpoint journal is missing, corrupt, or inconsistent with the
    /// corpus being resumed.
    Journal(String),
    /// The job failed validation against its schema.
    Plan(MigrationError),
    /// A shard worker panicked (e.g. an injected `MITRA_FAULT`); completed
    /// shards of the wave were journaled first, so `resume` can continue.
    ShardPanicked {
        /// The shard whose worker panicked.
        shard: usize,
        /// The panic message.
        message: String,
    },
}

impl fmt::Display for CorpusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusError::Io { path, error } => write!(f, "io error on {path}: {error}"),
            CorpusError::Corpus(m) => write!(f, "invalid corpus: {m}"),
            CorpusError::Journal(m) => write!(f, "journal error: {m}"),
            CorpusError::Plan(e) => write!(f, "invalid corpus job: {e}"),
            CorpusError::ShardPanicked { shard, message } => {
                write!(f, "shard {shard} worker panicked: {message}")
            }
        }
    }
}

impl std::error::Error for CorpusError {}

/// The result of a corpus run: counts for the comparable summary plus
/// wall-clock timings (reported separately, never in comparable payloads).
#[derive(Debug, Clone)]
pub struct CorpusReport {
    /// Documents in the corpus.
    pub docs: usize,
    /// Documents that produced rows in every table.
    pub ok_docs: usize,
    /// Total shards.
    pub shards: usize,
    /// Distinct document shapes observed.
    pub shapes: usize,
    /// `learn_transformation` calls made (once per shape × oracle table).
    pub programs_synthesized: usize,
    /// Shards skipped on resume because the journal already recorded them.
    pub resumed_shards: usize,
    /// Escalating-budget retry attempts made.
    pub retried: u64,
    /// Quarantined documents, in document order.
    pub quarantined: Vec<QuarantineRecord>,
    /// Rows per table `(name, rows)`, in task order.
    pub table_rows: Vec<(String, usize)>,
    /// Constraint violations in the assembled database.
    pub violations: usize,
    /// Wall clock of the scan + synthesis passes.
    pub synth_wall: Duration,
    /// Wall clock of the shard-execution pass.
    pub exec_wall: Duration,
    /// Wall clock of the whole run.
    pub wall: Duration,
}

impl CorpusReport {
    /// Total rows across tables.
    pub fn total_rows(&self) -> usize {
        self.table_rows.iter().map(|(_, n)| n).sum()
    }

    /// The comparable summary: fixed field order, **no timings** and no
    /// resume-dependent fields, so an interrupted+resumed run renders the
    /// byte-identical summary of an uninterrupted run.
    pub fn summary_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"docs\": {},\n", self.docs));
        out.push_str(&format!("  \"ok_docs\": {},\n", self.ok_docs));
        out.push_str(&format!("  \"quarantined\": {},\n", self.quarantined.len()));
        out.push_str(&format!("  \"retried\": {},\n", self.retried));
        out.push_str(&format!("  \"shards\": {},\n", self.shards));
        out.push_str(&format!("  \"shapes\": {},\n", self.shapes));
        out.push_str(&format!(
            "  \"programs_synthesized\": {},\n",
            self.programs_synthesized
        ));
        out.push_str("  \"tables\": [");
        for (i, (name, rows)) in self.table_rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{}, {rows}]", journal::json_string(name)));
        }
        out.push_str("],\n");
        out.push_str(&format!("  \"violations\": {}\n", self.violations));
        out.push_str("}\n");
        out
    }

    /// The non-compared timing block: wall clocks, throughput rates, and the
    /// resume-dependent shard count.
    pub fn timings_json(&self) -> String {
        let wall = self.wall.as_secs_f64().max(f64::EPSILON);
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"wall_secs\": {:.6},\n",
            self.wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"synth_secs\": {:.6},\n",
            self.synth_wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"exec_secs\": {:.6},\n",
            self.exec_wall.as_secs_f64()
        ));
        out.push_str(&format!(
            "  \"docs_per_sec\": {:.3},\n",
            self.docs as f64 / wall
        ));
        out.push_str(&format!(
            "  \"rows_per_sec\": {:.3},\n",
            self.total_rows() as f64 / wall
        ));
        out.push_str(&format!("  \"resumed_shards\": {}\n", self.resumed_shards));
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_text_parsing_skips_comments_and_tracks_offsets() {
        let text = "#mitra-corpus v1 format=xml seed=7\n<a/>\n\n# note\n<b>x</b>\n";
        let (header, docs) = parse_corpus_text(text);
        assert_eq!(header.get("format"), Some("xml"));
        assert_eq!(header.get("seed"), Some("7"));
        assert_eq!(header.get("missing"), None);
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].index, 0);
        assert_eq!(docs[0].text, "<a/>");
        assert_eq!(&text[docs[0].offset..docs[0].offset + 4], "<a/>");
        assert_eq!(docs[1].index, 1);
        assert_eq!(&text[docs[1].offset..docs[1].offset + 8], "<b>x</b>");
    }

    #[test]
    fn failure_kind_labels_round_trip() {
        for kind in [
            FailureKind::Malformed,
            FailureKind::Budget,
            FailureKind::Panic,
            FailureKind::Synthesis,
        ] {
            assert_eq!(FailureKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(FailureKind::from_label("nope"), None);
    }

    #[test]
    fn doc_format_labels_round_trip() {
        for f in [DocFormat::Xml, DocFormat::Json, DocFormat::Html] {
            assert_eq!(DocFormat::from_label(f.label()), Some(f));
        }
        assert!(DocFormat::Xml.parse("<a>1</a>").is_ok());
        assert!(DocFormat::Xml.parse("<a>1").is_err());
    }

    #[test]
    fn summary_json_has_fixed_field_order_and_no_timings() {
        let report = CorpusReport {
            docs: 10,
            ok_docs: 9,
            shards: 2,
            shapes: 1,
            programs_synthesized: 2,
            resumed_shards: 1,
            retried: 3,
            quarantined: vec![QuarantineRecord {
                doc: 4,
                offset: 123,
                kind: FailureKind::Malformed,
                error: "boom".into(),
                attempts: 1,
            }],
            table_rows: vec![("customer".into(), 20), ("purchase".into(), 31)],
            violations: 0,
            synth_wall: Duration::from_millis(5),
            exec_wall: Duration::from_millis(7),
            wall: Duration::from_millis(13),
        };
        let summary = report.summary_json();
        assert!(
            !summary.contains("secs"),
            "no timings in comparable payload"
        );
        assert!(!summary.contains("resumed"), "no resume-dependent fields");
        let docs_pos = summary.find("\"docs\"").unwrap();
        let tables_pos = summary.find("\"tables\"").unwrap();
        let violations_pos = summary.find("\"violations\"").unwrap();
        assert!(docs_pos < tables_pos && tables_pos < violations_pos);
        assert!(summary.contains("[\"customer\", 20], [\"purchase\", 31]"));
        let timings = report.timings_json();
        assert!(timings.contains("\"docs_per_sec\""));
        assert!(timings.contains("\"resumed_shards\": 1"));
    }
}
