//! Per-shard result files (`shards/shard-NNNNNN.tbl`).
//!
//! Each completed shard persists its rows to one file so that final tables are
//! assembled the same way on every path — fresh run, crash-resume, any thread
//! count: concatenate the shard files in shard order.  The format is
//! line-oriented CSV grouped into `#table <name>` sections, one section per
//! task table **in task order** (present even when empty, so the section
//! layout is a pure function of the job).  Cells use exactly the
//! `Table::to_csv` escaping, and documents are single lines of the corpus, so
//! cell text can never contain a raw newline that would break the framing.

use super::CorpusError;
use mitra_dsl::Value;

/// The file name of shard `i` (fixed width so lexicographic = numeric order).
pub fn shard_file_name(shard: usize) -> String {
    format!("shard-{shard:06}.tbl")
}

/// Escapes one CSV cell exactly like `mitra_dsl::Table::to_csv`.
pub(crate) fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders one row of values as a CSV line.
pub(crate) fn render_row(row: &[Value]) -> String {
    let cells: Vec<String> = row.iter().map(|v| csv_escape(&v.render())).collect();
    cells.join(",")
}

/// Renders a shard's sections (`(table name, csv lines)` in task order) as the
/// shard file text.
pub fn render_shard(sections: &[(String, Vec<String>)]) -> String {
    let mut out = String::new();
    for (table, lines) in sections {
        out.push_str("#table ");
        out.push_str(table);
        out.push('\n');
        for line in lines {
            out.push_str(line);
            out.push('\n');
        }
    }
    out
}

/// Parses a shard file back into its sections.
pub fn parse_shard(text: &str) -> Result<Vec<(String, Vec<String>)>, CorpusError> {
    let mut sections: Vec<(String, Vec<String>)> = Vec::new();
    for line in text.lines() {
        if let Some(name) = line.strip_prefix("#table ") {
            sections.push((name.to_string(), Vec::new()));
        } else if let Some((_, lines)) = sections.last_mut() {
            lines.push(line.to_string());
        } else {
            return Err(CorpusError::Corpus(format!(
                "shard file row before any #table section: {line:?}"
            )));
        }
    }
    Ok(sections)
}

/// Splits one CSV line into cell strings, undoing [`csv_escape`].  Quoted
/// cells may contain commas and doubled quotes; raw newlines cannot occur
/// (documents are single corpus lines).
pub fn split_csv_line(line: &str) -> Vec<String> {
    let mut cells = Vec::new();
    let mut cell = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cell.push('"');
                } else {
                    in_quotes = false;
                }
            } else {
                cell.push(c);
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => cells.push(std::mem::take(&mut cell)),
                c => cell.push(c),
            }
        }
    }
    cells.push(cell);
    cells
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_file_names_sort_numerically() {
        assert_eq!(shard_file_name(0), "shard-000000.tbl");
        assert_eq!(shard_file_name(123), "shard-000123.tbl");
        assert!(shard_file_name(9) < shard_file_name(10));
    }

    #[test]
    fn render_and_parse_round_trip() {
        let sections = vec![
            (
                "customer".to_string(),
                vec!["d0_1,alice,2".to_string(), "d1_1,\"a,b\",3".to_string()],
            ),
            ("purchase".to_string(), Vec::new()),
        ];
        let text = render_shard(&sections);
        assert_eq!(parse_shard(&text).unwrap(), sections);
    }

    #[test]
    fn empty_sections_are_preserved() {
        let sections = vec![("a".to_string(), Vec::new()), ("b".to_string(), Vec::new())];
        let parsed = parse_shard(&render_shard(&sections)).unwrap();
        assert_eq!(parsed, sections);
    }

    #[test]
    fn rows_before_a_section_are_rejected() {
        assert!(parse_shard("x,y\n#table t\n").is_err());
    }

    #[test]
    fn csv_round_trip_matches_table_escaping() {
        let row = vec![
            Value::Str("x,y".into()),
            Value::Str("say \"hi\"".into()),
            Value::Int(3),
            Value::Null,
        ];
        let line = render_row(&row);
        assert_eq!(line, "\"x,y\",\"say \"\"hi\"\"\",3,");
        assert_eq!(split_csv_line(&line), vec!["x,y", "say \"hi\"", "3", ""]);
    }
}
