//! A small in-memory relational database substrate.
//!
//! The migration engine needs somewhere to put the rows it produces and a way to check
//! primary/foreign-key constraints, count rows per table (the `#Rows` statistic of
//! Table 2), and dump the result.  This module provides exactly that: a map from table
//! name to a [`Table`] of typed values governed by a [`Schema`].

use crate::schema::{Schema, TableSchema};
use mitra_dsl::{Row, Table, Value};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// An in-memory relational database: a schema plus one value table per schema table.
#[derive(Debug, Clone)]
pub struct Database {
    /// The schema this database conforms to.
    pub schema: Schema,
    tables: HashMap<String, Table>,
}

/// Constraint violations detected by [`Database::check_constraints`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConstraintViolation {
    /// Two rows share the same primary key in the named table.
    DuplicatePrimaryKey {
        /// Table with the duplicate key.
        table: String,
        /// The rendered key values.
        key: Vec<String>,
    },
    /// A primary key column holds NULL.
    NullInPrimaryKey {
        /// Table with the NULL key.
        table: String,
    },
    /// A foreign key references a key that does not exist in the referenced table.
    DanglingForeignKey {
        /// The referencing table.
        table: String,
        /// The referenced table.
        referenced_table: String,
        /// The rendered key values that failed to resolve.
        key: Vec<String>,
    },
    /// A row has the wrong number of columns for its table.
    ArityMismatch {
        /// Offending table.
        table: String,
    },
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstraintViolation::DuplicatePrimaryKey { table, key } => {
                write!(f, "duplicate primary key {key:?} in table {table}")
            }
            ConstraintViolation::NullInPrimaryKey { table } => {
                write!(f, "NULL primary key value in table {table}")
            }
            ConstraintViolation::DanglingForeignKey {
                table,
                referenced_table,
                key,
            } => write!(
                f,
                "foreign key {key:?} in {table} has no match in {referenced_table}"
            ),
            ConstraintViolation::ArityMismatch { table } => {
                write!(f, "row arity mismatch in table {table}")
            }
        }
    }
}

impl Database {
    /// Creates an empty database for the given schema.
    pub fn new(schema: Schema) -> Self {
        let tables = schema
            .tables
            .iter()
            .map(|t| (t.name.clone(), Table::new(t.column_names())))
            .collect();
        Database { schema, tables }
    }

    /// The populated table with the given name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Inserts a row into a table.  Returns false when the table does not exist or the
    /// row arity does not match the schema.
    pub fn insert(&mut self, table: &str, row: Row) -> bool {
        let Some(schema) = self.schema.table(table) else {
            return false;
        };
        if row.len() != schema.arity() {
            return false;
        }
        self.tables
            .get_mut(table)
            .map(|t| t.rows.push(row))
            .is_some()
    }

    /// Replaces the entire contents of a table.
    pub fn set_table(&mut self, table: &str, rows: Table) -> bool {
        let Some(schema) = self.schema.table(table) else {
            return false;
        };
        if rows.rows.iter().any(|r| r.len() != schema.arity()) {
            return false;
        }
        let mut named = Table::new(schema.column_names());
        named.rows = rows.rows;
        self.tables.insert(table.to_string(), named);
        true
    }

    /// Number of rows in one table.
    pub fn row_count(&self, table: &str) -> usize {
        self.tables.get(table).map(Table::len).unwrap_or(0)
    }

    /// Total number of rows across all tables (the `#Rows` statistic of Table 2).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// Checks all primary- and foreign-key constraints, returning every violation.
    pub fn check_constraints(&self) -> Vec<ConstraintViolation> {
        let mut violations = Vec::new();
        for ts in &self.schema.tables {
            let Some(table) = self.tables.get(&ts.name) else {
                continue;
            };
            // Arity.
            if table.rows.iter().any(|r| r.len() != ts.arity()) {
                violations.push(ConstraintViolation::ArityMismatch {
                    table: ts.name.clone(),
                });
                continue;
            }
            // Primary key uniqueness / non-null.
            if !ts.primary_key.is_empty() {
                let idx: Vec<usize> = ts
                    .primary_key
                    .iter()
                    .filter_map(|c| ts.column_index(c))
                    .collect();
                let mut seen: HashSet<Vec<String>> = HashSet::with_capacity(table.len());
                for row in &table.rows {
                    let key: Vec<String> = idx.iter().map(|&i| row[i].render()).collect();
                    if idx.iter().any(|&i| row[i].is_null()) {
                        violations.push(ConstraintViolation::NullInPrimaryKey {
                            table: ts.name.clone(),
                        });
                    }
                    if !seen.insert(key.clone()) {
                        violations.push(ConstraintViolation::DuplicatePrimaryKey {
                            table: ts.name.clone(),
                            key,
                        });
                    }
                }
            }
            // Foreign keys.
            for fk in &ts.foreign_keys {
                let Some(ref_schema) = self.schema.table(&fk.referenced_table) else {
                    continue;
                };
                let Some(ref_table) = self.tables.get(&fk.referenced_table) else {
                    continue;
                };
                let ref_idx: Vec<usize> = fk
                    .referenced_columns
                    .iter()
                    .filter_map(|c| ref_schema.column_index(c))
                    .collect();
                let referenced_keys: HashSet<Vec<String>> = ref_table
                    .rows
                    .iter()
                    .map(|r| ref_idx.iter().map(|&i| r[i].render()).collect())
                    .collect();
                let idx: Vec<usize> = fk
                    .columns
                    .iter()
                    .filter_map(|c| ts.column_index(c))
                    .collect();
                for row in &table.rows {
                    let key: Vec<String> = idx.iter().map(|&i| row[i].render()).collect();
                    // NULL foreign keys are allowed (no reference).
                    if idx.iter().any(|&i| row[i].is_null()) {
                        continue;
                    }
                    if !referenced_keys.contains(&key) {
                        violations.push(ConstraintViolation::DanglingForeignKey {
                            table: ts.name.clone(),
                            referenced_table: fk.referenced_table.clone(),
                            key,
                        });
                    }
                }
            }
        }
        violations
    }

    /// Simple scan query: rows of `table` where column `column` equals `value`.
    pub fn select_where(&self, table: &str, column: &str, value: &Value) -> Vec<Row> {
        let Some(ts) = self.schema.table(table) else {
            return Vec::new();
        };
        let Some(idx) = ts.column_index(column) else {
            return Vec::new();
        };
        self.tables
            .get(table)
            .map(|t| {
                t.rows
                    .iter()
                    .filter(|r| &r[idx] == value)
                    .cloned()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Looks up a single row by primary key.
    pub fn lookup(&self, table: &str, key: &[Value]) -> Option<&Row> {
        let ts = self.schema.table(table)?;
        let idx: Vec<usize> = ts
            .primary_key
            .iter()
            .filter_map(|c| ts.column_index(c))
            .collect();
        if idx.len() != key.len() {
            return None;
        }
        self.tables
            .get(table)?
            .rows
            .iter()
            .find(|r| idx.iter().zip(key).all(|(&i, v)| &r[i] == v))
    }

    /// Helper to fetch a table's schema.
    pub fn table_schema(&self, name: &str) -> Option<&TableSchema> {
        self.schema.table(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema, TableSchema};

    fn schema() -> Schema {
        Schema::new()
            .with_table(
                TableSchema::new("person", vec![Column::integer("pid"), Column::text("name")])
                    .with_primary_key(&["pid"]),
            )
            .with_table(
                TableSchema::new(
                    "friendship",
                    vec![Column::integer("pid"), Column::integer("fid")],
                )
                .with_primary_key(&["pid", "fid"])
                .with_foreign_key(&["pid"], "person", &["pid"])
                .with_foreign_key(&["fid"], "person", &["pid"]),
            )
    }

    fn populated() -> Database {
        let mut db = Database::new(schema());
        db.insert("person", vec![Value::int(1), Value::str("Alice")]);
        db.insert("person", vec![Value::int(2), Value::str("Bob")]);
        db.insert("friendship", vec![Value::int(1), Value::int(2)]);
        db
    }

    #[test]
    fn insert_and_count() {
        let db = populated();
        assert_eq!(db.row_count("person"), 2);
        assert_eq!(db.total_rows(), 3);
        assert!(db.table("person").is_some());
    }

    #[test]
    fn insert_rejects_bad_arity_and_unknown_table() {
        let mut db = Database::new(schema());
        assert!(!db.insert("person", vec![Value::int(1)]));
        assert!(!db.insert("nope", vec![Value::int(1)]));
    }

    #[test]
    fn constraints_hold_for_consistent_data() {
        assert!(populated().check_constraints().is_empty());
    }

    #[test]
    fn duplicate_primary_key_detected() {
        let mut db = populated();
        db.insert("person", vec![Value::int(1), Value::str("Clone")]);
        let v = db.check_constraints();
        assert!(v
            .iter()
            .any(|x| matches!(x, ConstraintViolation::DuplicatePrimaryKey { table, .. } if table == "person")));
    }

    #[test]
    fn dangling_foreign_key_detected() {
        let mut db = populated();
        db.insert("friendship", vec![Value::int(1), Value::int(99)]);
        let v = db.check_constraints();
        assert!(v
            .iter()
            .any(|x| matches!(x, ConstraintViolation::DanglingForeignKey { referenced_table, .. } if referenced_table == "person")));
    }

    #[test]
    fn null_primary_key_detected() {
        let mut db = populated();
        db.insert("person", vec![Value::Null, Value::str("Ghost")]);
        let v = db.check_constraints();
        assert!(v.iter().any(
            |x| matches!(x, ConstraintViolation::NullInPrimaryKey { table } if table == "person")
        ));
    }

    #[test]
    fn select_and_lookup() {
        let db = populated();
        let rows = db.select_where("person", "name", &Value::str("Alice"));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::int(1));
        assert!(db.lookup("person", &[Value::int(2)]).is_some());
        assert!(db.lookup("person", &[Value::int(42)]).is_none());
    }

    #[test]
    fn set_table_replaces_contents() {
        let mut db = populated();
        let mut t = Table::new(vec!["pid".into(), "name".into()]);
        t.push(vec![Value::int(7), Value::str("Grace")]);
        assert!(db.set_table("person", t));
        assert_eq!(db.row_count("person"), 1);
        // Arity mismatch rejected.
        let mut bad = Table::new(vec!["pid".into()]);
        bad.push(vec![Value::int(7)]);
        assert!(!db.set_table("person", bad));
    }
}
