//! Relational schema model: tables, columns, primary keys and foreign keys.

use std::fmt;

/// Logical column types for the target relational schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// Arbitrary text.
    Text,
    /// 64-bit integer.
    Integer,
    /// Double-precision float.
    Real,
    /// Boolean.
    Boolean,
}

impl ColumnType {
    /// SQL type name used by the dump backend.
    pub fn sql_name(self) -> &'static str {
        match self {
            ColumnType::Text => "TEXT",
            ColumnType::Integer => "INTEGER",
            ColumnType::Real => "REAL",
            ColumnType::Boolean => "BOOLEAN",
        }
    }
}

/// A column of a relational table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

impl Column {
    /// Creates a text column.
    pub fn text(name: impl Into<String>) -> Self {
        Column {
            name: name.into(),
            ty: ColumnType::Text,
        }
    }

    /// Creates an integer column.
    pub fn integer(name: impl Into<String>) -> Self {
        Column {
            name: name.into(),
            ty: ColumnType::Integer,
        }
    }

    /// Creates a real-valued column.
    pub fn real(name: impl Into<String>) -> Self {
        Column {
            name: name.into(),
            ty: ColumnType::Real,
        }
    }
}

/// A foreign-key constraint: `columns` of this table reference `referenced_columns` of
/// `referenced_table`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    /// Referencing columns (in this table).
    pub columns: Vec<String>,
    /// The referenced table.
    pub referenced_table: String,
    /// The referenced columns (normally the referenced table's primary key).
    pub referenced_columns: Vec<String>,
}

/// Schema of a single relational table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in order.
    pub columns: Vec<Column>,
    /// Names of the primary-key columns (may be empty when the table has no key).
    pub primary_key: Vec<String>,
    /// Foreign-key constraints.
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableSchema {
    /// Creates a table schema with no keys.
    pub fn new(name: impl Into<String>, columns: Vec<Column>) -> Self {
        TableSchema {
            name: name.into(),
            columns,
            primary_key: Vec::new(),
            foreign_keys: Vec::new(),
        }
    }

    /// Sets the primary key columns (builder style).
    pub fn with_primary_key(mut self, cols: &[&str]) -> Self {
        self.primary_key = cols.iter().map(|c| c.to_string()).collect();
        self
    }

    /// Adds a foreign key (builder style).
    pub fn with_foreign_key(mut self, columns: &[&str], table: &str, referenced: &[&str]) -> Self {
        self.foreign_keys.push(ForeignKey {
            columns: columns.iter().map(|c| c.to_string()).collect(),
            referenced_table: table.to_string(),
            referenced_columns: referenced.iter().map(|c| c.to_string()).collect(),
        });
        self
    }

    /// Column names in order.
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name.clone()).collect()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }
}

/// A full database schema.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    /// Tables in creation order.
    pub tables: Vec<TableSchema>,
}

impl Schema {
    /// Creates an empty schema.
    pub fn new() -> Self {
        Schema { tables: Vec::new() }
    }

    /// Adds a table (builder style).
    pub fn with_table(mut self, table: TableSchema) -> Self {
        self.tables.push(table);
        self
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Option<&TableSchema> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Total number of columns across all tables (the `#Cols` statistic of Table 2).
    pub fn total_columns(&self) -> usize {
        self.tables.iter().map(TableSchema::arity).sum()
    }

    /// Validates structural sanity: unique table names, unique column names, key
    /// columns exist, foreign keys reference existing tables/columns with matching
    /// arity.
    pub fn validate(&self) -> Result<(), SchemaError> {
        let mut names = Vec::new();
        for t in &self.tables {
            if names.contains(&t.name) {
                return Err(SchemaError(format!("duplicate table name `{}`", t.name)));
            }
            names.push(t.name.clone());
            let mut cols = Vec::new();
            for c in &t.columns {
                if cols.contains(&c.name) {
                    return Err(SchemaError(format!(
                        "duplicate column `{}` in table `{}`",
                        c.name, t.name
                    )));
                }
                cols.push(c.name.clone());
            }
            for pk in &t.primary_key {
                if t.column_index(pk).is_none() {
                    return Err(SchemaError(format!(
                        "primary key column `{pk}` missing from table `{}`",
                        t.name
                    )));
                }
            }
            for fk in &t.foreign_keys {
                let referenced = self.table(&fk.referenced_table).ok_or_else(|| {
                    SchemaError(format!(
                        "foreign key in `{}` references unknown table `{}`",
                        t.name, fk.referenced_table
                    ))
                })?;
                if fk.columns.len() != fk.referenced_columns.len() {
                    return Err(SchemaError(format!(
                        "foreign key in `{}` has mismatched column counts",
                        t.name
                    )));
                }
                for c in &fk.columns {
                    if t.column_index(c).is_none() {
                        return Err(SchemaError(format!(
                            "foreign key column `{c}` missing from table `{}`",
                            t.name
                        )));
                    }
                }
                for c in &fk.referenced_columns {
                    if referenced.column_index(c).is_none() {
                        return Err(SchemaError(format!(
                            "foreign key in `{}` references missing column `{c}` of `{}`",
                            t.name, fk.referenced_table
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Schema validation error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError(pub String);

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schema error: {}", self.0)
    }
}

impl std::error::Error for SchemaError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn person_friend_schema() -> Schema {
        Schema::new()
            .with_table(
                TableSchema::new("person", vec![Column::integer("pid"), Column::text("name")])
                    .with_primary_key(&["pid"]),
            )
            .with_table(
                TableSchema::new(
                    "friendship",
                    vec![
                        Column::integer("pid"),
                        Column::integer("fid"),
                        Column::integer("years"),
                    ],
                )
                .with_primary_key(&["pid", "fid"])
                .with_foreign_key(&["pid"], "person", &["pid"])
                .with_foreign_key(&["fid"], "person", &["pid"]),
            )
    }

    #[test]
    fn valid_schema_passes_validation() {
        person_friend_schema().validate().unwrap();
        assert_eq!(person_friend_schema().total_columns(), 5);
    }

    #[test]
    fn duplicate_table_names_rejected() {
        let s = Schema::new()
            .with_table(TableSchema::new("t", vec![Column::text("a")]))
            .with_table(TableSchema::new("t", vec![Column::text("b")]));
        assert!(s.validate().is_err());
    }

    #[test]
    fn missing_pk_column_rejected() {
        let s = Schema::new()
            .with_table(TableSchema::new("t", vec![Column::text("a")]).with_primary_key(&["nope"]));
        assert!(s.validate().is_err());
    }

    #[test]
    fn dangling_foreign_key_rejected() {
        let s = Schema::new().with_table(
            TableSchema::new("t", vec![Column::text("a")]).with_foreign_key(
                &["a"],
                "missing",
                &["x"],
            ),
        );
        assert!(s.validate().is_err());
    }

    #[test]
    fn fk_arity_mismatch_rejected() {
        let s = Schema::new()
            .with_table(TableSchema::new(
                "p",
                vec![Column::text("x"), Column::text("y")],
            ))
            .with_table(
                TableSchema::new("c", vec![Column::text("a")]).with_foreign_key(
                    &["a"],
                    "p",
                    &["x", "y"],
                ),
            );
        assert!(s.validate().is_err());
    }

    #[test]
    fn lookups_work() {
        let s = person_friend_schema();
        assert!(s.table("person").is_some());
        assert!(s.table("nope").is_none());
        assert_eq!(
            s.table("friendship").unwrap().column_index("years"),
            Some(2)
        );
        assert_eq!(ColumnType::Integer.sql_name(), "INTEGER");
    }
}
