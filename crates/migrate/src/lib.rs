//! # mitra-migrate — full-database migration (Section 6)
//!
//! The synthesis algorithm of `mitra-synth` learns a program for *one* relational
//! table.  Real migrations target a whole database: the paper handles this by invoking
//! the synthesizer once per target table and post-processing the programs so that
//! primary- and foreign-key constraints hold.  This crate implements:
//!
//! * [`schema`] — relational schema descriptions (tables, columns, primary keys,
//!   foreign keys) plus validation of a populated database against its schema;
//! * [`database`] — a small in-memory relational database substrate (insert, scan,
//!   lookup by key) used to hold migration results and check constraints;
//! * [`keys`] — the injective key-generation scheme of Section 6: a synthetic primary
//!   key is derived from the identities of the tree nodes a row was built from, and a
//!   foreign key re-derives the referenced row's node identities through learned node
//!   extractors;
//! * [`migrate`] — the per-table orchestration: synthesize (or accept) one program per
//!   table, execute them with the optimized engine, generate keys, and assemble the
//!   final database;
//! * [`corpus`] — the checkpointed corpus migration service: per-shape program reuse,
//!   deterministic shard waves, a crash-resume journal and a quarantine ledger;
//! * [`sql`] — a SQL dump back-end (DDL `CREATE TABLE` + `INSERT` statements);
//! * [`query`] — a small SQL `SELECT` engine over the migrated database, closing the
//!   loop on the paper's motivation that migrated data is meant to be queried
//!   relationally.

pub mod corpus;
pub mod database;
pub mod keys;
pub mod migrate;
pub mod query;
pub mod schema;
pub mod sql;

pub use corpus::{
    CorpusConfig, CorpusError, CorpusJob, CorpusReport, CorpusTableSource, CorpusTask, DocFormat,
    FailureKind, QuarantineRecord, RetryPolicy,
};
pub use database::Database;
pub use keys::KeySpec;
pub use migrate::{
    DegradationSummary, ExecutionProfile, MigrationError, MigrationPlan, MigrationReport,
    TableExecProfile, TableOutcome, TableReport, TableSource, TableTask,
};
pub use query::{run_query, QueryError};
pub use schema::{Column, ColumnType, ForeignKey, Schema, TableSchema};
pub use sql::dump_sql;
