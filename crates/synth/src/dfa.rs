//! Deterministic finite automata over node-set states (Figure 9).
//!
//! For a single input–output example, the automaton's states are *sets of HDT nodes*,
//! its alphabet is the set of column-extractor operators instantiated with the tags and
//! positions occurring in the tree, and there is a transition `q_s --op--> q_s'`
//! whenever applying `op` to the node set `s` yields the (non-empty) node set `s'`.
//! A state is accepting when its node set covers the target output column.  A word
//! accepted by the automaton is therefore exactly a column-extraction program that is
//! consistent with the example (Theorem 1).
//!
//! The automaton for several examples is the intersection (product) of the per-example
//! automata.  Because all automata share the same *symbolic* alphabet, the product is
//! taken over [`ExtractorStep`] letters.

use mitra_dsl::ast::ExtractorStep;
use mitra_dsl::Value;
use mitra_hdt::{Hdt, NodeId, TagId};
use std::collections::{HashMap, HashSet, VecDeque};

/// Limits applied while constructing and enumerating automata.
#[derive(Debug, Clone, Copy)]
pub struct DfaLimits {
    /// Maximum number of states explored per automaton.
    pub max_states: usize,
    /// Maximum word (program) length considered during construction and enumeration.
    pub max_word_len: usize,
}

impl Default for DfaLimits {
    fn default() -> Self {
        DfaLimits {
            max_states: 4096,
            max_word_len: 6,
        }
    }
}

/// A DFA whose transitions are labelled with column-extractor steps.
///
/// States are dense indices; `0` is always the initial state.
#[derive(Debug, Clone)]
pub struct Dfa {
    /// `transitions[q]` maps a letter to the successor state.
    transitions: Vec<HashMap<ExtractorStep, usize>>,
    /// Whether each state is accepting.
    accepting: Vec<bool>,
    /// Whether construction hit a limit (the language may then be under-approximated).
    pub truncated: bool,
}

impl Dfa {
    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.transitions.len()
    }

    /// True if any state is accepting.
    pub fn has_accepting_state(&self) -> bool {
        self.accepting.iter().any(|b| *b)
    }

    /// Whether the given word is accepted.
    pub fn accepts(&self, word: &[ExtractorStep]) -> bool {
        let mut q = 0usize;
        for step in word {
            match self.transitions[q].get(step) {
                Some(&next) => q = next,
                None => return false,
            }
        }
        self.accepting[q]
    }

    /// Builds the DFA for one example: the tree `T` and the target column values.
    ///
    /// The target column is covered by a node set `s` when every value in the column
    /// equals the data of some node in `s` (the `s ⊇ column(R, i)` side condition of
    /// rule (5) in Figure 9).
    pub fn construct(tree: &Hdt, column: &[Value], limits: DfaLimits) -> Dfa {
        // Alphabet: every children/pchildren/descendants letter instantiated from the tree.
        let alphabet = alphabet_of(tree);

        let mut states: Vec<Vec<NodeId>> = Vec::new();
        let mut index: HashMap<Vec<NodeId>, usize> = HashMap::new();
        let mut transitions: Vec<HashMap<ExtractorStep, usize>> = Vec::new();
        let mut depth_of: Vec<usize> = Vec::new();
        let mut truncated = false;

        let initial = canonical(vec![tree.root()]);
        index.insert(initial.clone(), 0);
        states.push(initial);
        transitions.push(HashMap::new());
        depth_of.push(0);

        let mut queue = VecDeque::new();
        queue.push_back(0usize);

        while let Some(q) = queue.pop_front() {
            if depth_of[q] >= limits.max_word_len {
                continue;
            }
            let current = states[q].clone();
            for letter in &alphabet {
                let next_set = apply_step(tree, &current, letter);
                if next_set.is_empty() {
                    continue;
                }
                let next_set = canonical(next_set);
                let next_q = match index.get(&next_set) {
                    Some(&i) => i,
                    None => {
                        if states.len() >= limits.max_states {
                            truncated = true;
                            continue;
                        }
                        let i = states.len();
                        index.insert(next_set.clone(), i);
                        states.push(next_set);
                        transitions.push(HashMap::new());
                        depth_of.push(depth_of[q] + 1);
                        queue.push_back(i);
                        i
                    }
                };
                transitions[q].insert(*letter, next_q);
            }
        }

        let accepting = states
            .iter()
            .map(|s| covers_column(tree, s, column))
            .collect();

        Dfa {
            transitions,
            accepting,
            truncated,
        }
    }

    /// Standard product-automaton intersection: a word is accepted iff it is accepted
    /// by both inputs.
    pub fn intersect(&self, other: &Dfa) -> Dfa {
        let mut index: HashMap<(usize, usize), usize> = HashMap::new();
        let mut transitions: Vec<HashMap<ExtractorStep, usize>> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut pairs: Vec<(usize, usize)> = Vec::new();

        index.insert((0, 0), 0);
        pairs.push((0, 0));
        transitions.push(HashMap::new());
        accepting.push(self.accepting[0] && other.accepting[0]);

        let mut queue = VecDeque::new();
        queue.push_back(0usize);
        while let Some(q) = queue.pop_front() {
            let (a, b) = pairs[q];
            // Only letters present in both outgoing maps can fire in the product.
            let steps: Vec<ExtractorStep> = self.transitions[a]
                .keys()
                .filter(|k| other.transitions[b].contains_key(*k))
                .cloned()
                .collect();
            for step in steps {
                let na = self.transitions[a][&step];
                let nb = other.transitions[b][&step];
                let nq = match index.get(&(na, nb)) {
                    Some(&i) => i,
                    None => {
                        let i = pairs.len();
                        index.insert((na, nb), i);
                        pairs.push((na, nb));
                        transitions.push(HashMap::new());
                        accepting.push(self.accepting[na] && other.accepting[nb]);
                        queue.push_back(i);
                        i
                    }
                };
                transitions[q].insert(step, nq);
            }
        }

        Dfa {
            transitions,
            accepting,
            truncated: self.truncated || other.truncated,
        }
    }

    /// Enumerates accepted words in order of increasing length (ties broken by the
    /// letters' kind and tag *name*, so the order is deterministic and independent of
    /// global interning history), up to `max_len` letters and at most `max_words`
    /// results.
    ///
    /// The empty word is included when the initial state is accepting (it corresponds
    /// to the identity column extractor `s`).
    ///
    /// The result carries a `truncated` flag: when the `max_words` cap stops the
    /// search, the word list *may* under-approximate the bounded language (the
    /// search halts at the cap without checking whether further accepting words
    /// remained), and benchmark numbers derived from the word count must not be
    /// read as "the whole search space".  (Truncation during *construction* is
    /// reported separately via [`Dfa::truncated`].)
    pub fn enumerate(&self, max_len: usize, max_words: usize) -> Enumeration {
        if max_words == 0 {
            return Enumeration {
                words: Vec::new(),
                truncated: self.has_accepting_state(),
            };
        }
        let mut stream = self.stream(max_len);
        let mut results = Vec::new();
        while let Some(word) = stream.next_word() {
            results.push(word);
            // `max_words` is a hard cap and the search halts at it without checking
            // whether further accepting words remained, so a list that happens to be
            // complete is still flagged.
            if results.len() >= max_words {
                return Enumeration {
                    words: results,
                    truncated: true,
                };
            }
        }
        Enumeration {
            words: results,
            truncated: false,
        }
    }

    /// Returns an incremental shortest-word-first generator over the accepted
    /// language, bounded at `max_len` letters.
    ///
    /// Words come out in exactly the order [`Dfa::enumerate`] lists them (length,
    /// then the letters' kind/tag-name/position at each expanded state), but one at
    /// a time: the best-first table search pulls per-column candidates on demand
    /// instead of materializing a capped list up front.
    pub fn stream(&self, max_len: usize) -> WordStream<'_> {
        let mut pending = VecDeque::new();
        if self.accepting[0] {
            pending.push_back(Vec::new());
        }
        WordStream {
            dfa: self,
            frontier: vec![(0, Vec::new())],
            pending,
            depth: 0,
            max_len,
        }
    }
}

/// Incremental shortest-word-first enumeration of a DFA's bounded language.
///
/// Internally a level-by-level BFS over (state, word) pairs: each call to
/// [`WordStream::next_word`] drains the queue of accepting words discovered so
/// far, expanding one more length level only when the queue runs dry.  The
/// automaton is deterministic but the number of distinct words of length L can
/// still be exponential in L; the caller keeps `max_len` small (programs are
/// short in practice) and pulls only as many words as the table search examines.
pub struct WordStream<'a> {
    dfa: &'a Dfa,
    /// All (state, word) pairs of length `depth`; the next level is expanded from
    /// these in order, with each state's outgoing steps sorted by name key.
    frontier: Vec<(usize, Vec<ExtractorStep>)>,
    /// Accepting words of lengths ≤ `depth` not yet handed out.
    pending: VecDeque<Vec<ExtractorStep>>,
    depth: usize,
    max_len: usize,
}

impl WordStream<'_> {
    /// Returns the next accepted word in canonical order, or `None` once every
    /// word of length ≤ `max_len` has been produced.
    pub fn next_word(&mut self) -> Option<Vec<ExtractorStep>> {
        loop {
            if let Some(word) = self.pending.pop_front() {
                return Some(word);
            }
            if self.depth >= self.max_len || self.frontier.is_empty() {
                return None;
            }
            self.depth += 1;
            let mut next = Vec::new();
            for (q, word) in &self.frontier {
                let mut steps: Vec<(&ExtractorStep, &usize)> =
                    self.dfa.transitions[*q].iter().collect();
                steps.sort_by_key(|(s, _)| step_name_key(s));
                for (step, &nq) in steps {
                    let mut w = word.clone();
                    w.push(*step);
                    if self.dfa.accepting[nq] {
                        self.pending.push_back(w.clone());
                    }
                    next.push((nq, w));
                }
            }
            self.frontier = next;
        }
    }
}

/// Result of [`Dfa::enumerate`]: the accepted words plus whether the `max_words`
/// cap cut the enumeration short.
#[derive(Debug, Clone)]
pub struct Enumeration {
    /// Accepted words, shortest first; never more than the requested `max_words`.
    pub words: Vec<Vec<ExtractorStep>>,
    /// True when the word cap stopped the search, in which case the word list may
    /// under-approximate the bounded language (the search does not look past the
    /// cap, so a list that happens to be complete is still flagged).
    pub truncated: bool,
}

/// The DFA alphabet induced by a tree: one `children`/`descendants` letter per tag and
/// one `pchildren` letter per (tag, pos) pair occurring in the tree.
///
/// Tags are interned `TagId`s, but the alphabet is ordered by tag *name* so that
/// enumeration order stays deterministic and independent of interning order.  This is
/// the only place the DFA machinery touches tag strings; everything past alphabet
/// construction compares and hashes `u32` handles.
pub fn alphabet_of(tree: &Hdt) -> Vec<ExtractorStep> {
    let mut tag_pos: HashSet<(TagId, usize)> = HashSet::new();
    for id in tree.ids() {
        if id == tree.root() {
            continue;
        }
        let n = tree.node(id);
        tag_pos.insert((n.tag, n.pos));
    }
    let mut tags: Vec<TagId> = tag_pos.iter().map(|(t, _)| *t).collect();
    tags.sort_by_key(|t| t.as_str());
    tags.dedup();
    let mut letters = Vec::with_capacity(tags.len() * 2 + tag_pos.len());
    for tag in &tags {
        letters.push(ExtractorStep::Children(*tag));
        letters.push(ExtractorStep::Descendants(*tag));
    }
    let mut tag_pos: Vec<(TagId, usize)> = tag_pos.into_iter().collect();
    tag_pos.sort_by_key(|(t, p)| (t.as_str(), *p));
    for (tag, pos) in tag_pos {
        letters.push(ExtractorStep::PChildren(tag, pos));
    }
    letters
}

/// Sort key ordering extractor steps by kind, tag *name* and position — stable across
/// processes regardless of what was interned before (the derived `Ord` on
/// [`ExtractorStep`] follows interning order and is only deterministic per process).
fn step_name_key(step: &ExtractorStep) -> (u8, &'static str, usize) {
    match step {
        ExtractorStep::Children(t) => (0, t.as_str(), 0),
        ExtractorStep::Descendants(t) => (1, t.as_str(), 0),
        ExtractorStep::PChildren(t, p) => (2, t.as_str(), *p),
    }
}

/// Applies one extractor step to a node set.
pub fn apply_step(tree: &Hdt, set: &[NodeId], step: &ExtractorStep) -> Vec<NodeId> {
    match step {
        ExtractorStep::Children(tag) => set
            .iter()
            .flat_map(|n| tree.children_with_tag(*n, *tag).iter().copied())
            .collect(),
        ExtractorStep::PChildren(tag, pos) => set
            .iter()
            .flat_map(|n| tree.children_with_tag_pos(*n, *tag, *pos))
            .collect(),
        ExtractorStep::Descendants(tag) => set
            .iter()
            .flat_map(|n| tree.descendants_with_tag(*n, *tag).iter().copied())
            .collect(),
    }
}

/// Canonicalizes a node set: sorted, deduplicated.
fn canonical(mut set: Vec<NodeId>) -> Vec<NodeId> {
    set.sort_unstable();
    set.dedup();
    set
}

/// `s ⊇ column`: every value in the column equals the data stored at some node in `s`.
pub fn covers_column(tree: &Hdt, set: &[NodeId], column: &[Value]) -> bool {
    if column.is_empty() {
        return !set.is_empty();
    }
    let available: Vec<Value> = set
        .iter()
        .map(|n| match tree.data(*n) {
            Some(d) => Value::from_data(d),
            None => Value::Null,
        })
        .collect();
    column.iter().all(|v| available.iter().any(|a| a == v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_dsl::ast::ColumnExtractor;
    use mitra_dsl::eval::eval_column;
    use mitra_hdt::generate::social_network;

    fn name_column() -> Vec<Value> {
        vec![Value::str("Alice"), Value::str("Bob")]
    }

    #[test]
    fn construct_finds_accepting_state_for_names() {
        let t = social_network(2, 1);
        let dfa = Dfa::construct(&t, &name_column(), DfaLimits::default());
        assert!(dfa.has_accepting_state());
        assert!(!dfa.truncated);
        assert!(dfa.num_states() > 1);
    }

    #[test]
    fn accepted_words_are_consistent_extractors() {
        let t = social_network(2, 1);
        let col = name_column();
        let dfa = Dfa::construct(&t, &col, DfaLimits::default());
        let words = dfa.enumerate(4, 50).words;
        assert!(!words.is_empty());
        for w in &words {
            assert!(dfa.accepts(w));
            let pi = ColumnExtractor::from_steps(w);
            let nodes = eval_column(&t, &pi);
            assert!(covers_column(&t, &nodes, &col), "word {w:?} does not cover");
        }
    }

    #[test]
    fn expected_extractor_is_accepted() {
        let t = social_network(2, 1);
        let dfa = Dfa::construct(&t, &name_column(), DfaLimits::default());
        // pchildren(children(s, Person), name, 0)  — the paper's π11
        let word = vec![
            ExtractorStep::Children("Person".into()),
            ExtractorStep::PChildren("name".into(), 0),
        ];
        assert!(dfa.accepts(&word));
        // descendants(s, name) also covers the column
        let word2 = vec![ExtractorStep::Descendants("name".into())];
        assert!(dfa.accepts(&word2));
        // children(s, name) does not (names are not direct children of the root)
        let word3 = vec![ExtractorStep::Children("name".into())];
        assert!(!dfa.accepts(&word3));
    }

    #[test]
    fn intersection_restricts_language() {
        let t1 = social_network(2, 1);
        let t2 = social_network(3, 1);
        let col1 = vec![Value::str("Alice"), Value::str("Bob")];
        let col2 = vec![Value::str("Alice"), Value::str("Bob"), Value::str("Carol")];
        let d1 = Dfa::construct(&t1, &col1, DfaLimits::default());
        let d2 = Dfa::construct(&t2, &col2, DfaLimits::default());
        let both = d1.intersect(&d2);
        assert!(both.has_accepting_state());
        let words = both.enumerate(4, 100).words;
        for w in &words {
            assert!(d1.accepts(w) && d2.accepts(w));
        }
    }

    #[test]
    fn intersection_with_impossible_column_is_empty() {
        let t = social_network(2, 1);
        let d1 = Dfa::construct(&t, &name_column(), DfaLimits::default());
        let d2 = Dfa::construct(&t, &[Value::str("does-not-exist")], DfaLimits::default());
        assert!(!d2.has_accepting_state());
        let both = d1.intersect(&d2);
        assert!(both.enumerate(4, 10).words.is_empty());
    }

    #[test]
    fn enumeration_is_shortest_first() {
        let t = social_network(2, 1);
        let dfa = Dfa::construct(&t, &name_column(), DfaLimits::default());
        let words = dfa.enumerate(4, 100).words;
        for pair in words.windows(2) {
            assert!(pair[0].len() <= pair[1].len());
        }
    }

    #[test]
    fn enumeration_reports_word_cap_truncation() {
        let t = social_network(2, 1);
        let dfa = Dfa::construct(&t, &name_column(), DfaLimits::default());
        let full = dfa.enumerate(4, 10_000);
        assert!(!full.truncated, "generous cap must not truncate");
        assert!(full.words.len() > 1);
        let capped = dfa.enumerate(4, 1);
        assert!(capped.truncated, "cap of 1 must report truncation");
        assert_eq!(capped.words.len(), 1);
        // The cap is hard even when the initial state is accepting (empty column:
        // every non-empty node set covers it, including {root}, so the empty word
        // is accepted and must count against the cap).
        let trivial = Dfa::construct(&t, &[], DfaLimits::default());
        for cap in [1usize, 2, 3] {
            assert!(trivial.enumerate(4, cap).words.len() <= cap);
        }
        // A DFA with no accepting states has nothing to truncate.
        let empty = Dfa::construct(&t, &[Value::str("absent")], DfaLimits::default());
        assert!(!empty.enumerate(4, 1).truncated);
    }

    #[test]
    fn limits_truncate_construction() {
        let t = social_network(6, 3);
        let limits = DfaLimits {
            max_states: 3,
            max_word_len: 2,
        };
        let dfa = Dfa::construct(&t, &name_column(), limits);
        assert!(dfa.num_states() <= 3);
    }

    #[test]
    fn covers_column_requires_all_values() {
        let t = social_network(2, 1);
        let persons = t.children_with_tag(t.root(), "Person");
        let names: Vec<NodeId> = persons
            .iter()
            .map(|p| t.child(*p, "name", 0).unwrap())
            .collect();
        assert!(covers_column(&t, &names, &name_column()));
        assert!(!covers_column(&t, &names[..1], &name_column()));
    }
}
