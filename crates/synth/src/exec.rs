//! Optimized execution of synthesized programs (Appendix C).
//!
//! The naive semantics of `filter(π1 × … × πk, φ)` materializes the full cross product
//! before filtering, which is hopeless on large documents (the intermediate table grows
//! as the product of the column sizes).  This module builds an execution *plan* that
//!
//! 1. pushes constant comparisons down onto individual columns (pre-filtering),
//! 2. turns equality comparisons between two tuple components into hash joins, and
//! 3. evaluates whatever remains as a residual predicate on the surviving tuples.
//!
//! For the motivating example this reduces execution from O(n³) to roughly O(n), which
//! is what makes the paper's "1M elements in ~2.5 minutes" scalability experiment (and
//! our experiment E3) feasible.

use crate::budget::{Budget, BudgetBreach, BudgetResource};
use mitra_dsl::ast::{CompareOp, NodeExtractor, Operand, Predicate, Program};
use mitra_dsl::eval::{eval_column, eval_node_extractor, eval_predicate, node_value};
use mitra_dsl::{Table, Value};
use mitra_hdt::{Hdt, NodeId};
use std::collections::HashMap;

/// A join/filter plan derived from a program's predicate.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Per-column constant filters (conjunction of atoms mentioning only that column).
    pub column_filters: Vec<Vec<Predicate>>,
    /// Equality join constraints between two columns.
    pub joins: Vec<JoinConstraint>,
    /// Whatever could not be pushed down or turned into a join.
    pub residual: Predicate,
    /// Column evaluation/join order (a permutation of `0..arity`).
    pub order: Vec<usize>,
}

/// An equi-join constraint `(λn.ϕa) t[a] = (λn.ϕb) t[b]`.
#[derive(Debug, Clone)]
pub struct JoinConstraint {
    /// Left column index.
    pub left_col: usize,
    /// Node extractor applied to the left column's node.
    pub left_extractor: NodeExtractor,
    /// Right column index.
    pub right_col: usize,
    /// Node extractor applied to the right column's node.
    pub right_extractor: NodeExtractor,
}

/// Key used for hash joins: node identity for internal nodes, data value for leaves.
/// This mirrors the comparison semantics of Figure 7 (leaf–leaf compares data,
/// internal–internal compares identity, mixed comparisons are false).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum JoinKey {
    Node(NodeId),
    Data(String),
}

fn join_key(tree: &Hdt, node: NodeId) -> JoinKey {
    if tree.is_leaf(node) {
        JoinKey::Data(Value::from_data(tree.data(node).unwrap_or("")).render())
    } else {
        JoinKey::Node(node)
    }
}

/// Builds an execution plan for a program (the planning half of Appendix C).
pub fn plan(program: &Program) -> Plan {
    let arity = program.arity();
    let cnf = program.predicate.to_cnf();
    let mut column_filters: Vec<Vec<Predicate>> = vec![Vec::new(); arity];
    let mut joins: Vec<JoinConstraint> = Vec::new();
    let mut residual_clauses: Vec<Vec<Predicate>> = Vec::new();

    for clause in cnf {
        if clause.len() == 1 {
            match &clause[0] {
                Predicate::Compare {
                    extractor,
                    index,
                    op,
                    rhs: Operand::Const(_),
                } => {
                    let _ = (extractor, op);
                    column_filters[*index].push(clause[0].clone());
                    continue;
                }
                Predicate::Compare {
                    extractor,
                    index,
                    op: CompareOp::Eq,
                    rhs:
                        Operand::Column {
                            extractor: rhs_extractor,
                            index: rhs_index,
                        },
                } if index != rhs_index => {
                    joins.push(JoinConstraint {
                        left_col: *index,
                        left_extractor: extractor.clone(),
                        right_col: *rhs_index,
                        right_extractor: rhs_extractor.clone(),
                    });
                    continue;
                }
                _ => {}
            }
        }
        residual_clauses.push(clause);
    }

    let residual = Predicate::conjunction(residual_clauses.into_iter().map(Predicate::disjunction));

    // Join order: start from column 0, repeatedly add the column connected to the
    // already-joined set by some join constraint; fall back to the next unjoined column
    // (which will require a cross product step).
    let mut order = Vec::with_capacity(arity);
    if arity > 0 {
        order.push(0);
        while order.len() < arity {
            let next_joined = (0..arity).find(|c| {
                !order.contains(c)
                    && joins.iter().any(|j| {
                        (j.left_col == *c && order.contains(&j.right_col))
                            || (j.right_col == *c && order.contains(&j.left_col))
                    })
            });
            // `order.len() < arity` guarantees an unplaced column exists, so the
            // fallback scan always finds one; bail out instead of panicking if not.
            let Some(next) = next_joined.or_else(|| (0..arity).find(|c| !order.contains(c))) else {
                break;
            };
            order.push(next);
        }
    }

    Plan {
        column_filters,
        joins,
        residual,
        order,
    }
}

/// Statistics gathered during execution (useful for the ablation benchmarks and
/// the migration execution profile).
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Tuples produced before the residual predicate.
    pub tuples_considered: usize,
    /// Rows in the final output.
    pub rows_emitted: usize,
    /// Whether any cross-product (non-join) extension step was needed.
    pub used_cross_product: bool,
    /// Number of chunks the residual filter fanned out over (1 when it ran inline).
    pub chunks: usize,
}

/// Executes a program with the optimized plan, returning the output table.
pub fn execute(tree: &Hdt, program: &Program) -> Table {
    execute_with_stats(tree, program).0
}

/// Executes a program and also returns node-level rows (for key generation) and stats.
pub fn execute_nodes(tree: &Hdt, program: &Program) -> Vec<Vec<NodeId>> {
    execute_nodes_with_stats(tree, program).0
}

/// Like [`execute_nodes`], additionally returning the execution statistics — the
/// migration layer uses these to build its per-table execution profile.
pub fn execute_nodes_with_stats(tree: &Hdt, program: &Program) -> (Vec<Vec<NodeId>>, ExecStats) {
    let p = plan(program);
    match run_plan(tree, program, &p, None) {
        Ok(result) => result,
        // An unlimited budget cannot breach.
        Err(_) => unreachable!("unlimited row budget breached"),
    }
}

/// Like [`execute_nodes_with_stats`], bounded by a deterministic row budget: the
/// cumulative count of tuples materialized across the join steps and the residual
/// filter is checked at canonical points of the (sequential) plan order, so a
/// breach fires after exactly the same work at every thread count.
pub fn execute_nodes_budgeted(
    tree: &Hdt,
    program: &Program,
    max_rows: Option<u64>,
) -> Result<(Vec<Vec<NodeId>>, ExecStats), BudgetBreach> {
    let p = plan(program);
    run_plan(tree, program, &p, max_rows)
}

/// Executes a program with the optimized plan, returning the table and statistics.
pub fn execute_with_stats(tree: &Hdt, program: &Program) -> (Table, ExecStats) {
    let (tuples, stats) = execute_nodes_with_stats(tree, program);
    let mut table = if program.column_names.is_empty() {
        Table::anonymous(program.arity())
    } else {
        Table::new(program.column_names.clone())
    };
    for t in &tuples {
        table.push(t.iter().map(|n| node_value(tree, *n)).collect());
    }
    (table, stats)
}

fn run_plan(
    tree: &Hdt,
    program: &Program,
    p: &Plan,
    max_rows: Option<u64>,
) -> Result<(Vec<Vec<NodeId>>, ExecStats), BudgetBreach> {
    let _span = mitra_trace::span("exec", "run_plan");
    let arity = program.arity();
    let budget = Budget {
        max_rows,
        ..Budget::UNLIMITED
    };
    let mut materialized: u64 = 0;
    let mut stats = ExecStats::default();
    if arity == 0 {
        return Ok((Vec::new(), stats));
    }

    // Evaluate and pre-filter each column.
    let mut columns: Vec<Vec<NodeId>> = Vec::with_capacity(arity);
    for (i, pi) in program.extractor.columns.iter().enumerate() {
        let mut nodes = eval_column(tree, pi);
        if !p.column_filters[i].is_empty() {
            nodes.retain(|n| {
                // Column filters only mention column i; present the node at position i
                // of a dummy tuple.
                let mut dummy = vec![*n; arity];
                dummy[i] = *n;
                p.column_filters[i]
                    .iter()
                    .all(|f| eval_predicate(tree, &dummy, f))
            });
        }
        columns.push(nodes);
    }

    // Progressive join following the plan order.  Partial tuples are stored as vectors
    // indexed by column id with placeholder entries for not-yet-joined columns.
    let first = p.order[0];
    let mut partial: Vec<Vec<NodeId>> = columns[first]
        .iter()
        .map(|n| {
            let mut t = vec![NodeId(u32::MAX); arity];
            t[first] = *n;
            t
        })
        .collect();
    materialized += partial.len() as u64;
    budget.check(BudgetResource::Rows, materialized)?;
    let mut joined: Vec<usize> = vec![first];

    for &col in &p.order[1..] {
        // Find a join constraint linking `col` to an already joined column.
        let constraint = p.joins.iter().find(|j| {
            (j.left_col == col && joined.contains(&j.right_col))
                || (j.right_col == col && joined.contains(&j.left_col))
        });
        let mut next_partial: Vec<Vec<NodeId>> = Vec::new();
        match constraint {
            Some(j) => {
                // Normalize so that `new_extractor` applies to the new column `col`.
                let (new_extractor, old_col, old_extractor) = if j.left_col == col {
                    (&j.left_extractor, j.right_col, &j.right_extractor)
                } else {
                    (&j.right_extractor, j.left_col, &j.left_extractor)
                };
                // Build a hash index over the new column.
                let mut index: HashMap<JoinKey, Vec<NodeId>> = HashMap::new();
                for &n in &columns[col] {
                    if let Some(target) = eval_node_extractor(tree, n, new_extractor) {
                        index.entry(join_key(tree, target)).or_default().push(n);
                    }
                }
                for t in &partial {
                    let old_node = t[old_col];
                    let Some(target) = eval_node_extractor(tree, old_node, old_extractor) else {
                        continue;
                    };
                    if let Some(matches) = index.get(&join_key(tree, target)) {
                        for &m in matches {
                            let mut nt = t.clone();
                            nt[col] = m;
                            next_partial.push(nt);
                        }
                    }
                }
            }
            None => {
                stats.used_cross_product = true;
                for t in &partial {
                    for &n in &columns[col] {
                        let mut nt = t.clone();
                        nt[col] = n;
                        next_partial.push(nt);
                    }
                }
            }
        }
        partial = next_partial;
        // Row fuel pays per tuple materialized; checking after each (sequential)
        // join step keeps the breach point independent of the thread count.
        materialized += partial.len() as u64;
        budget.check(BudgetResource::Rows, materialized)?;
        joined.push(col);
    }

    stats.tuples_considered = partial.len();

    // Remaining join constraints that were not used to drive the join order (e.g. a
    // second constraint between the same pair of columns) plus the residual predicate
    // must still be checked.
    let keep = |t: &[NodeId]| -> bool {
        let joins_ok = p.joins.iter().all(|j| {
            let l = eval_node_extractor(tree, t[j.left_col], &j.left_extractor);
            let r = eval_node_extractor(tree, t[j.right_col], &j.right_extractor);
            match (l, r) {
                (Some(l), Some(r)) => join_key(tree, l) == join_key(tree, r),
                _ => false,
            }
        });
        if !joins_ok {
            return false;
        }
        if !eval_predicate(tree, t, &p.residual) {
            return false;
        }
        // Column filters were applied with dummy tuples; re-check them on the real
        // tuple for safety (cheap, they are constant comparisons).
        p.column_filters
            .iter()
            .flatten()
            .all(|f| eval_predicate(tree, t, f))
    };

    // Tuples are filtered independently; on large intermediates the check fans out
    // over contiguous chunks whose survivors are re-concatenated in chunk order, so
    // the emitted rows match the sequential order exactly.
    let threads = mitra_pool::threads();
    let result: Vec<Vec<NodeId>> = if threads > 1 && partial.len() >= PARALLEL_FILTER_MIN_TUPLES {
        let chunk_size = partial.len().div_ceil(threads);
        let chunks: Vec<&[Vec<NodeId>]> = partial.chunks(chunk_size).collect();
        stats.chunks = chunks.len();
        mitra_pool::parallel_map(threads, &chunks, |_, chunk| {
            chunk
                .iter()
                .filter(|t| keep(t))
                .cloned()
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    } else {
        stats.chunks = 1;
        partial.into_iter().filter(|t| keep(t)).collect()
    };
    stats.rows_emitted = result.len();
    // Checked after all chunks merge (never per chunk — chunk boundaries depend
    // on the thread count, the merged total does not).
    materialized += result.len() as u64;
    budget.check(BudgetResource::Rows, materialized)?;
    mitra_trace::counter_add!("exec.tuples_considered", stats.tuples_considered as u64);
    mitra_trace::counter_add!("exec.rows_emitted", stats.rows_emitted as u64);
    mitra_trace::hist_observe!("exec.chunks", stats.chunks as u64);
    Ok((result, stats))
}

/// Below this many intermediate tuples the residual filter runs inline: spawning
/// workers costs more than the checks themselves.
const PARALLEL_FILTER_MIN_TUPLES: usize = 8192;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesize::{learn_transformation, Example, SynthConfig};
    use mitra_dsl::ast::{ColumnExtractor, TableExtractor};
    use mitra_dsl::eval::eval_program;
    use mitra_hdt::generate::{social_network, social_network_rows};

    fn social_example(n: usize, f: usize) -> Example {
        let tree = social_network(n, f);
        let rows = social_network_rows(n, f);
        let mut output = Table::new(vec!["Person".into(), "Friend-with".into(), "years".into()]);
        for r in rows {
            output.push(r.iter().map(|s| Value::from_data(s)).collect());
        }
        Example::new(tree, output)
    }

    fn synthesized_program() -> mitra_dsl::Program {
        let ex = social_example(3, 1);
        learn_transformation(&[ex], &SynthConfig::default())
            .unwrap()
            .program
    }

    #[test]
    fn optimized_execution_matches_naive_semantics() {
        let program = synthesized_program();
        for (n, f) in [(2, 1), (4, 2), (6, 3)] {
            let tree = social_network(n, f);
            let naive = eval_program(&tree, &program).unwrap();
            let fast = execute(&tree, &program);
            assert!(naive.same_bag(&fast), "mismatch at n={n} f={f}");
        }
    }

    #[test]
    fn plan_extracts_joins_from_motivating_example() {
        let program = synthesized_program();
        let p = plan(&program);
        assert!(!p.joins.is_empty(), "expected at least one equi-join");
    }

    #[test]
    fn optimized_execution_avoids_cross_product_blowup() {
        let program = synthesized_program();
        let tree = social_network(60, 4);
        let (_, stats) = execute_with_stats(&tree, &program);
        // The naive cross product would be 60 * 60 * 240 = 864k tuples; the join plan
        // must consider far fewer.
        assert!(
            stats.tuples_considered < 100_000,
            "considered {} tuples",
            stats.tuples_considered
        );
        assert_eq!(stats.rows_emitted, social_network_rows(60, 4).len());
    }

    #[test]
    fn constant_filters_are_pushed_down() {
        // program: single column of Person nodes with id < 3.
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "Person");
        let pred = Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::Id, "id", 0),
            index: 0,
            op: CompareOp::Lt,
            rhs: Operand::Const(Value::int(3)),
        };
        let program = mitra_dsl::Program::new(TableExtractor::new(vec![pi]), pred);
        let p = plan(&program);
        assert_eq!(p.column_filters[0].len(), 1);
        assert!(p.joins.is_empty());
        let tree = social_network(10, 1);
        let out = execute(&tree, &program);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn residual_predicates_still_enforced() {
        // A disjunction cannot be pushed down or joined; it must be evaluated as residual.
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "Person");
        let a = Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::Id, "id", 0),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Const(Value::int(1)),
        };
        let b = Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::Id, "id", 0),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Const(Value::int(3)),
        };
        let program = mitra_dsl::Program::new(TableExtractor::new(vec![pi]), Predicate::or(a, b));
        let tree = social_network(5, 1);
        let naive = eval_program(&tree, &program).unwrap();
        let fast = execute(&tree, &program);
        assert!(naive.same_bag(&fast));
        assert_eq!(fast.len(), 2);
    }

    #[test]
    fn parallel_residual_filter_matches_sequential_order() {
        // 100 × 100 = 10_000 intermediate tuples, above the parallel-filter
        // threshold; the emitted rows must match the naive semantics in order.
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "Person");
        let pred = Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::Id, "id", 0),
            index: 0,
            op: CompareOp::Ne,
            rhs: Operand::Column {
                extractor: NodeExtractor::child(NodeExtractor::Id, "id", 0),
                index: 1,
            },
        };
        let program = mitra_dsl::Program::new(TableExtractor::new(vec![pi.clone(), pi]), pred);
        let tree = social_network(100, 1);
        let naive = eval_program(&tree, &program).unwrap();
        let fast = execute(&tree, &program);
        assert_eq!(naive.rows, fast.rows, "row order must be preserved");
    }

    #[test]
    fn empty_predicate_program_is_full_cross_product() {
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "Person");
        let program =
            mitra_dsl::Program::new(TableExtractor::new(vec![pi.clone(), pi]), Predicate::True);
        let tree = social_network(3, 1);
        let (out, stats) = execute_with_stats(&tree, &program);
        assert_eq!(out.len(), 9);
        assert!(stats.used_cross_product);
    }

    #[test]
    fn row_budget_breaches_on_materialized_tuples() {
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "Person");
        let program =
            mitra_dsl::Program::new(TableExtractor::new(vec![pi.clone(), pi]), Predicate::True);
        let tree = social_network(3, 1);
        // 3 first-column tuples + 9 cross-product tuples + 9 filtered rows = 21
        // units of fuel; a cap below that must breach, an exact one must not...
        let breach = execute_nodes_budgeted(&tree, &program, Some(9)).unwrap_err();
        assert_eq!(breach.resource, crate::budget::BudgetResource::Rows);
        // ...because `check` trips at spent >= limit.
        let (rows, _) = execute_nodes_budgeted(&tree, &program, Some(22)).unwrap();
        assert_eq!(rows.len(), 9);
        // Unlimited path is untouched.
        let (rows, _) = execute_nodes_budgeted(&tree, &program, None).unwrap();
        assert_eq!(rows.len(), 9);
    }
}
