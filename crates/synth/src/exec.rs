//! Optimized execution of synthesized programs (Appendix C).
//!
//! The naive semantics of `filter(π1 × … × πk, φ)` materializes the full cross product
//! before filtering, which is hopeless on large documents (the intermediate table grows
//! as the product of the column sizes).  Execution here is split into a query planner
//! ([`crate::plan`]) and a physical-operator layer ([`crate::ops`]):
//!
//! 1. the planner pushes single-column comparisons down onto individual columns,
//!    turns equality comparisons between two tuple components into join constraints,
//!    and orders the joins smallest-first using cardinality estimates from the tree's
//!    per-tag occurrence lists (columns themselves are materialized through the same
//!    index — `eval_column` resolves `descendants` steps as `descendants_with_tag`
//!    range scans over the pre-order interval);
//! 2. join steps run as pre-order **interval joins** when the constraint is an
//!    ancestor/descendant relation, as **hash joins** over interned keys otherwise,
//!    with cross products deferred to last;
//! 3. whatever remains is evaluated as a **vectorized residual filter**,
//!    column-at-a-time over ≥8192-tuple chunks.
//!
//! Whatever order the planner picks, finished rows are sorted by their per-column
//! positions permuted into [`legacy_order`] — the emission order of the pre-planner
//! progressive join (kept below as [`execute_nodes_progressive`] for differential
//! testing) — so the output is byte-identical at every thread count and plan shape.
//! Row-budget checks stay at canonical sequential points (after the initial scan,
//! after each join step, after the merged residual filter), so a `BudgetBreach`
//! fires after exactly the same work regardless of threading.

use crate::budget::{Budget, BudgetBreach, BudgetResource};
use crate::ops;
pub use crate::plan::{
    legacy_order, plan, plan_with_tree, JoinConstraint, Plan, PlanStep, StepMethod,
};
use mitra_dsl::ast::Program;
use mitra_dsl::eval::{eval_column, eval_node_extractor, eval_predicate, node_value};
use mitra_dsl::{Table, Value};
use mitra_hdt::{Hdt, NodeId};
use std::collections::HashMap;

/// Statistics gathered during execution (useful for the ablation benchmarks and
/// the migration execution profile).
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    /// Tuples produced before the residual predicate.
    pub tuples_considered: usize,
    /// Rows in the final output.
    pub rows_emitted: usize,
    /// Whether any cross-product (non-join) extension step was needed.
    pub used_cross_product: bool,
    /// Number of chunks the residual filter fanned out over (1 when it ran inline).
    pub chunks: usize,
    /// Join steps executed as pre-order interval joins.
    pub interval_join_steps: usize,
    /// Join steps executed as hash joins.
    pub hash_join_steps: usize,
    /// Extension steps executed as cross products.
    pub cross_product_steps: usize,
}

/// Executes a program with the optimized plan, returning the output table.
pub fn execute(tree: &Hdt, program: &Program) -> Table {
    execute_with_stats(tree, program).0
}

/// Executes a program and also returns node-level rows (for key generation) and stats.
pub fn execute_nodes(tree: &Hdt, program: &Program) -> Vec<Vec<NodeId>> {
    execute_nodes_with_stats(tree, program).0
}

/// Like [`execute_nodes`], additionally returning the execution statistics — the
/// migration layer uses these to build its per-table execution profile.
pub fn execute_nodes_with_stats(tree: &Hdt, program: &Program) -> (Vec<Vec<NodeId>>, ExecStats) {
    match run_plan(tree, program, None) {
        Ok(result) => result,
        // An unlimited budget cannot breach.
        Err(_) => unreachable!("unlimited row budget breached"),
    }
}

/// Like [`execute_nodes_with_stats`], bounded by a deterministic row budget: the
/// cumulative count of tuples materialized across the join steps and the residual
/// filter is checked at canonical points of the (sequential) plan order, so a
/// breach fires after exactly the same work at every thread count.
pub fn execute_nodes_budgeted(
    tree: &Hdt,
    program: &Program,
    max_rows: Option<u64>,
) -> Result<(Vec<Vec<NodeId>>, ExecStats), BudgetBreach> {
    run_plan(tree, program, max_rows)
}

/// Executes a program with the optimized plan, returning the table and statistics.
pub fn execute_with_stats(tree: &Hdt, program: &Program) -> (Table, ExecStats) {
    let (tuples, stats) = execute_nodes_with_stats(tree, program);
    (project(tree, program, &tuples), stats)
}

fn project(tree: &Hdt, program: &Program, tuples: &[Vec<NodeId>]) -> Table {
    let mut table = if program.column_names.is_empty() {
        Table::anonymous(program.arity())
    } else {
        Table::new(program.column_names.clone())
    };
    for t in tuples {
        table.push(t.iter().map(|n| node_value(tree, *n)).collect());
    }
    table
}

fn run_plan(
    tree: &Hdt,
    program: &Program,
    max_rows: Option<u64>,
) -> Result<(Vec<Vec<NodeId>>, ExecStats), BudgetBreach> {
    let _span = mitra_trace::span("exec", "run_plan");
    let arity = program.arity();
    let budget = Budget {
        max_rows,
        ..Budget::UNLIMITED
    };
    let mut materialized: u64 = 0;
    let mut stats = ExecStats::default();
    if arity == 0 {
        return Ok((Vec::new(), stats));
    }

    let (p, columns) = crate::plan::plan_and_columns(program, tree);

    // Initial scan (the first plan step is always a scan).
    let first = p.steps[0].col;
    let mut tuples = ops::scan(arity, first, &columns[first]);
    materialized += tuples.len() as u64;
    budget.check(BudgetResource::Rows, materialized)?;

    let mut interner = ops::KeyInterner::new(tree);
    for step in &p.steps[1..] {
        let col = step.col;
        tuples = match step.method {
            StepMethod::Scan => unreachable!("scan can only be the first plan step"),
            StepMethod::IntervalJoin { join, chain_len } => {
                stats.interval_join_steps += 1;
                let (_, old_col, old_extractor) = p.joins[join].oriented(col);
                ops::interval_join(
                    tree,
                    &tuples,
                    col,
                    &columns[col],
                    chain_len,
                    old_col,
                    old_extractor,
                )
            }
            StepMethod::HashJoin { join } => {
                stats.hash_join_steps += 1;
                let (new_extractor, old_col, old_extractor) = p.joins[join].oriented(col);
                ops::hash_join(
                    tree,
                    &mut interner,
                    &tuples,
                    col,
                    &columns[col],
                    new_extractor,
                    old_col,
                    old_extractor,
                )
            }
            StepMethod::CrossProduct => {
                stats.cross_product_steps += 1;
                stats.used_cross_product = true;
                ops::cross_join(&tuples, col, &columns[col])
            }
        };
        // Row fuel pays per tuple materialized; checking after each (sequential)
        // join step keeps the breach point independent of the thread count.
        materialized += tuples.len() as u64;
        budget.check(BudgetResource::Rows, materialized)?;
    }

    stats.tuples_considered = tuples.len();

    // Residual filtering, column-at-a-time.  On large intermediates the filter fans
    // out over contiguous chunks whose survivors are re-concatenated in chunk order,
    // keeping the surviving index sequence independent of the thread count.
    let rp = ops::ResidualPlan::build(&p);
    let threads = mitra_pool::threads();
    let total = tuples.len();
    let mut survivors: Vec<u32> =
        if threads > 1 && total >= PARALLEL_FILTER_MIN_TUPLES && !rp.is_empty() {
            let chunk_size = total.div_ceil(threads);
            let ranges: Vec<(usize, usize)> = (0..total)
                .step_by(chunk_size)
                .map(|s| (s, (s + chunk_size).min(total)))
                .collect();
            stats.chunks = ranges.len();
            mitra_pool::parallel_map(threads, &ranges, |_, &(s, e)| {
                ops::filter_tuples(tree, &tuples, s, e, &rp)
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            stats.chunks = 1;
            ops::filter_tuples(tree, &tuples, 0, total, &rp)
        };

    // Emission-order contract: rows sorted lexicographically by their per-column
    // positions permuted into the legacy progressive order.  Position vectors are
    // unique per tuple, so this is a total (deterministic) order.
    let order = legacy_order(arity, &p.joins);
    survivors.sort_unstable_by(|&a, &b| {
        let pa = tuples.row_pos(a as usize);
        let pb = tuples.row_pos(b as usize);
        order
            .iter()
            .map(|&c| pa[c].cmp(&pb[c]))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let result: Vec<Vec<NodeId>> = survivors
        .iter()
        .map(|&i| tuples.row(i as usize).to_vec())
        .collect();
    stats.rows_emitted = result.len();
    // Checked after all chunks merge (never per chunk — chunk boundaries depend
    // on the thread count, the merged total does not).
    materialized += result.len() as u64;
    budget.check(BudgetResource::Rows, materialized)?;
    mitra_trace::counter_add!("exec.tuples_considered", stats.tuples_considered as u64);
    mitra_trace::counter_add!("exec.rows_emitted", stats.rows_emitted as u64);
    mitra_trace::hist_observe!("exec.chunks", stats.chunks as u64);
    if stats.interval_join_steps > 0 {
        mitra_trace::counter_add!("exec.join.interval", stats.interval_join_steps as u64);
    }
    if stats.hash_join_steps > 0 {
        mitra_trace::counter_add!("exec.join.hash", stats.hash_join_steps as u64);
    }
    if stats.cross_product_steps > 0 {
        mitra_trace::counter_add!("exec.join.cross", stats.cross_product_steps as u64);
    }
    Ok((result, stats))
}

/// Below this many intermediate tuples the residual filter runs inline: spawning
/// workers costs more than the checks themselves.
const PARALLEL_FILTER_MIN_TUPLES: usize = 8192;

/// The pre-refactor progressive join, kept verbatim as a reference implementation:
/// fixed static order, string-keyed hash joins, tuple-at-a-time residual filtering.
/// The differential test suite and the executor benchmarks compare the planner
/// against this for byte-identical output.
pub fn execute_nodes_progressive(tree: &Hdt, program: &Program) -> Vec<Vec<NodeId>> {
    /// Legacy join key: node identity for internal nodes, rendered data for leaves.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum LegacyKey {
        Node(NodeId),
        Data(String),
    }
    fn legacy_key(tree: &Hdt, node: NodeId) -> LegacyKey {
        if tree.is_leaf(node) {
            LegacyKey::Data(Value::from_data(tree.data(node).unwrap_or("")).render())
        } else {
            LegacyKey::Node(node)
        }
    }

    let p = plan(program);
    let arity = program.arity();
    if arity == 0 {
        return Vec::new();
    }

    // Evaluate and pre-filter each column (dummy-tuple filter evaluation, as before).
    let mut columns: Vec<Vec<NodeId>> = Vec::with_capacity(arity);
    for (i, pi) in program.extractor.columns.iter().enumerate() {
        let mut nodes = eval_column(tree, pi);
        if !p.column_filters[i].is_empty() {
            nodes.retain(|n| {
                let dummy = vec![*n; arity];
                p.column_filters[i]
                    .iter()
                    .all(|f| eval_predicate(tree, &dummy, f))
            });
        }
        columns.push(nodes);
    }

    let first = p.order[0];
    let mut partial: Vec<Vec<NodeId>> = columns[first]
        .iter()
        .map(|n| {
            let mut t = vec![NodeId(u32::MAX); arity];
            t[first] = *n;
            t
        })
        .collect();
    let mut joined: Vec<usize> = vec![first];

    for &col in &p.order[1..] {
        let constraint = p.joins.iter().find(|j| {
            (j.left_col == col && joined.contains(&j.right_col))
                || (j.right_col == col && joined.contains(&j.left_col))
        });
        let mut next_partial: Vec<Vec<NodeId>> = Vec::new();
        match constraint {
            Some(j) => {
                let (new_extractor, old_col, old_extractor) = if j.left_col == col {
                    (&j.left_extractor, j.right_col, &j.right_extractor)
                } else {
                    (&j.right_extractor, j.left_col, &j.left_extractor)
                };
                let mut index: HashMap<LegacyKey, Vec<NodeId>> = HashMap::new();
                for &n in &columns[col] {
                    if let Some(target) = eval_node_extractor(tree, n, new_extractor) {
                        index.entry(legacy_key(tree, target)).or_default().push(n);
                    }
                }
                for t in &partial {
                    let old_node = t[old_col];
                    let Some(target) = eval_node_extractor(tree, old_node, old_extractor) else {
                        continue;
                    };
                    if let Some(matches) = index.get(&legacy_key(tree, target)) {
                        for &m in matches {
                            let mut nt = t.clone();
                            nt[col] = m;
                            next_partial.push(nt);
                        }
                    }
                }
            }
            None => {
                for t in &partial {
                    for &n in &columns[col] {
                        let mut nt = t.clone();
                        nt[col] = n;
                        next_partial.push(nt);
                    }
                }
            }
        }
        partial = next_partial;
        joined.push(col);
    }

    let keep = |t: &[NodeId]| -> bool {
        let joins_ok = p.joins.iter().all(|j| {
            let l = eval_node_extractor(tree, t[j.left_col], &j.left_extractor);
            let r = eval_node_extractor(tree, t[j.right_col], &j.right_extractor);
            match (l, r) {
                (Some(l), Some(r)) => legacy_key(tree, l) == legacy_key(tree, r),
                _ => false,
            }
        });
        if !joins_ok {
            return false;
        }
        if !eval_predicate(tree, t, &p.residual) {
            return false;
        }
        p.column_filters
            .iter()
            .flatten()
            .all(|f| eval_predicate(tree, t, f))
    };

    let threads = mitra_pool::threads();
    if threads > 1 && partial.len() >= PARALLEL_FILTER_MIN_TUPLES {
        let chunk_size = partial.len().div_ceil(threads);
        let chunks: Vec<&[Vec<NodeId>]> = partial.chunks(chunk_size).collect();
        mitra_pool::parallel_map(threads, &chunks, |_, chunk| {
            chunk
                .iter()
                .filter(|t| keep(t))
                .cloned()
                .collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    } else {
        partial.into_iter().filter(|t| keep(t)).collect()
    }
}

/// Table-level wrapper around [`execute_nodes_progressive`].
pub fn execute_progressive(tree: &Hdt, program: &Program) -> Table {
    let tuples = execute_nodes_progressive(tree, program);
    project(tree, program, &tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesize::{learn_transformation, Example, SynthConfig};
    use mitra_dsl::ast::{
        ColumnExtractor, CompareOp, NodeExtractor, Operand, Predicate, TableExtractor,
    };
    use mitra_dsl::eval::eval_program;
    use mitra_hdt::generate::{social_network, social_network_rows};

    fn social_example(n: usize, f: usize) -> Example {
        let tree = social_network(n, f);
        let rows = social_network_rows(n, f);
        let mut output = Table::new(vec!["Person".into(), "Friend-with".into(), "years".into()]);
        for r in rows {
            output.push(r.iter().map(|s| Value::from_data(s)).collect());
        }
        Example::new(tree, output)
    }

    fn synthesized_program() -> mitra_dsl::Program {
        let ex = social_example(3, 1);
        learn_transformation(&[ex], &SynthConfig::default())
            .unwrap()
            .program
    }

    #[test]
    fn optimized_execution_matches_naive_semantics() {
        let program = synthesized_program();
        for (n, f) in [(2, 1), (4, 2), (6, 3)] {
            let tree = social_network(n, f);
            let naive = eval_program(&tree, &program).unwrap();
            let fast = execute(&tree, &program);
            assert!(naive.same_bag(&fast), "mismatch at n={n} f={f}");
        }
    }

    #[test]
    fn plan_extracts_joins_from_motivating_example() {
        let program = synthesized_program();
        let p = plan(&program);
        assert!(!p.joins.is_empty(), "expected at least one equi-join");
    }

    #[test]
    fn motivating_example_uses_an_interval_join() {
        // The synthesized predicate joins via parent-chain extractors
        // (parent(t[0]) = parent^3(t[2]) in Figure 3); at least one join step must
        // compile to a pre-order interval join.
        let program = synthesized_program();
        let tree = social_network(10, 2);
        let (_, stats) = execute_with_stats(&tree, &program);
        assert!(
            stats.interval_join_steps >= 1,
            "expected an interval join, got {stats:?}"
        );
    }

    #[test]
    fn planner_matches_progressive_reference_exactly() {
        let program = synthesized_program();
        for (n, f) in [(2, 1), (5, 2), (20, 3)] {
            let tree = social_network(n, f);
            let fast = execute_nodes(&tree, &program);
            let reference = execute_nodes_progressive(&tree, &program);
            assert_eq!(fast, reference, "row mismatch at n={n} f={f}");
        }
    }

    #[test]
    fn optimized_execution_avoids_cross_product_blowup() {
        let program = synthesized_program();
        let tree = social_network(60, 4);
        let (_, stats) = execute_with_stats(&tree, &program);
        // The naive cross product would be 60 * 60 * 240 = 864k tuples; the join plan
        // must consider far fewer.
        assert!(
            stats.tuples_considered < 100_000,
            "considered {} tuples",
            stats.tuples_considered
        );
        assert_eq!(stats.rows_emitted, social_network_rows(60, 4).len());
    }

    #[test]
    fn constant_filters_are_pushed_down() {
        // program: single column of Person nodes with id < 3.
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "Person");
        let pred = Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::Id, "id", 0),
            index: 0,
            op: CompareOp::Lt,
            rhs: Operand::Const(Value::int(3)),
        };
        let program = mitra_dsl::Program::new(TableExtractor::new(vec![pi]), pred);
        let p = plan(&program);
        assert_eq!(p.column_filters[0].len(), 1);
        assert!(p.joins.is_empty());
        let tree = social_network(10, 1);
        let out = execute(&tree, &program);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn residual_predicates_still_enforced() {
        // A disjunction cannot be pushed down or joined; it must be evaluated as residual.
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "Person");
        let a = Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::Id, "id", 0),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Const(Value::int(1)),
        };
        let b = Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::Id, "id", 0),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Const(Value::int(3)),
        };
        let program = mitra_dsl::Program::new(TableExtractor::new(vec![pi]), Predicate::or(a, b));
        let tree = social_network(5, 1);
        let naive = eval_program(&tree, &program).unwrap();
        let fast = execute(&tree, &program);
        assert!(naive.same_bag(&fast));
        assert_eq!(fast.len(), 2);
    }

    #[test]
    fn parallel_residual_filter_matches_sequential_order() {
        // 100 × 100 = 10_000 intermediate tuples, above the parallel-filter
        // threshold; the emitted rows must match the naive semantics in order.
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "Person");
        let pred = Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::Id, "id", 0),
            index: 0,
            op: CompareOp::Ne,
            rhs: Operand::Column {
                extractor: NodeExtractor::child(NodeExtractor::Id, "id", 0),
                index: 1,
            },
        };
        let program = mitra_dsl::Program::new(TableExtractor::new(vec![pi.clone(), pi]), pred);
        let tree = social_network(100, 1);
        let naive = eval_program(&tree, &program).unwrap();
        let fast = execute(&tree, &program);
        assert_eq!(naive.rows, fast.rows, "row order must be preserved");
    }

    #[test]
    fn empty_predicate_program_is_full_cross_product() {
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "Person");
        let program =
            mitra_dsl::Program::new(TableExtractor::new(vec![pi.clone(), pi]), Predicate::True);
        let tree = social_network(3, 1);
        let (out, stats) = execute_with_stats(&tree, &program);
        assert_eq!(out.len(), 9);
        assert!(stats.used_cross_product);
        assert_eq!(stats.cross_product_steps, 1);
    }

    #[test]
    fn row_budget_breaches_on_materialized_tuples() {
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "Person");
        let program =
            mitra_dsl::Program::new(TableExtractor::new(vec![pi.clone(), pi]), Predicate::True);
        let tree = social_network(3, 1);
        // 3 first-column tuples + 9 cross-product tuples + 9 filtered rows = 21
        // units of fuel; a cap below that must breach, an exact one must not...
        let breach = execute_nodes_budgeted(&tree, &program, Some(9)).unwrap_err();
        assert_eq!(breach.resource, crate::budget::BudgetResource::Rows);
        // ...because `check` trips at spent >= limit.
        let (rows, _) = execute_nodes_budgeted(&tree, &program, Some(22)).unwrap();
        assert_eq!(rows.len(), 9);
        // Unlimited path is untouched.
        let (rows, _) = execute_nodes_budgeted(&tree, &program, None).unwrap();
        assert_eq!(rows.len(), 9);
    }
}
