//! # mitra-synth — the Mitra synthesis engine
//!
//! This crate implements the paper's synthesis algorithm (Section 5) and its
//! optimizations (Section 6, Appendix C):
//!
//! * [`dfa`] — deterministic finite automata whose states are node sets of an HDT and
//!   whose alphabet is the column-extractor operators (Figure 9); supports
//!   intersection and shortest-word enumeration.
//! * [`column`] — `LearnColExtractors` (Algorithm 2): learning the set of column
//!   extraction programs consistent with all examples.
//! * [`universe`] — construction of the atomic-predicate universe (Figure 10).
//! * [`cover`] — the 0–1 ILP / minimum set-cover solver behind `FindMinCover`
//!   (Algorithm 4), with both an exact branch-and-bound mode and a greedy mode.
//! * [`qm`] — Quine–McCluskey logic minimization with don't-cares plus a Petrick-style
//!   minimum prime-implicant cover, used to produce the smallest DNF classifier.
//! * [`predicate`] — `LearnPredicate` (Algorithm 3): positive/negative example
//!   construction and classifier learning.
//! * [`synthesize`] — `LearnTransformation` (Algorithm 1): the top-level loop with the
//!   Occam's-razor ranking of Section 6.  Both phases fan out over a scoped worker
//!   pool (`mitra-pool`) with canonical-order merges, so results are byte-identical
//!   at every thread count.
//! * [`cache`] — the shared, concurrency-safe column-evaluation cache that candidate
//!   validation workers use to avoid repeating `[[π]]T` tree walks.
//! * [`budget`] — deterministic fuel budgets (candidates / DFA states / rows, never
//!   wall-clock) checked at the frontier, the automata intersection, and the
//!   executor, so exhaustion is identical at every thread count.
//! * [`optimize`]/[`plan`]/[`ops`]/[`exec`] — the Appendix C program optimizer and an
//!   execution engine split into a cost-based query planner, a physical-operator
//!   layer (tag-indexed scans, pre-order interval joins, interned-key hash joins,
//!   vectorized residual filters) and the executor driving them.
//! * [`fingerprint`] — document-shape fingerprints (stable tag-path-set hashes) and the
//!   per-shape program cache that lets the corpus service synthesize once per shape.
//! * [`baseline`] — a deliberately naive enumerative synthesizer used for the ablation
//!   experiments (E7 in DESIGN.md).

pub mod baseline;
pub mod budget;
pub mod cache;
pub mod column;
pub mod cover;
pub mod dfa;
pub mod exec;
pub mod fingerprint;
pub mod ops;
pub mod optimize;
pub mod plan;
pub mod predicate;
pub mod qm;
pub mod synthesize;
pub mod universe;

pub use budget::{Budget, BudgetBreach, BudgetExhausted, BudgetResource};
pub use cache::{ColumnEvalCache, ColumnPhiData};
pub use column::{
    learn_all_columns, learn_column_automata, learn_column_automata_budgeted,
    learn_column_extractors,
};
pub use exec::{execute, execute_nodes_budgeted};
pub use fingerprint::{fingerprint, Fingerprint, ProgramCache};
pub use ops::ValueInterner;
pub use plan::{plan_with_tree, Plan, PlanStep, StepMethod};
pub use predicate::{learn_predicate, learn_predicate_reference};
pub use synthesize::{
    learn_transformation, learn_transformation_exhaustive, Example, SynthConfig, SynthError,
    SynthProfile, Synthesis,
};
