//! Query planning for synthesized programs (the planning half of Appendix C).
//!
//! [`plan`] decomposes a program's predicate into per-column filters, equi-join
//! constraints and a residual, then chooses a join order and a physical method for
//! every step:
//!
//! * **scan** — materialize the first column from the tag-indexed occurrence lists;
//! * **interval join** — when the new column's join extractor is a pure parent chain
//!   `parent^q(n)`, the constraint is an ancestor/descendant relation and is answered
//!   with a pre-order interval test (`preorder`/`subtree_end` containment plus a depth
//!   check) instead of hashing;
//! * **hash join** — the general equi-join, probing interned join keys;
//! * **cross product** — the fallback for columns no constraint reaches, deferred to
//!   the end of the order.
//!
//! [`plan_with_tree`] additionally estimates column cardinalities from the tree's
//! per-tag occurrence lists ([`mitra_hdt::Hdt::tag_count`]) and orders joins
//! smallest-first; [`plan`] without a tree reproduces the legacy static order
//! (column 0 first, then the first joinable column) used by the code generators and
//! the program optimizer, where no document is available.
//!
//! Whatever order the planner picks, execution re-sorts the finished rows to the
//! legacy order's lexicographic position ordering (see [`legacy_order`] and
//! `exec::run_plan`), so the emitted table is byte-identical for every plan shape.

use mitra_dsl::ast::{CompareOp, NodeExtractor, Operand, Predicate, Program};
use mitra_dsl::eval::eval_column;
use mitra_dsl::pretty;
use mitra_hdt::{Hdt, NodeId};

/// A join/filter plan derived from a program's predicate.
#[derive(Debug, Clone)]
pub struct Plan {
    /// Per-column constant filters (conjunction of atoms mentioning only that column).
    pub column_filters: Vec<Vec<Predicate>>,
    /// Equality join constraints between two columns.
    pub joins: Vec<JoinConstraint>,
    /// Whatever could not be pushed down or turned into a join.
    pub residual: Predicate,
    /// The residual in clause form (each clause a disjunction of literals), kept
    /// alongside [`Plan::residual`] so the executor can evaluate it column-at-a-time.
    pub residual_clauses: Vec<Vec<Predicate>>,
    /// Column evaluation/join order (a permutation of `0..arity`).
    pub order: Vec<usize>,
    /// One physical step per column, in execution order (`steps[i].col == order[i]`).
    pub steps: Vec<PlanStep>,
    /// Indices into [`Plan::joins`] of constraints that did not drive any join step
    /// (e.g. a second constraint between an already-joined pair); they are re-checked
    /// during residual filtering.
    pub unused_joins: Vec<usize>,
    /// Per-column cardinality estimates used for ordering (empty for static plans).
    pub estimates: Vec<u64>,
}

/// An equi-join constraint `(λn.ϕa) t[a] = (λn.ϕb) t[b]`.
#[derive(Debug, Clone)]
pub struct JoinConstraint {
    /// Left column index.
    pub left_col: usize,
    /// Node extractor applied to the left column's node.
    pub left_extractor: NodeExtractor,
    /// Right column index.
    pub right_col: usize,
    /// Node extractor applied to the right column's node.
    pub right_extractor: NodeExtractor,
}

impl JoinConstraint {
    /// True when this constraint can extend a partial tuple over `placed` with `col`.
    fn links(&self, col: usize, placed: &ColSet) -> bool {
        (self.left_col == col && placed.contains(self.right_col))
            || (self.right_col == col && placed.contains(self.left_col))
    }

    /// Normalizes the constraint so the first extractor applies to the *new* column
    /// `col`; returns `(new_extractor, old_col, old_extractor)`.
    pub fn oriented(&self, col: usize) -> (&NodeExtractor, usize, &NodeExtractor) {
        if self.left_col == col {
            (&self.left_extractor, self.right_col, &self.right_extractor)
        } else {
            (&self.right_extractor, self.left_col, &self.left_extractor)
        }
    }
}

/// One step of a plan: which column is brought in and by which physical method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStep {
    /// The column this step materializes.
    pub col: usize,
    /// How the column is combined with the tuples built so far.
    pub method: StepMethod,
}

/// Physical method of a plan step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepMethod {
    /// Materialize the (filtered) column as the initial tuple set.
    Scan,
    /// Sort-merge over pre-order intervals: the new column's nodes are matched
    /// against the subtree interval of the anchor node derived from the old column.
    IntervalJoin {
        /// Index into [`Plan::joins`] of the driving constraint.
        join: usize,
        /// Length `q` of the new column's `parent^q` chain (≥ 1).
        chain_len: usize,
    },
    /// Hash join on interned join keys.
    HashJoin {
        /// Index into [`Plan::joins`] of the driving constraint.
        join: usize,
    },
    /// Cross product with the new column (no constraint reaches it yet).
    CrossProduct,
}

/// A small bitset over column indices: the planner's ordering loops test membership
/// per candidate column, and a bitset keeps that O(1) instead of the former
/// O(arity) `Vec::contains` scans.  Programs are bounded far below 256 columns.
#[derive(Debug, Clone, Copy, Default)]
struct ColSet([u64; 4]);

impl ColSet {
    fn insert(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    fn contains(&self, i: usize) -> bool {
        self.0[i / 64] >> (i % 64) & 1 == 1
    }
}

/// If the predicate references exactly one tuple component, returns its index.
/// Such single-literal clauses are pushed down onto the column as a pre-filter
/// (this covers constant comparisons, their negations, and same-column
/// extractor comparisons).
fn single_column_of(p: &Predicate) -> Option<usize> {
    match p {
        Predicate::Compare {
            index,
            rhs: Operand::Const(_),
            ..
        } => Some(*index),
        Predicate::Compare {
            index,
            rhs: Operand::Column { index: j, .. },
            ..
        } if index == j => Some(*index),
        Predicate::Not(inner) => single_column_of(inner),
        _ => None,
    }
}

/// Builds an execution plan for a program without document statistics: joins are
/// ordered by the legacy static rule (column 0 first, then the first joinable
/// column).  Used by the code generators and the Appendix C optimizer, which
/// analyze programs independently of any particular tree.
pub fn plan(program: &Program) -> Plan {
    build(program, None)
}

/// Builds a cost-based execution plan for a program over a concrete document:
/// column cardinalities are estimated from the tree's per-tag occurrence lists
/// (exactly, for columns with pushed-down filters) and joins are ordered
/// smallest-first.  This is the plan `exec::run_plan` executes and `--explain`
/// renders.
pub fn plan_with_tree(program: &Program, tree: &Hdt) -> Plan {
    plan_and_columns(program, tree).0
}

/// Like [`plan_with_tree`], also returning the evaluated (and pre-filtered) columns
/// so the executor does not evaluate them a second time.  Cardinality estimates are
/// the tag-occurrence counts for unfiltered columns and the exact filtered lengths
/// otherwise.
pub fn plan_and_columns(program: &Program, tree: &Hdt) -> (Plan, Vec<Vec<NodeId>>) {
    let base = build(program, None);
    let columns: Vec<Vec<NodeId>> = program
        .extractor
        .columns
        .iter()
        .enumerate()
        .map(|(i, pi)| {
            let mut nodes = eval_column(tree, pi);
            if !base.column_filters[i].is_empty() {
                // Column filters mention only column i; evaluate them directly
                // against the node (no dummy tuple).
                nodes.retain(|n| {
                    base.column_filters[i]
                        .iter()
                        .all(|f| crate::ops::eval_filter_on_node(tree, *n, f))
                });
            }
            nodes
        })
        .collect();
    let estimates: Vec<u64> = columns
        .iter()
        .enumerate()
        .map(|(i, nodes)| {
            if base.column_filters[i].is_empty() {
                match program.extractor.columns[i].last_tag() {
                    Some(tag) => tree.tag_count(tag) as u64,
                    // The identity extractor yields exactly the root.
                    None => 1,
                }
            } else {
                nodes.len() as u64
            }
        })
        .collect();
    (build(program, Some(estimates)), columns)
}

/// The legacy join order: column 0 first, then repeatedly the smallest-indexed
/// column some constraint links to the joined set, falling back to the smallest
/// unplaced column.  The executor sorts its finished rows by the per-column
/// positions permuted into this order, which is exactly the emission order of the
/// pre-planner progressive join — the output contract every plan must honor.
pub fn legacy_order(arity: usize, joins: &[JoinConstraint]) -> Vec<usize> {
    order_columns(arity, joins, None).0
}

/// Chooses the column order and the driving constraint per step.  With estimates,
/// starts from the smallest column and repeatedly adds the smallest joinable one
/// (ties broken by column index); without, reproduces the legacy static order.
/// Cross products are always deferred: a non-joinable column is only placed when
/// no joinable one exists.  Returns `(order, per-step driving join index)`.
fn order_columns(
    arity: usize,
    joins: &[JoinConstraint],
    estimates: Option<&[u64]>,
) -> (Vec<usize>, Vec<Option<usize>>) {
    let mut order = Vec::with_capacity(arity);
    let mut drivers = Vec::with_capacity(arity);
    if arity == 0 {
        return (order, drivers);
    }
    let cost = |c: usize| estimates.map(|e| e[c]).unwrap_or(0);
    let first = match estimates {
        None => 0,
        Some(_) => (0..arity).min_by_key(|&c| (cost(c), c)).unwrap_or(0),
    };
    let mut placed = ColSet::default();
    order.push(first);
    drivers.push(None);
    placed.insert(first);
    while order.len() < arity {
        let mut joinable = (0..arity)
            .filter(|&c| !placed.contains(c) && joins.iter().any(|j| j.links(c, &placed)));
        let next = match estimates {
            None => joinable.next(),
            Some(_) => joinable.min_by_key(|&c| (cost(c), c)),
        };
        let next = next.or_else(|| match estimates {
            None => (0..arity).find(|&c| !placed.contains(c)),
            Some(_) => (0..arity)
                .filter(|&c| !placed.contains(c))
                .min_by_key(|&c| (cost(c), c)),
        });
        // `order.len() < arity` guarantees an unplaced column exists, so the
        // fallback always finds one; bail out instead of panicking if not.
        let Some(next) = next else { break };
        // The driving constraint is the first (by index) linking the column in.
        let driver = joins.iter().position(|j| j.links(next, &placed));
        order.push(next);
        drivers.push(driver);
        placed.insert(next);
    }
    (order, drivers)
}

fn build(program: &Program, estimates: Option<Vec<u64>>) -> Plan {
    let arity = program.arity();
    let cnf = program.predicate.to_cnf();
    let mut column_filters: Vec<Vec<Predicate>> = vec![Vec::new(); arity];
    let mut joins: Vec<JoinConstraint> = Vec::new();
    let mut residual_clauses: Vec<Vec<Predicate>> = Vec::new();

    for clause in cnf {
        if clause.len() == 1 {
            if let Some(col) = single_column_of(&clause[0]) {
                column_filters[col].push(clause[0].clone());
                continue;
            }
            if let Predicate::Compare {
                extractor,
                index,
                op: CompareOp::Eq,
                rhs:
                    Operand::Column {
                        extractor: rhs_extractor,
                        index: rhs_index,
                    },
            } = &clause[0]
            {
                if index != rhs_index {
                    joins.push(JoinConstraint {
                        left_col: *index,
                        left_extractor: extractor.clone(),
                        right_col: *rhs_index,
                        right_extractor: rhs_extractor.clone(),
                    });
                    continue;
                }
            }
        }
        residual_clauses.push(clause);
    }

    let residual =
        Predicate::conjunction(residual_clauses.iter().cloned().map(Predicate::disjunction));

    let (order, drivers) = order_columns(arity, &joins, estimates.as_deref());
    let mut used = vec![false; joins.len()];
    let steps: Vec<PlanStep> = order
        .iter()
        .zip(&drivers)
        .enumerate()
        .map(|(step_idx, (&col, &driver))| {
            let method = match driver {
                None if step_idx == 0 => StepMethod::Scan,
                None => StepMethod::CrossProduct,
                Some(join) => {
                    used[join] = true;
                    let (new_extractor, _, _) = joins[join].oriented(col);
                    match new_extractor.parent_chain_depth() {
                        Some(q) if q >= 1 => StepMethod::IntervalJoin { join, chain_len: q },
                        _ => StepMethod::HashJoin { join },
                    }
                }
            };
            PlanStep { col, method }
        })
        .collect();
    let unused_joins: Vec<usize> = (0..joins.len()).filter(|&j| !used[j]).collect();

    Plan {
        column_filters,
        joins,
        residual,
        residual_clauses,
        order,
        steps,
        unused_joins,
        estimates: estimates.unwrap_or_default(),
    }
}

impl Plan {
    /// Number of steps executed with each physical method, as
    /// `(interval_joins, hash_joins, cross_products)`.
    pub fn method_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for s in &self.steps {
            match s.method {
                StepMethod::Scan => {}
                StepMethod::IntervalJoin { .. } => counts.0 += 1,
                StepMethod::HashJoin { .. } => counts.1 += 1,
                StepMethod::CrossProduct => counts.2 += 1,
            }
        }
        counts
    }

    /// Renders the plan as a stable, human-readable step list (the `--explain`
    /// output).  One line per physical step, then the residual work and the output
    /// ordering contract.
    pub fn explain(&self, program: &Program) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "plan: {} column(s), {} join constraint(s), {} pushed-down filter(s)\n",
            program.arity(),
            self.joins.len(),
            self.column_filters.iter().map(Vec::len).sum::<usize>(),
        ));
        for (i, step) in self.steps.iter().enumerate() {
            let col = step.col;
            let est = self
                .estimates
                .get(col)
                .map(|e| format!(", est {e}"))
                .unwrap_or_default();
            let filters = if self.column_filters[col].is_empty() {
                String::new()
            } else {
                let fs: Vec<String> = self.column_filters[col]
                    .iter()
                    .map(pretty::predicate)
                    .collect();
                format!(" where {}", fs.join(" && "))
            };
            let source = pretty::column_extractor(&program.extractor.columns[col]);
            match step.method {
                StepMethod::Scan => {
                    out.push_str(&format!(
                        "  {}. scan         t[{col}] := {source}{filters}{est}\n",
                        i + 1
                    ));
                }
                StepMethod::IntervalJoin { join, chain_len } => {
                    let (_, old_col, old_extractor) = self.joins[join].oriented(col);
                    out.push_str(&format!(
                        "  {}. interval-join t[{col}] := {source}{filters} inside subtree of ((\\n.{}) t[{old_col}]) at depth +{chain_len}{est}\n",
                        i + 1,
                        pretty::node_extractor(old_extractor),
                    ));
                }
                StepMethod::HashJoin { join } => {
                    let (new_extractor, old_col, old_extractor) = self.joins[join].oriented(col);
                    out.push_str(&format!(
                        "  {}. hash-join    t[{col}] := {source}{filters} on ((\\n.{}) t[{col}]) = ((\\n.{}) t[{old_col}]){est}\n",
                        i + 1,
                        pretty::node_extractor(new_extractor),
                        pretty::node_extractor(old_extractor),
                    ));
                }
                StepMethod::CrossProduct => {
                    out.push_str(&format!(
                        "  {}. cross        t[{col}] := {source}{filters}{est}\n",
                        i + 1
                    ));
                }
            }
        }
        let residual_desc = if self.residual_clauses.is_empty() && self.unused_joins.is_empty() {
            "none".to_string()
        } else {
            let mut parts = Vec::new();
            if !self.residual_clauses.is_empty() {
                parts.push(format!("{} clause(s)", self.residual_clauses.len()));
            }
            if !self.unused_joins.is_empty() {
                parts.push(format!(
                    "{} unused join constraint(s) re-checked",
                    self.unused_joins.len()
                ));
            }
            parts.join(", ")
        };
        out.push_str(&format!("  residual: {residual_desc}\n"));
        out.push_str(&format!(
            "  output: rows sorted by column positions in order {:?}\n",
            legacy_order(program.arity(), &self.joins)
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_dsl::ast::{ColumnExtractor, TableExtractor};
    use mitra_dsl::Value;
    use mitra_hdt::generate::social_network;

    fn filter_lt(index: usize, tag: &str, k: i64) -> Predicate {
        Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::Id, tag, 0),
            index,
            op: CompareOp::Lt,
            rhs: Operand::Const(Value::int(k)),
        }
    }

    fn join(l: usize, r: usize) -> Predicate {
        Predicate::Compare {
            extractor: NodeExtractor::Id,
            index: l,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::Id,
                index: r,
            },
        }
    }

    fn person() -> ColumnExtractor {
        ColumnExtractor::children(ColumnExtractor::Input, "Person")
    }

    #[test]
    fn static_plan_reproduces_legacy_order() {
        // Joins (0,2) only; column 1 must be cross-producted last: [0, 2, 1].
        let program = mitra_dsl::Program::new(
            TableExtractor::new(vec![person(), person(), person()]),
            join(0, 2),
        );
        let p = plan(&program);
        assert_eq!(p.order, vec![0, 2, 1]);
        assert_eq!(p.order, legacy_order(3, &p.joins));
        assert_eq!(p.steps[2].method, StepMethod::CrossProduct);
        assert!(p.estimates.is_empty());
    }

    #[test]
    fn negated_and_same_column_literals_are_pushed_down() {
        let not_filter = Predicate::not(filter_lt(0, "id", 3));
        let same_col = Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::Id, "id", 0),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::child(NodeExtractor::Id, "id", 0),
                index: 0,
            },
        };
        let program = mitra_dsl::Program::new(
            TableExtractor::new(vec![person()]),
            Predicate::and(not_filter, same_col),
        );
        let p = plan(&program);
        assert_eq!(p.column_filters[0].len(), 2);
        assert_eq!(p.residual, Predicate::True);
        assert!(p.residual_clauses.is_empty());
    }

    #[test]
    fn cost_based_order_starts_from_smallest_column() {
        // Column 1 is filtered down to id < 2 (1 node); the cost-based plan must
        // start there even though the static order starts at column 0.
        let tree = social_network(6, 1);
        let program = mitra_dsl::Program::new(
            TableExtractor::new(vec![person(), person()]),
            Predicate::and(filter_lt(1, "id", 2), join(0, 1)),
        );
        let p = plan_with_tree(&program, &tree);
        assert_eq!(p.order[0], 1);
        assert_eq!(p.estimates.len(), 2);
        assert_eq!(p.estimates[1], 1);
        assert_eq!(p.estimates[0], 6);
        // The legacy output contract is unchanged.
        assert_eq!(legacy_order(2, &p.joins), vec![0, 1]);
    }

    #[test]
    fn parent_chain_joins_become_interval_joins() {
        // parent(t[0]) = parent(parent(t[1])): whichever side joins second has a
        // pure parent chain, so the step must be an interval join.
        let pred = Predicate::Compare {
            extractor: NodeExtractor::parent(NodeExtractor::Id),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::parent(NodeExtractor::parent(NodeExtractor::Id)),
                index: 1,
            },
        };
        let program = mitra_dsl::Program::new(TableExtractor::new(vec![person(), person()]), pred);
        let p = plan(&program);
        assert_eq!(p.method_counts().0, 1, "expected one interval join");
    }

    #[test]
    fn child_extractor_joins_stay_hash_joins() {
        let pred = Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::Id, "id", 0),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::child(NodeExtractor::Id, "fid", 0),
                index: 1,
            },
        };
        let program = mitra_dsl::Program::new(TableExtractor::new(vec![person(), person()]), pred);
        let p = plan(&program);
        assert_eq!(p.method_counts(), (0, 1, 0));
    }

    #[test]
    fn duplicate_constraints_land_in_unused_joins() {
        let program = mitra_dsl::Program::new(
            TableExtractor::new(vec![person(), person()]),
            Predicate::and(join(0, 1), join(1, 0)),
        );
        let p = plan(&program);
        assert_eq!(p.joins.len(), 2);
        assert_eq!(p.unused_joins.len(), 1);
    }

    #[test]
    fn explain_renders_each_step() {
        let tree = social_network(4, 1);
        let program = mitra_dsl::Program::new(
            TableExtractor::new(vec![person(), person(), person()]),
            Predicate::and(filter_lt(2, "id", 3), join(0, 2)),
        );
        let p = plan_with_tree(&program, &tree);
        let text = p.explain(&program);
        assert!(text.contains("scan"), "{text}");
        assert!(text.contains("hash-join"), "{text}");
        assert!(text.contains("cross"), "{text}");
        assert!(text.contains("output: rows sorted"), "{text}");
    }
}
