//! Physical operators backing the query planner (`plan.rs`) and the executor
//! (`exec.rs`).
//!
//! The operator inventory is deliberately small — scan, hash join, structural
//! interval join, cross product, and a vectorized residual filter — and every
//! operator works over [`Tuples`], a struct-of-arrays tuple store that tracks, for
//! each tuple and column, the *position* of the chosen node inside its filtered
//! column.  Those positions are what lets the executor emit rows in the legacy
//! progressive-join order no matter which join order the planner chose.
//!
//! Join keys mirror the comparison semantics of Figure 7: internal nodes join by
//! identity, leaves by the *rendered* typed value of their data (so `"1"` and
//! `"1.0"` collide exactly as the pre-planner executor's string keys did).
//! [`KeyInterner`] memoizes that rendering per distinct raw string, replacing the
//! old `String` allocation per probe with a `u32` id.

use crate::plan::Plan;
use mitra_dsl::ast::{CompareOp, NodeExtractor, Operand, Predicate};
use mitra_dsl::eval::{eval_node_extractor, eval_predicate, node_value};
use mitra_dsl::Value;
use mitra_hdt::{Hdt, NodeId};
use std::collections::HashMap;

/// Key used for hash joins: node identity for internal nodes, an interned rendered
/// value id for leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinKey {
    /// An internal node, joining by identity.
    Node(NodeId),
    /// A leaf, joining by the interned id of its rendered data value.
    Data(u32),
}

/// Interns leaf data for join keys.  Two leaves receive the same id exactly when
/// `Value::from_data(data).render()` agrees — the equality the pre-planner executor
/// implemented by allocating that rendered `String` for every probe.  The interner
/// renders once per *distinct raw string* per execution and hands out `Copy` ids.
pub struct KeyInterner<'t> {
    tree: &'t Hdt,
    by_raw: HashMap<&'t str, u32>,
    by_rendered: HashMap<String, u32>,
}

impl<'t> KeyInterner<'t> {
    /// Creates an empty interner over one tree.
    pub fn new(tree: &'t Hdt) -> Self {
        KeyInterner {
            tree,
            by_raw: HashMap::new(),
            by_rendered: HashMap::new(),
        }
    }

    /// The join key of a node.
    pub fn key(&mut self, node: NodeId) -> JoinKey {
        if !self.tree.is_leaf(node) {
            return JoinKey::Node(node);
        }
        let raw = self.tree.data(node).unwrap_or("");
        if let Some(&id) = self.by_raw.get(raw) {
            return JoinKey::Data(id);
        }
        let rendered = Value::from_data(raw).render();
        let next = self.by_rendered.len() as u32;
        let id = *self.by_rendered.entry(rendered).or_insert(next);
        self.by_raw.insert(raw, id);
        JoinKey::Data(id)
    }
}

/// Interns [`Value`]s to dense `u32` ids.  The migrate query path uses this for its
/// hash-join keys instead of rendering every cell to a fresh `String`.
#[derive(Debug, Default)]
pub struct ValueInterner {
    ids: HashMap<Value, u32>,
}

impl ValueInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        ValueInterner::default()
    }

    /// The id of a value, assigning the next free id on first sight.
    pub fn intern(&mut self, v: &Value) -> u32 {
        if let Some(&id) = self.ids.get(v) {
            return id;
        }
        let id = self.ids.len() as u32;
        self.ids.insert(v.clone(), id);
        id
    }
}

/// A struct-of-arrays tuple store: `arity`-strided rows of node ids plus, in
/// lockstep, the position of each node inside its filtered column.  Cells of
/// not-yet-joined columns hold `NodeId(u32::MAX)` / `u32::MAX` placeholders.
#[derive(Debug, Clone)]
pub struct Tuples {
    arity: usize,
    nodes: Vec<NodeId>,
    pos: Vec<u32>,
}

impl Tuples {
    /// An empty store of the given arity.
    pub fn new(arity: usize) -> Self {
        Tuples {
            arity,
            nodes: Vec::new(),
            pos: Vec::new(),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.nodes.len().checked_div(self.arity).unwrap_or(0)
    }

    /// True when no tuples are stored.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node ids of tuple `i`, indexed by column.
    pub fn row(&self, i: usize) -> &[NodeId] {
        &self.nodes[i * self.arity..(i + 1) * self.arity]
    }

    /// The column positions of tuple `i`, indexed by column.
    pub fn row_pos(&self, i: usize) -> &[u32] {
        &self.pos[i * self.arity..(i + 1) * self.arity]
    }

    /// Appends a copy of `src`'s tuple `i` extended with `node` (at position
    /// `position` of its column) in column `col`.
    fn push_extended(&mut self, src: &Tuples, i: usize, col: usize, node: NodeId, position: u32) {
        self.nodes.extend_from_slice(src.row(i));
        self.pos.extend_from_slice(src.row_pos(i));
        let base = self.nodes.len() - self.arity;
        self.nodes[base + col] = node;
        self.pos[base + col] = position;
    }
}

/// Materializes a filtered column as the initial tuple set (one tuple per node,
/// position = index in the column).
pub fn scan(arity: usize, col: usize, nodes: &[NodeId]) -> Tuples {
    let mut out = Tuples {
        arity,
        nodes: Vec::with_capacity(nodes.len() * arity),
        pos: Vec::with_capacity(nodes.len() * arity),
    };
    for (p, &n) in nodes.iter().enumerate() {
        out.nodes.resize(out.nodes.len() + arity, NodeId(u32::MAX));
        out.pos.resize(out.pos.len() + arity, u32::MAX);
        let base = out.nodes.len() - arity;
        out.nodes[base + col] = n;
        out.pos[base + col] = p as u32;
    }
    out
}

/// Hash join: extends each input tuple with the nodes of `col` whose derived join
/// key matches the key derived from the tuple's `old_col` node.
#[allow(clippy::too_many_arguments)]
pub fn hash_join(
    tree: &Hdt,
    interner: &mut KeyInterner<'_>,
    input: &Tuples,
    col: usize,
    col_nodes: &[NodeId],
    new_extractor: &NodeExtractor,
    old_col: usize,
    old_extractor: &NodeExtractor,
) -> Tuples {
    let mut index: HashMap<JoinKey, Vec<(NodeId, u32)>> = HashMap::new();
    for (p, &n) in col_nodes.iter().enumerate() {
        if let Some(target) = eval_node_extractor(tree, n, new_extractor) {
            let key = interner.key(target);
            index.entry(key).or_default().push((n, p as u32));
        }
    }
    let mut out = Tuples::new(input.arity);
    for i in 0..input.len() {
        let old_node = input.row(i)[old_col];
        let Some(target) = eval_node_extractor(tree, old_node, old_extractor) else {
            continue;
        };
        let key = interner.key(target);
        if let Some(matches) = index.get(&key) {
            for &(n, p) in matches {
                out.push_extended(input, i, col, n, p);
            }
        }
    }
    out
}

/// Structural interval join for constraints whose new-column extractor is a pure
/// parent chain `parent^q(n)`: a match means the tuple's anchor node (derived via
/// the old column's extractor) is the unique `q`-th ancestor of the new node, i.e.
/// the new node lies strictly inside the anchor's pre-order interval at depth
/// `depth(anchor) + q`.  Leaf anchors have an empty strict interval, matching the
/// hash-join semantics where a `Data` key never equals a `Node` key.
pub fn interval_join(
    tree: &Hdt,
    input: &Tuples,
    col: usize,
    col_nodes: &[NodeId],
    chain_len: usize,
    old_col: usize,
    old_extractor: &NodeExtractor,
) -> Tuples {
    // Sort the new column once by pre-order number (duplicated nodes stay adjacent
    // in position order); every probe is then a binary-searched range scan.
    let mut sorted: Vec<(u32, u32, NodeId)> = col_nodes
        .iter()
        .enumerate()
        .map(|(p, &n)| (tree.preorder_number(n), p as u32, n))
        .collect();
    sorted.sort_unstable();
    let pres: Vec<u32> = sorted.iter().map(|e| e.0).collect();
    let mut out = Tuples::new(input.arity);
    for i in 0..input.len() {
        let old_node = input.row(i)[old_col];
        let Some(anchor) = eval_node_extractor(tree, old_node, old_extractor) else {
            continue;
        };
        let lo = tree.preorder_number(anchor) + 1;
        let hi = tree.subtree_end(anchor);
        if lo >= hi {
            continue;
        }
        let want_depth = tree.node_depth(anchor) + chain_len as u32;
        let a = pres.partition_point(|&p| p < lo);
        let b = pres.partition_point(|&p| p < hi);
        for &(_, p, n) in &sorted[a..b] {
            if tree.node_depth(n) == want_depth {
                out.push_extended(input, i, col, n, p);
            }
        }
    }
    out
}

/// Cross product: extends each input tuple with every node of `col`.
pub fn cross_join(input: &Tuples, col: usize, col_nodes: &[NodeId]) -> Tuples {
    let mut out = Tuples::new(input.arity);
    for i in 0..input.len() {
        for (p, &n) in col_nodes.iter().enumerate() {
            out.push_extended(input, i, col, n, p as u32);
        }
    }
    out
}

/// Evaluates a single-column filter directly against a node, mirroring
/// [`eval_predicate`] on a tuple whose every component is that node.  This is what
/// column pre-filtering uses instead of allocating a dummy tuple per node × filter.
pub fn eval_filter_on_node(tree: &Hdt, node: NodeId, p: &Predicate) -> bool {
    match p {
        Predicate::True => true,
        Predicate::False => false,
        Predicate::Not(inner) => !eval_filter_on_node(tree, node, inner),
        Predicate::And(a, b) => {
            eval_filter_on_node(tree, node, a) && eval_filter_on_node(tree, node, b)
        }
        Predicate::Or(a, b) => {
            eval_filter_on_node(tree, node, a) || eval_filter_on_node(tree, node, b)
        }
        Predicate::Compare {
            extractor, op, rhs, ..
        } => {
            let Some(left) = eval_node_extractor(tree, node, extractor) else {
                return false;
            };
            match rhs {
                Operand::Const(c) => match node_value(tree, left).compare(c) {
                    Some(ord) => op.test(ord),
                    None => false,
                },
                Operand::Column {
                    extractor: ext2, ..
                } => {
                    let Some(right) = eval_node_extractor(tree, node, ext2) else {
                        return false;
                    };
                    compare_nodes(tree, left, right, *op)
                }
            }
        }
    }
}

/// Figure-7 comparison of two derived nodes: leaves compare data values, internal
/// nodes only support identity (`=`/`!=`), mixed comparisons are false.
fn compare_nodes(tree: &Hdt, l: NodeId, r: NodeId, op: CompareOp) -> bool {
    let (ll, rl) = (tree.is_leaf(l), tree.is_leaf(r));
    if ll && rl {
        match node_value(tree, l).compare(&node_value(tree, r)) {
            Some(ord) => op.test(ord),
            None => false,
        }
    } else if !ll && !rl {
        match op {
            CompareOp::Eq => l == r,
            CompareOp::Ne => l != r,
            _ => false,
        }
    } else {
        false
    }
}

/// Join-key equality of two derived nodes (used to re-check join constraints that
/// did not drive a join step): internal nodes by identity, leaves by rendered data.
fn join_keys_equal(tree: &Hdt, a: NodeId, b: NodeId) -> bool {
    match (tree.is_leaf(a), tree.is_leaf(b)) {
        (false, false) => a == b,
        (true, true) => {
            let da = tree.data(a).unwrap_or("");
            let db = tree.data(b).unwrap_or("");
            da == db || Value::from_data(da).render() == Value::from_data(db).render()
        }
        _ => false,
    }
}

/// The right-hand side of a compiled residual atom.
#[derive(Debug, Clone)]
enum AtomRhs {
    /// Compare against a constant.
    Const(Value),
    /// Compare against another derived-node pair (index into `ResidualPlan::pairs`).
    Pair(usize),
}

/// One literal of a residual clause, compiled against the derived-node pair table.
#[derive(Debug, Clone)]
enum ResidualAtom {
    /// `(pair ⊙ rhs) ⊕ negated` with the Figure-7 ⊥-is-false convention applied
    /// before the negation, matching `eval_predicate` on `Not(Compare…)`.
    Cmp {
        pair: usize,
        op: CompareOp,
        rhs: AtomRhs,
        negated: bool,
    },
    /// Anything else falls back to the tuple-at-a-time evaluator.
    Fallback(Predicate),
}

/// The residual work after the join steps, compiled for column-at-a-time
/// evaluation: a table of distinct `(column, extractor)` pairs, the residual CNF
/// clauses over those pairs, and the unused join constraints to re-check.
#[derive(Debug, Clone)]
pub struct ResidualPlan {
    pairs: Vec<(usize, NodeExtractor)>,
    clauses: Vec<Vec<ResidualAtom>>,
    checks: Vec<(usize, usize)>,
}

fn pair_id(pairs: &mut Vec<(usize, NodeExtractor)>, col: usize, ext: &NodeExtractor) -> usize {
    if let Some(i) = pairs.iter().position(|(c, e)| *c == col && e == ext) {
        return i;
    }
    pairs.push((col, ext.clone()));
    pairs.len() - 1
}

impl ResidualPlan {
    /// Compiles the residual part of a plan.
    pub fn build(plan: &Plan) -> ResidualPlan {
        let mut pairs: Vec<(usize, NodeExtractor)> = Vec::new();
        let checks: Vec<(usize, usize)> = plan
            .unused_joins
            .iter()
            .map(|&j| {
                let c = &plan.joins[j];
                (
                    pair_id(&mut pairs, c.left_col, &c.left_extractor),
                    pair_id(&mut pairs, c.right_col, &c.right_extractor),
                )
            })
            .collect();
        let clauses: Vec<Vec<ResidualAtom>> = plan
            .residual_clauses
            .iter()
            .map(|clause| {
                clause
                    .iter()
                    .map(|lit| compile_literal(&mut pairs, lit))
                    .collect()
            })
            .collect();
        ResidualPlan {
            pairs,
            clauses,
            checks,
        }
    }

    /// True when there is nothing to filter (every tuple survives).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty() && self.checks.is_empty()
    }
}

fn compile_literal(pairs: &mut Vec<(usize, NodeExtractor)>, lit: &Predicate) -> ResidualAtom {
    let mut negated = false;
    let mut cur = lit;
    while let Predicate::Not(inner) = cur {
        negated = !negated;
        cur = inner;
    }
    if let Predicate::Compare {
        extractor,
        index,
        op,
        rhs,
    } = cur
    {
        let pair = pair_id(pairs, *index, extractor);
        let rhs = match rhs {
            Operand::Const(c) => AtomRhs::Const(c.clone()),
            Operand::Column {
                extractor: ext2,
                index: j,
            } => AtomRhs::Pair(pair_id(pairs, *j, ext2)),
        };
        return ResidualAtom::Cmp {
            pair,
            op: *op,
            rhs,
            negated,
        };
    }
    ResidualAtom::Fallback(lit.clone())
}

/// Runs the residual filter over the tuple range `[start, end)` column-at-a-time:
/// first the derived node of every `(column, extractor)` pair is computed for the
/// whole range, then unused-join checks and clause masks are applied over those
/// arrays.  Returns the (global) indices of surviving tuples in order.
pub fn filter_tuples(
    tree: &Hdt,
    tuples: &Tuples,
    start: usize,
    end: usize,
    rp: &ResidualPlan,
) -> Vec<u32> {
    let n = end - start;
    if n == 0 {
        return Vec::new();
    }
    if rp.is_empty() {
        return (start..end).map(|i| i as u32).collect();
    }
    let derived: Vec<Vec<Option<NodeId>>> = rp
        .pairs
        .iter()
        .map(|(col, ext)| {
            (start..end)
                .map(|i| eval_node_extractor(tree, tuples.row(i)[*col], ext))
                .collect()
        })
        .collect();
    let mut keep = vec![true; n];
    for &(lp, rpair) in &rp.checks {
        for (k, kept) in keep.iter_mut().enumerate() {
            if *kept {
                *kept = match (derived[lp][k], derived[rpair][k]) {
                    (Some(l), Some(r)) => join_keys_equal(tree, l, r),
                    _ => false,
                };
            }
        }
    }
    let mut mask = vec![false; n];
    for clause in &rp.clauses {
        mask.iter_mut().for_each(|m| *m = false);
        for atom in clause {
            match atom {
                ResidualAtom::Cmp {
                    pair,
                    op,
                    rhs,
                    negated,
                } => {
                    for k in 0..n {
                        if !keep[k] || mask[k] {
                            continue;
                        }
                        let raw = match derived[*pair][k] {
                            None => false,
                            Some(l) => match rhs {
                                AtomRhs::Const(c) => match node_value(tree, l).compare(c) {
                                    Some(ord) => op.test(ord),
                                    None => false,
                                },
                                AtomRhs::Pair(j) => match derived[*j][k] {
                                    Some(r) => compare_nodes(tree, l, r, *op),
                                    None => false,
                                },
                            },
                        };
                        mask[k] = raw != *negated;
                    }
                }
                ResidualAtom::Fallback(p) => {
                    for k in 0..n {
                        if !keep[k] || mask[k] {
                            continue;
                        }
                        mask[k] = eval_predicate(tree, tuples.row(start + k), p);
                    }
                }
            }
        }
        for k in 0..n {
            keep[k] &= mask[k];
        }
    }
    (0..n)
        .filter(|&k| keep[k])
        .map(|k| (start + k) as u32)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_hdt::HdtBuilder;

    fn two_person_tree() -> Hdt {
        HdtBuilder::new("root")
            .open("Person")
            .leaf("id", "1")
            .leaf("score", "1.0")
            .close()
            .open("Person")
            .leaf("id", "01")
            .leaf("score", "2")
            .close()
            .build()
    }

    #[test]
    fn interned_keys_match_rendered_value_semantics() {
        let tree = two_person_tree();
        let mut interner = KeyInterner::new(&tree);
        let ids = tree.descendants_with_tag(tree.root(), "id").to_vec();
        // "1" and "01" both render to "1": identical keys.
        assert_eq!(interner.key(ids[0]), interner.key(ids[1]));
        let scores = tree.descendants_with_tag(tree.root(), "score").to_vec();
        // "1.0" renders to "1" as well — the legacy collision must be preserved.
        assert_eq!(interner.key(ids[0]), interner.key(scores[0]));
        assert_ne!(interner.key(scores[0]), interner.key(scores[1]));
        // Internal nodes key by identity, never equal to a leaf key.
        let persons = tree.children_with_tag(tree.root(), "Person").to_vec();
        assert_eq!(interner.key(persons[0]), JoinKey::Node(persons[0]));
        assert_ne!(interner.key(persons[0]), interner.key(ids[0]));
    }

    #[test]
    fn value_interner_is_stable_per_value() {
        let mut vi = ValueInterner::new();
        let a = vi.intern(&Value::int(7));
        let b = vi.intern(&Value::from_data("7"));
        assert_eq!(a, b);
        assert_ne!(a, vi.intern(&Value::from_data("8")));
    }

    #[test]
    fn scan_records_positions() {
        let tree = two_person_tree();
        let persons = tree.children_with_tag(tree.root(), "Person").to_vec();
        let t = scan(2, 1, &persons);
        assert_eq!(t.len(), 2);
        assert_eq!(t.row(0)[1], persons[0]);
        assert_eq!(t.row_pos(0), &[u32::MAX, 0]);
        assert_eq!(t.row_pos(1), &[u32::MAX, 1]);
    }

    #[test]
    fn interval_join_matches_parent_chain_hash_join() {
        let tree = two_person_tree();
        let persons = tree.children_with_tag(tree.root(), "Person").to_vec();
        let ids = tree.descendants_with_tag(tree.root(), "id").to_vec();
        let input = scan(2, 0, &persons);
        // Constraint: parent(t[1]) = t[0], i.e. the id leaf's parent is the person.
        let chain = NodeExtractor::parent(NodeExtractor::Id);
        let mut interner = KeyInterner::new(&tree);
        let via_hash = hash_join(
            &tree,
            &mut interner,
            &input,
            1,
            &ids,
            &chain,
            0,
            &NodeExtractor::Id,
        );
        let via_interval = interval_join(&tree, &input, 1, &ids, 1, 0, &NodeExtractor::Id);
        assert_eq!(via_hash.len(), 2);
        assert_eq!(via_interval.len(), via_hash.len());
        for i in 0..via_hash.len() {
            assert_eq!(via_interval.row(i), via_hash.row(i));
            assert_eq!(via_interval.row_pos(i), via_hash.row_pos(i));
        }
    }

    #[test]
    fn filter_tuples_handles_negated_bottom_as_false() {
        // Literal: !(child(n, missing, 0) = 1).  The extractor is ⊥ on every node,
        // so the inner compare is false and the negation keeps every tuple —
        // exactly eval_predicate's behavior.
        let tree = two_person_tree();
        let persons = tree.children_with_tag(tree.root(), "Person").to_vec();
        let tuples = scan(1, 0, &persons);
        let lit = Predicate::not(Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::Id, "missing", 0),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Const(Value::int(1)),
        });
        let mut pairs = Vec::new();
        let rp = ResidualPlan {
            clauses: vec![vec![compile_literal(&mut pairs, &lit)]],
            pairs,
            checks: Vec::new(),
        };
        let survivors = filter_tuples(&tree, &tuples, 0, tuples.len(), &rp);
        assert_eq!(survivors, vec![0, 1]);
    }
}
