//! Program optimization (Appendix C): shared-prefix detection and plan reporting.
//!
//! Beyond the join-based execution engine in [`crate::exec`], Appendix C of the paper
//! describes an optimization that detects when two column extractors, composed with the
//! node extractors of an equality predicate, are *semantically equivalent prefixes* of
//! each other — in which case a single traversal can drive both columns and the
//! predicate is guaranteed by construction.  This module implements that analysis and a
//! human-readable optimization report; the actual execution uses [`crate::exec`].

use crate::exec::{plan, Plan};
use mitra_dsl::ast::{ColumnExtractor, NodeExtractor, Program};
use mitra_dsl::eval::{eval_column, eval_node_extractor};
use mitra_hdt::{Hdt, NodeId};

/// A detected sharing opportunity: evaluating `shared_prefix` once can drive both
/// columns `left_col` and `right_col` of the program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SharedPrefix {
    /// First column involved.
    pub left_col: usize,
    /// Second column involved.
    pub right_col: usize,
    /// The prefix of the column extractors that the two columns can share.
    pub shared_prefix: ColumnExtractor,
}

/// Report produced by the optimizer for a given program and witness tree.
#[derive(Debug, Clone)]
pub struct OptimizationReport {
    /// The join/filter plan of the execution engine.
    pub plan: Plan,
    /// Shared prefixes detected between column pairs connected by equality predicates.
    pub shared_prefixes: Vec<SharedPrefix>,
    /// Number of predicate clauses that could be turned into joins or pushed down.
    pub optimized_clauses: usize,
    /// Number of clauses left as residual filtering.
    pub residual_atoms: usize,
}

/// Analyses a program against a witness tree (typically the example input) and reports
/// which parts of the predicate can be optimized away.
pub fn analyze(tree: &Hdt, program: &Program) -> OptimizationReport {
    let p = plan(program);
    let mut shared = Vec::new();
    for j in &p.joins {
        if let Some(prefix) = shared_prefix_for(
            tree,
            &program.extractor.columns[j.left_col],
            &j.left_extractor,
            &program.extractor.columns[j.right_col],
            &j.right_extractor,
        ) {
            shared.push(SharedPrefix {
                left_col: j.left_col,
                right_col: j.right_col,
                shared_prefix: prefix,
            });
        }
    }
    let optimized_clauses = p.joins.len() + p.column_filters.iter().map(Vec::len).sum::<usize>();
    let residual_atoms = p.residual.atom_count();
    OptimizationReport {
        plan: p,
        shared_prefixes: shared,
        optimized_clauses,
        residual_atoms,
    }
}

/// Checks whether composing each column extractor with its node extractor lands on a
/// common prefix of both columns, per the Appendix C construction.  Two candidate
/// programs are considered semantically equivalent when they produce the same node set
/// on the witness tree (the paper checks equivalence on the example trees as well).
fn shared_prefix_for(
    tree: &Hdt,
    left_pi: &ColumnExtractor,
    left_phi: &NodeExtractor,
    right_pi: &ColumnExtractor,
    right_phi: &NodeExtractor,
) -> Option<ColumnExtractor> {
    let left_targets = apply_composition(tree, left_pi, left_phi);
    let right_targets = apply_composition(tree, right_pi, right_phi);
    if left_targets.is_empty() || left_targets != right_targets {
        return None;
    }
    // Find the longest common prefix of the two column extractors whose evaluation
    // equals the shared target set.
    let left_steps = left_pi.steps();
    let right_steps = right_pi.steps();
    let common_len = left_steps
        .iter()
        .zip(&right_steps)
        .take_while(|(a, b)| a == b)
        .count();
    for len in (0..=common_len).rev() {
        let prefix = ColumnExtractor::from_steps(&left_steps[..len]);
        let mut nodes = eval_column(tree, &prefix);
        nodes.sort_unstable();
        nodes.dedup();
        if nodes == left_targets {
            return Some(prefix);
        }
    }
    None
}

fn apply_composition(tree: &Hdt, pi: &ColumnExtractor, phi: &NodeExtractor) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = eval_column(tree, pi)
        .into_iter()
        .filter_map(|n| eval_node_extractor(tree, n, phi))
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesize::{learn_transformation, Example, SynthConfig};
    use mitra_dsl::Table;
    use mitra_hdt::generate::social_network;

    fn motivating_program_and_tree() -> (Program, Hdt) {
        let tree = social_network(3, 1);
        let output = Table::from_rows(
            &["Person", "Friend-with", "years"],
            &[
                &["Alice", "Bob", "12"],
                &["Bob", "Carol", "23"],
                &["Carol", "Alice", "31"],
            ],
        );
        let ex = Example::new(tree.clone(), output);
        let program = learn_transformation(&[ex], &SynthConfig::default())
            .unwrap()
            .program;
        (program, tree)
    }

    #[test]
    fn analysis_finds_optimizable_clauses() {
        let (program, tree) = motivating_program_and_tree();
        let report = analyze(&tree, &program);
        assert!(report.optimized_clauses >= 1);
        // The motivating example's predicate is a pure conjunction of equalities, so
        // nothing should remain residual.
        assert_eq!(report.residual_atoms, 0);
    }

    #[test]
    fn shared_prefix_detected_for_parent_join() {
        // Columns: name of a person and years of the same person.  The predicate
        // parent(t[0]) = parent(parent(parent(t[2]))) means both compositions land on
        // the Person node, whose extractor children(s, Person) is a prefix of both.
        use mitra_dsl::ast::{CompareOp, Operand, Predicate, TableExtractor};
        use ColumnExtractor as CE;
        let tree = social_network(2, 1);
        let name = CE::pchildren(CE::children(CE::Input, "Person"), "name", 0);
        let years = CE::pchildren(
            CE::children(
                CE::pchildren(CE::children(CE::Input, "Person"), "Friendship", 0),
                "Friend",
            ),
            "years",
            0,
        );
        let pred = Predicate::Compare {
            extractor: NodeExtractor::parent(NodeExtractor::Id),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::parent(NodeExtractor::parent(NodeExtractor::parent(
                    NodeExtractor::Id,
                ))),
                index: 1,
            },
        };
        let program = Program::new(TableExtractor::new(vec![name, years]), pred);
        let report = analyze(&tree, &program);
        assert_eq!(report.shared_prefixes.len(), 1);
        let sp = &report.shared_prefixes[0];
        assert_eq!(
            sp.shared_prefix,
            CE::children(CE::Input, "Person"),
            "expected the Person child extractor as shared prefix"
        );
    }

    #[test]
    fn unrelated_columns_share_nothing() {
        use mitra_dsl::ast::{CompareOp, Operand, Predicate, TableExtractor};
        use ColumnExtractor as CE;
        let tree = social_network(2, 1);
        let names = CE::pchildren(CE::children(CE::Input, "Person"), "name", 0);
        let ids = CE::pchildren(CE::children(CE::Input, "Person"), "id", 0);
        // Predicate compares the *data* of unrelated nodes; compositions differ.
        let pred = Predicate::Compare {
            extractor: NodeExtractor::Id,
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::Id,
                index: 1,
            },
        };
        let program = Program::new(TableExtractor::new(vec![names, ids]), pred);
        let report = analyze(&tree, &program);
        assert!(report.shared_prefixes.is_empty());
    }
}
