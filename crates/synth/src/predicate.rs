//! Predicate learning (`LearnPredicate`, Algorithm 3).
//!
//! Given the examples and one candidate table extractor ψ, the learner:
//!
//! 1. builds the atomic-predicate universe (Figure 10),
//! 2. splits the intermediate table [[ψ]]T into positive tuples (those whose data
//!    projection is a row of the output example) and negative tuples,
//! 3. finds a minimum subset Φ* of atomic predicates distinguishing every
//!    positive/negative pair (Algorithm 4, via the exact set-cover solver),
//! 4. finds a smallest DNF classifier over Φ* with Quine–McCluskey minimization.
//!
//! The result is a [`Predicate`] that keeps every positive tuple and removes every
//! negative one; `None` is returned when no such predicate exists in the (bounded)
//! universe.
//!
//! ## The fast truth-vector path
//!
//! Evaluating every universe predicate on every intermediate tuple with
//! [`eval_predicate`] dominated synthesis cost (on MONDIAL: ~97 % of the wall
//! time), because the universe re-walks the tree per tuple and because most of the
//! universe is behaviourally redundant — node extractors that map every column
//! node to the same node yield byte-identical truth vectors in every predicate.
//! [`learn_predicate_cached`] therefore:
//!
//! * evaluates each valid node extractor **once per column node** (cached in
//!   [`ColumnPhiData`]) instead of once per tuple, and tiles the per-node results
//!   across the cross-product layout of the intermediate table;
//! * enumerates only the behaviour-class **representatives** of each column's
//!   extractors.  Equivalent extractors produce equal truth vectors, the
//!   representative is the earliest (hence smallest) member of its class, and the
//!   downstream dedup fold keeps the earliest minimum-weight member of every truth
//!   class — which is always a representative pair — so the surviving predicate
//!   set is byte-identical to the exhaustive enumeration;
//! * compares tuple components (rule 5) through **interned value ids** once per
//!   node pair instead of once per tuple: the Eq/Ne truth values of a pair
//!   predicate factor through a per-block node-pair matrix (the diagonal when both
//!   sides index the same column), both ops share one pass over it, and matrices
//!   that come out constant — most cross-column comparisons — are skipped before
//!   any tuple-length vector is materialized.
//!
//! [`learn_predicate_reference`] retains the direct per-tuple evaluation over the
//! full universe; `tests/search_equivalence.rs` and the unit tests below assert
//! the two paths agree, and it serves as the oracle for differential testing.

use crate::cache::{ColumnEvalCache, ColumnPhiData};
use crate::cover::{solve_exact, solve_greedy, CoverInstance};
use crate::qm::minimize;
use crate::synthesize::Example;
use crate::universe::{construct_universe, UniverseConfig};
use mitra_dsl::ast::{CompareOp, Operand, Predicate, TableExtractor};
use mitra_dsl::eval::{cross_product_slices, eval_predicate, node_value, EvalLimits};
use mitra_dsl::Value;
use mitra_hdt::NodeId;
use std::sync::Arc;

/// Configuration for predicate learning.
#[derive(Debug, Clone, Copy)]
pub struct PredicateLearnConfig {
    /// Universe construction knobs.
    pub universe: UniverseConfig,
    /// Upper bound on the number of intermediate tuples considered per example; larger
    /// intermediate tables cause the candidate ψ to be rejected (the top-level loop
    /// will try another one).
    pub max_intermediate_rows: usize,
    /// Use the exact branch-and-bound cover solver (true) or the greedy approximation.
    pub exact_cover: bool,
    /// Node budget for the exact cover search.
    pub max_cover_nodes: usize,
    /// Maximum number of distinct predicates kept after behaviour deduplication.
    pub max_universe: usize,
    /// Worker threads for the reference path's universe evaluation (1 = sequential;
    /// 0 = the process-global setting).  The fast path's truth vectors are cheap
    /// enough to always compute inline, so this only affects
    /// [`learn_predicate_reference`]; results are identical for every value.
    pub threads: usize,
}

impl Default for PredicateLearnConfig {
    fn default() -> Self {
        PredicateLearnConfig {
            universe: UniverseConfig::default(),
            max_intermediate_rows: 50_000,
            exact_cover: true,
            max_cover_nodes: 200_000,
            max_universe: 20_000,
            threads: 1,
        }
    }
}

/// A labelled tuple of the intermediate table.
#[derive(Debug, Clone)]
pub struct LabelledTuple {
    /// Index of the example this tuple came from.
    pub example: usize,
    /// The node tuple.
    pub nodes: Vec<NodeId>,
    /// True when the tuple's data projection appears in the output example.
    pub positive: bool,
}

/// Builds the positive/negative example tuples for a candidate table extractor.
///
/// Returns `None` when an intermediate table exceeds `max_rows` (the candidate should
/// then be skipped) or when ψ does not overapproximate some output example (a required
/// precondition of Theorem 2).
pub fn label_tuples(
    examples: &[Example],
    psi: &TableExtractor,
    max_rows: usize,
) -> Option<Vec<LabelledTuple>> {
    label_tuples_cached(
        examples,
        psi,
        max_rows,
        &ColumnEvalCache::new(examples.len()),
    )
}

/// [`label_tuples`] with a shared column-evaluation cache: each distinct column
/// extractor of ψ is evaluated at most once per example across all candidates (and
/// all pool workers) sharing the cache.
pub fn label_tuples_cached(
    examples: &[Example],
    psi: &TableExtractor,
    max_rows: usize,
    cache: &ColumnEvalCache,
) -> Option<Vec<LabelledTuple>> {
    let mut out = Vec::new();
    let limits = EvalLimits::with_max_rows(max_rows);
    for (ex_idx, ex) in examples.iter().enumerate() {
        // The row cap doubles as the candidate filter: an oversized intermediate
        // table rejects the candidate without materializing anything.
        let columns: Vec<_> = psi
            .columns
            .iter()
            .map(|pi| cache.column_nodes(ex_idx, &ex.tree, pi))
            .collect();
        let slices: Vec<&[NodeId]> = columns.iter().map(|c| c.as_slice()).collect();
        let tuples = cross_product_slices(&slices, &limits).ok()?;
        let mut covered_rows = vec![false; ex.output.rows.len()];
        for nodes in tuples {
            let values: Vec<Value> = nodes.iter().map(|n| node_value(&ex.tree, *n)).collect();
            let positive = ex.output.contains_row(&values);
            if positive {
                for (ri, row) in ex.output.rows.iter().enumerate() {
                    if row.as_slice() == values.as_slice() {
                        covered_rows[ri] = true;
                    }
                }
            }
            out.push(LabelledTuple {
                example: ex_idx,
                nodes,
                positive,
            });
        }
        // ψ must overapproximate the output table: every output row must be produced
        // by at least one tuple.
        if !covered_rows.iter().all(|b| *b) {
            return None;
        }
    }
    Some(out)
}

/// Learns a filtering predicate for the candidate table extractor ψ, following
/// Algorithm 3.  Returns `None` when no classifier exists within the configured
/// universe bounds.
pub fn learn_predicate(
    examples: &[Example],
    psi: &TableExtractor,
    config: &PredicateLearnConfig,
) -> Option<Predicate> {
    learn_predicate_cached(examples, psi, config, &ColumnEvalCache::new(examples.len()))
}

/// [`learn_predicate`] with a shared column-evaluation cache (see
/// [`label_tuples_cached`]); the top-level synthesis loop passes one cache for all
/// candidate table extractors of a task, which also shares the per-column
/// [`ColumnPhiData`] across every combo touching the same column extractor.
pub fn learn_predicate_cached(
    examples: &[Example],
    psi: &TableExtractor,
    config: &PredicateLearnConfig,
    cache: &ColumnEvalCache,
) -> Option<Predicate> {
    let tuples = label_tuples_cached(examples, psi, config.max_intermediate_rows, cache)?;
    let has_positive = tuples.iter().any(|t| t.positive);
    if !has_positive {
        return None;
    }
    if tuples.iter().all(|t| t.positive) {
        // The filter-free program already matches the example exactly: skip the
        // whole truth-vector universe (tentpole (d) — on exact extractors this is
        // the only predicate-learning work the search does).
        return Some(Predicate::True);
    }

    // Cross-product layout of the intermediate table: example blocks in order, and
    // within a block the *last* column varies fastest (the mixed-radix order of
    // `cross_product_slices`), so tuple `t` of a block uses node
    // `(t / stride[c]) % count[c]` of column `c`.
    let arity = psi.columns.len();
    struct Block {
        base: usize,
        len: usize,
        counts: Vec<usize>,
        strides: Vec<usize>,
    }
    let mut layout: Vec<Block> = Vec::with_capacity(examples.len());
    let mut base = 0usize;
    for (ex_idx, ex) in examples.iter().enumerate() {
        let counts: Vec<usize> = psi
            .columns
            .iter()
            .map(|pi| cache.column_nodes(ex_idx, &ex.tree, pi).len())
            .collect();
        let len = counts.iter().product::<usize>();
        let mut strides = vec![1usize; arity];
        for c in (0..arity.saturating_sub(1)).rev() {
            strides[c] = strides[c + 1] * counts[c + 1];
        }
        layout.push(Block {
            base,
            len,
            counts,
            strides,
        });
        base += len;
    }
    debug_assert_eq!(base, tuples.len(), "layout must match the labelled tuples");

    let per_column: Vec<Arc<ColumnPhiData>> = psi
        .columns
        .iter()
        .map(|pi| cache.phi_data(examples, pi, &config.universe))
        .collect();
    let constants = cache.constants(examples, config.universe.max_constants);

    // Tiles per-node truth bits across a block: bit `k` of column `c` covers every
    // tuple whose `c`-th digit is `k`.
    let tile_const = |vector: &mut [bool], block: &Block, col: usize, bits: &[bool]| {
        for t in 0..block.len {
            vector[block.base + t] = bits[(t / block.strides[col]) % block.counts[col]];
        }
    };

    // The reduced universe enumeration: identical loop structure and order as
    // `construct_universe`, but over behaviour-class representatives only, feeding
    // truth vectors straight into the dedup fold below.
    let const_ops: &[CompareOp] = if config.universe.with_ordering {
        &[
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ]
    } else {
        &[CompareOp::Eq, CompareOp::Ne]
    };

    let mut kept: Vec<(Predicate, Vec<bool>, usize)> = Vec::new();
    let mut by_vector: std::collections::HashMap<Vec<bool>, usize> =
        std::collections::HashMap::new();
    let mut capped = false;
    // Folds one (predicate, truth vector) into the behaviour dedup, mirroring the
    // reference path exactly: constant vectors are dropped, the earliest member of
    // each truth class wins, later strictly-lighter members replace it.
    let fold = |p: Predicate,
                vector: Vec<bool>,
                kept: &mut Vec<(Predicate, Vec<bool>, usize)>,
                by_vector: &mut std::collections::HashMap<Vec<bool>, usize>|
     -> bool {
        if vector.iter().all(|b| *b) || vector.iter().all(|b| !*b) {
            return true;
        }
        let size = predicate_weight(&p);
        match by_vector.get(&vector) {
            Some(&idx) => {
                // Keep the simpler representative.
                if size < kept[idx].2 {
                    kept[idx].0 = p;
                    kept[idx].2 = size;
                }
            }
            None => {
                by_vector.insert(vector.clone(), kept.len());
                kept.push((p, vector, size));
                if kept.len() >= config.max_universe {
                    return false;
                }
            }
        }
        true
    };

    // Rule 4: comparisons against constants.
    'outer4: for (i, data) in per_column.iter().enumerate() {
        for &p in &data.reps {
            for c in constants.iter() {
                for op in const_ops {
                    if matches!(
                        op,
                        CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge
                    ) && c.as_number().is_none()
                    {
                        continue;
                    }
                    let mut vector = vec![false; tuples.len()];
                    for (ex_idx, block) in layout.iter().enumerate() {
                        if block.len == 0 {
                            continue;
                        }
                        let tree = &examples[ex_idx].tree;
                        let bits: Vec<bool> = data.nodes[p][ex_idx]
                            .iter()
                            .map(|n| match node_value(tree, *n).compare(c) {
                                Some(ord) => op.test(ord),
                                None => false,
                            })
                            .collect();
                        tile_const(&mut vector, block, i, &bits);
                    }
                    let pred = Predicate::Compare {
                        extractor: data.phis[p].clone(),
                        index: i,
                        op: *op,
                        rhs: Operand::Const(c.clone()),
                    };
                    if !fold(pred, vector, &mut kept, &mut by_vector) {
                        capped = true;
                        break 'outer4;
                    }
                }
            }
        }
    }

    // Rule 5: comparisons between two tuple components.  A tuple's truth value
    // depends only on its (node_i, node_j) pair, so each representative pair is
    // compared once per *node* pair — through the interned ids of
    // [`ColumnPhiData::info`] — and both ops share that comparison.  Vectors whose
    // node-pair cells come out constant (most cross-column comparisons: unrelated
    // fields are never equal) are recognised before tiling and skipped outright,
    // exactly as the fold below would have dropped them.
    if !capped {
        // Mixed-radix digit of every tuple per column, so non-diagonal tiling is a
        // pair of table lookups instead of two divisions.
        let digits: Vec<Vec<Vec<u32>>> = layout
            .iter()
            .map(|block| {
                (0..arity)
                    .map(|c| {
                        (0..block.len)
                            .map(|t| ((t / block.strides[c]) % block.counts[c]) as u32)
                            .collect()
                    })
                    .collect()
            })
            .collect();
        // Eq/Ne truth values for one node pair, matching `Value::compare`
        // semantics: leaf pairs compare by value (Ne additionally requires
        // comparability), internal pairs by node identity, mixed pairs are false
        // under both ops.
        let cell = |l: &crate::cache::NodeInfo,
                    r: &crate::cache::NodeInfo,
                    ln: NodeId,
                    rn: NodeId|
         -> (bool, bool) {
            if l.leaf && r.leaf {
                let eq = l.value == r.value;
                (
                    eq,
                    !eq && crate::cache::classes_comparable(l.class, r.class),
                )
            } else if !l.leaf && !r.leaf {
                let same = ln == rn;
                (same, !same)
            } else {
                (false, false)
            }
        };
        'outer5: for (i, data_i) in per_column.iter().enumerate() {
            for (j, data_j) in per_column.iter().enumerate() {
                for &p1 in &data_i.reps {
                    for &p2 in &data_j.reps {
                        if i == j && data_i.phis[p1] == data_j.phis[p2] {
                            continue; // trivially true under Eq
                        }
                        // Per-block cell tables for both ops: the diagonal only
                        // when i == j (both digits coincide), the full node-pair
                        // matrix otherwise.
                        let mut eq_blocks: Vec<Vec<bool>> = Vec::with_capacity(layout.len());
                        let mut ne_blocks: Vec<Vec<bool>> = Vec::with_capacity(layout.len());
                        let (mut eq_any_t, mut eq_any_f) = (false, false);
                        let (mut ne_any_t, mut ne_any_f) = (false, false);
                        for (ex_idx, block) in layout.iter().enumerate() {
                            if block.len == 0 {
                                eq_blocks.push(Vec::new());
                                ne_blocks.push(Vec::new());
                                continue;
                            }
                            let linfo = &data_i.info[p1][ex_idx];
                            let rinfo = &data_j.info[p2][ex_idx];
                            let lnodes = &data_i.nodes[p1][ex_idx];
                            let rnodes = &data_j.nodes[p2][ex_idx];
                            let mut eq;
                            let mut ne;
                            if i == j {
                                eq = Vec::with_capacity(linfo.len());
                                ne = Vec::with_capacity(linfo.len());
                                for k in 0..linfo.len() {
                                    let (e, n) = cell(&linfo[k], &rinfo[k], lnodes[k], rnodes[k]);
                                    eq.push(e);
                                    ne.push(n);
                                }
                            } else {
                                eq = Vec::with_capacity(linfo.len() * rinfo.len());
                                ne = Vec::with_capacity(linfo.len() * rinfo.len());
                                for (ki, li) in linfo.iter().enumerate() {
                                    for (kj, rj) in rinfo.iter().enumerate() {
                                        let (e, n) = cell(li, rj, lnodes[ki], rnodes[kj]);
                                        eq.push(e);
                                        ne.push(n);
                                    }
                                }
                            }
                            for &b in &eq {
                                eq_any_t |= b;
                                eq_any_f |= !b;
                            }
                            for &b in &ne {
                                ne_any_t |= b;
                                ne_any_f |= !b;
                            }
                            eq_blocks.push(eq);
                            ne_blocks.push(ne);
                        }
                        // The blocks are full cross products, so every cell is hit
                        // by some tuple: the vector is constant iff the cells are.
                        for (op, cells, any_t, any_f) in [
                            (CompareOp::Eq, &eq_blocks, eq_any_t, eq_any_f),
                            (CompareOp::Ne, &ne_blocks, ne_any_t, ne_any_f),
                        ] {
                            if !(any_t && any_f) {
                                continue; // constant vector: the fold would drop it
                            }
                            let mut vector = vec![false; tuples.len()];
                            for (ex_idx, block) in layout.iter().enumerate() {
                                if block.len == 0 {
                                    continue;
                                }
                                let bits = &cells[ex_idx];
                                if i == j {
                                    tile_const(&mut vector, block, i, bits);
                                } else {
                                    let di = &digits[ex_idx][i];
                                    let dj = &digits[ex_idx][j];
                                    let cj = block.counts[j];
                                    for t in 0..block.len {
                                        vector[block.base + t] =
                                            bits[di[t] as usize * cj + dj[t] as usize];
                                    }
                                }
                            }
                            let pred = Predicate::Compare {
                                extractor: data_i.phis[p1].clone(),
                                index: i,
                                op,
                                rhs: Operand::Column {
                                    extractor: data_j.phis[p2].clone(),
                                    index: j,
                                },
                            };
                            if !fold(pred, vector, &mut kept, &mut by_vector) {
                                break 'outer5;
                            }
                        }
                    }
                }
            }
        }
    }

    classifier_from_kept(&tuples, kept, config)
}

/// Reference implementation of [`learn_predicate`]: full universe construction and
/// direct per-tuple [`eval_predicate`] evaluation.  Kept as the oracle for the
/// differential suite (`tests/search_equivalence.rs`) — the fast path must produce
/// byte-identical predicates.
pub fn learn_predicate_reference(
    examples: &[Example],
    psi: &TableExtractor,
    config: &PredicateLearnConfig,
) -> Option<Predicate> {
    learn_predicate_reference_cached(examples, psi, config, &ColumnEvalCache::new(examples.len()))
}

/// [`learn_predicate_reference`] with a shared column-evaluation cache.
pub fn learn_predicate_reference_cached(
    examples: &[Example],
    psi: &TableExtractor,
    config: &PredicateLearnConfig,
    cache: &ColumnEvalCache,
) -> Option<Predicate> {
    let tuples = label_tuples_cached(examples, psi, config.max_intermediate_rows, cache)?;
    let positives: Vec<&LabelledTuple> = tuples.iter().filter(|t| t.positive).collect();
    let negatives: Vec<&LabelledTuple> = tuples.iter().filter(|t| !t.positive).collect();

    if positives.is_empty() {
        return None;
    }
    if negatives.is_empty() {
        // Nothing to filter out: the trivial predicate works.
        return Some(Predicate::True);
    }

    // Build the universe and evaluate every predicate on every tuple.
    let universe = construct_universe(examples, psi, &config.universe);
    if universe.is_empty() {
        return None;
    }

    // Deduplicate predicates by their truth vector over all labelled tuples and drop
    // predicates that cannot distinguish anything (constant truth value).  This both
    // shrinks the ILP and mirrors the paper's observation that only behaviourally
    // distinct predicates matter.
    // Keyed by the truth vector so deduplication stays linear in the universe size.
    let truth_vector = |p: &Predicate| -> Vec<bool> {
        tuples
            .iter()
            .map(|t| eval_predicate(&examples[t.example].tree, &t.nodes, p))
            .collect()
    };
    let threads = mitra_pool::resolve(config.threads);
    // The candidates are independent, so the truth vectors fan out across workers;
    // the dedup fold below runs in universe order either way, so `kept` is identical
    // for every thread count.  Tiny universes stay inline: spawning costs more than
    // the evaluation itself.
    let prepared: Vec<(Predicate, Vec<bool>)> = if threads > 1 && universe.len() >= 64 {
        let vectors = mitra_pool::parallel_map(threads, &universe, |_, p| truth_vector(p));
        universe.into_iter().zip(vectors).collect()
    } else {
        universe
            .into_iter()
            .map(|p| {
                let v = truth_vector(&p);
                (p, v)
            })
            .collect()
    };
    let mut kept: Vec<(Predicate, Vec<bool>, usize)> = Vec::new();
    let mut by_vector: std::collections::HashMap<Vec<bool>, usize> =
        std::collections::HashMap::new();
    for (p, vector) in prepared {
        if vector.iter().all(|b| *b) || vector.iter().all(|b| !*b) {
            continue;
        }
        let size = predicate_weight(&p);
        match by_vector.get(&vector) {
            Some(&idx) => {
                // Keep the simpler representative.
                if size < kept[idx].2 {
                    kept[idx].0 = p;
                    kept[idx].2 = size;
                }
            }
            None => {
                by_vector.insert(vector.clone(), kept.len());
                kept.push((p, vector, size));
                if kept.len() >= config.max_universe {
                    break;
                }
            }
        }
    }
    classifier_from_kept(&tuples, kept, config)
}

/// Algorithm 3 steps 3–4 over the deduplicated predicate set: minimum set cover of
/// the positive/negative pairs, then Quine–McCluskey DNF minimization.  Shared
/// verbatim by the fast and reference paths so any divergence is confined to the
/// truth-vector construction.
fn classifier_from_kept(
    tuples: &[LabelledTuple],
    kept: Vec<(Predicate, Vec<bool>, usize)>,
    config: &PredicateLearnConfig,
) -> Option<Predicate> {
    if kept.is_empty() {
        return None;
    }

    // Build the set-cover instance: elements are (positive, negative) pairs, a
    // predicate covers a pair when its truth value differs on the two tuples.
    let pos_idx: Vec<usize> = tuples
        .iter()
        .enumerate()
        .filter(|(_, t)| t.positive)
        .map(|(i, _)| i)
        .collect();
    let neg_idx: Vec<usize> = tuples
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.positive)
        .map(|(i, _)| i)
        .collect();
    let num_elements = pos_idx.len() * neg_idx.len();
    let covers: Vec<Vec<usize>> = kept
        .iter()
        .map(|(_, vector, _)| {
            let mut cov = Vec::new();
            for (pi, &p) in pos_idx.iter().enumerate() {
                for (ni, &n) in neg_idx.iter().enumerate() {
                    if vector[p] != vector[n] {
                        cov.push(pi * neg_idx.len() + ni);
                    }
                }
            }
            cov
        })
        .collect();
    let instance = CoverInstance {
        num_elements,
        covers,
        weights: kept.iter().map(|(_, _, s)| *s).collect(),
    };
    let chosen = if config.exact_cover {
        solve_exact(&instance, config.max_cover_nodes)?
    } else {
        solve_greedy(&instance)?
    };
    if chosen.is_empty() {
        return None;
    }

    // Build the partial truth table over the chosen predicates and minimize.
    let on_set: Vec<Vec<bool>> = pos_idx
        .iter()
        .map(|&t| chosen.iter().map(|&k| kept[k].1[t]).collect())
        .collect();
    let off_set: Vec<Vec<bool>> = neg_idx
        .iter()
        .map(|&t| chosen.iter().map(|&k| kept[k].1[t]).collect())
        .collect();
    let dnf = minimize(chosen.len(), &on_set, &off_set)?;

    // Translate the DNF over variable indices back into a DSL predicate.
    let mut clauses = Vec::new();
    for term in &dnf.terms {
        let mut lits = Vec::new();
        for (var, lit) in term.literals.iter().enumerate() {
            match lit {
                None => {}
                Some(true) => lits.push(kept[chosen[var]].0.clone()),
                Some(false) => lits.push(Predicate::not(kept[chosen[var]].0.clone())),
            }
        }
        clauses.push(Predicate::conjunction(lits));
    }
    let formula = if dnf.terms.is_empty() {
        Predicate::False
    } else {
        Predicate::disjunction(clauses)
    };
    Some(formula)
}

/// Syntactic weight of a predicate, used for tie-breaking in the cover solver.
fn predicate_weight(p: &Predicate) -> usize {
    match p {
        Predicate::Compare { extractor, rhs, .. } => {
            1 + extractor.size()
                + match rhs {
                    Operand::Const(_) => 0,
                    Operand::Column { extractor, .. } => extractor.size(),
                }
        }
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_dsl::ast::ColumnExtractor;
    use mitra_dsl::eval::eval_program;
    use mitra_dsl::{Program, Table};
    use mitra_hdt::generate::{nested_objects, social_network};

    fn social_example() -> Example {
        Example {
            tree: social_network(2, 1),
            output: Table::from_rows(
                &["Person", "Friend-with", "years"],
                &[&["Alice", "Bob", "12"], &["Bob", "Alice", "21"]],
            ),
        }
    }

    fn social_psi() -> TableExtractor {
        use ColumnExtractor as CE;
        let name = CE::pchildren(CE::children(CE::Input, "Person"), "name", 0);
        let pi_f = CE::pchildren(CE::children(CE::Input, "Person"), "Friendship", 0);
        let years = CE::pchildren(CE::children(pi_f, "Friend"), "years", 0);
        TableExtractor::new(vec![name.clone(), name, years])
    }

    #[test]
    fn label_tuples_marks_positive_rows() {
        let ex = social_example();
        let tuples = label_tuples(&[ex], &social_psi(), 10_000).unwrap();
        // 2 names × 2 names × 2 years = 8 tuples, 2 of which are positive.
        assert_eq!(tuples.len(), 8);
        assert_eq!(tuples.iter().filter(|t| t.positive).count(), 2);
    }

    #[test]
    fn label_tuples_rejects_non_overapproximating_extractor() {
        let ex = social_example();
        // Only one column extractor -> arity mismatch means no row can be covered.
        let psi = TableExtractor::new(vec![ColumnExtractor::children(
            ColumnExtractor::Input,
            "Person",
        )]);
        assert!(label_tuples(&[ex], &psi, 10_000).is_none());
    }

    #[test]
    fn learns_predicate_for_motivating_example() {
        let ex = social_example();
        let psi = social_psi();
        let phi = learn_predicate(
            std::slice::from_ref(&ex),
            &psi,
            &PredicateLearnConfig::default(),
        )
        .expect("a predicate should be found");
        let prog = Program::new(psi, phi);
        let out = eval_program(&ex.tree, &prog).unwrap();
        assert!(
            out.same_bag(&ex.output),
            "synthesized filter does not reproduce the example: {out}"
        );
    }

    #[test]
    fn trivial_predicate_when_extractor_is_exact() {
        // Single column: person names; the cross product is already exactly the output.
        let ex = Example {
            tree: social_network(2, 1),
            output: Table::from_rows(&["name"], &[&["Alice"], &["Bob"]]),
        };
        let psi = TableExtractor::new(vec![ColumnExtractor::pchildren(
            ColumnExtractor::children(ColumnExtractor::Input, "Person"),
            "name",
            0,
        )]);
        let phi = learn_predicate(&[ex], &psi, &PredicateLearnConfig::default()).unwrap();
        assert_eq!(phi, Predicate::True);
    }

    #[test]
    fn figure8_constant_filter_is_learned() {
        // Keep the text of objects whose id < 20, paired with the text of their
        // directly nested object.
        let tree = nested_objects();
        let output = Table::from_rows(&["outer", "inner"], &[&["outer-a", "inner-a"]]);
        let ex = Example { tree, output };
        let pi = ColumnExtractor::pchildren(
            ColumnExtractor::descendants(ColumnExtractor::Input, "object"),
            "text",
            0,
        );
        let psi = TableExtractor::new(vec![pi.clone(), pi]);
        let phi = learn_predicate(
            std::slice::from_ref(&ex),
            &psi,
            &PredicateLearnConfig::default(),
        )
        .expect("predicate expected");
        let prog = Program::new(psi, phi);
        let out = eval_program(&ex.tree, &prog).unwrap();
        assert!(out.same_bag(&ex.output), "got {out}");
    }

    #[test]
    fn fast_path_matches_reference_on_motivating_example() {
        let ex = social_example();
        let psi = social_psi();
        let config = PredicateLearnConfig::default();
        let fast = learn_predicate(std::slice::from_ref(&ex), &psi, &config);
        let reference = learn_predicate_reference(std::slice::from_ref(&ex), &psi, &config);
        assert_eq!(fast, reference);
        assert!(fast.is_some());
    }

    #[test]
    fn fast_path_matches_reference_on_figure8() {
        let tree = nested_objects();
        let output = Table::from_rows(&["outer", "inner"], &[&["outer-a", "inner-a"]]);
        let ex = Example { tree, output };
        let pi = ColumnExtractor::pchildren(
            ColumnExtractor::descendants(ColumnExtractor::Input, "object"),
            "text",
            0,
        );
        let psi = TableExtractor::new(vec![pi.clone(), pi]);
        for with_ordering in [false, true] {
            let config = PredicateLearnConfig {
                universe: UniverseConfig {
                    with_ordering,
                    ..Default::default()
                },
                ..Default::default()
            };
            let fast = learn_predicate(std::slice::from_ref(&ex), &psi, &config);
            let reference = learn_predicate_reference(std::slice::from_ref(&ex), &psi, &config);
            assert_eq!(fast, reference, "with_ordering={with_ordering} diverged");
        }
    }

    #[test]
    fn thread_count_does_not_change_the_learned_predicate() {
        let ex = social_example();
        let psi = social_psi();
        let sequential = learn_predicate_reference(
            std::slice::from_ref(&ex),
            &psi,
            &PredicateLearnConfig::default(),
        );
        for threads in [2, 4] {
            let config = PredicateLearnConfig {
                threads,
                ..Default::default()
            };
            let parallel = learn_predicate_reference(std::slice::from_ref(&ex), &psi, &config);
            assert_eq!(sequential, parallel, "threads={threads} diverged");
        }
    }

    #[test]
    fn shared_cache_reuses_column_evaluations_across_candidates() {
        let ex = social_example();
        let cache = ColumnEvalCache::new(1);
        let psi = social_psi();
        let first = label_tuples_cached(std::slice::from_ref(&ex), &psi, 10_000, &cache).unwrap();
        let cached_entries = cache.len();
        // ψ has two identical name columns -> strictly fewer cache entries than
        // columns; relabelling with the same cache must not grow it.
        assert!(cached_entries < psi.columns.len() + 1);
        let second = label_tuples_cached(std::slice::from_ref(&ex), &psi, 10_000, &cache).unwrap();
        assert_eq!(cache.len(), cached_entries);
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.positive, b.positive);
        }
    }

    #[test]
    fn greedy_mode_also_learns_a_correct_predicate() {
        let ex = social_example();
        let psi = social_psi();
        let config = PredicateLearnConfig {
            exact_cover: false,
            ..Default::default()
        };
        let phi =
            learn_predicate(std::slice::from_ref(&ex), &psi, &config).expect("greedy predicate");
        let prog = Program::new(psi, phi);
        assert!(eval_program(&ex.tree, &prog).unwrap().same_bag(&ex.output));
    }

    #[test]
    fn impossible_output_returns_none() {
        // Output contains a row whose years value never co-occurs, and no predicate in
        // a tiny universe can separate it.
        let ex = Example {
            tree: social_network(2, 1),
            output: Table::from_rows(
                &["Person", "Friend-with", "years"],
                &[&["Alice", "Alice", "4"]],
            ),
        };
        let psi = social_psi();
        let config = PredicateLearnConfig {
            universe: UniverseConfig {
                max_node_extractor_depth: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        // With only identity node extractors the spurious (Alice, Alice, 4) cannot be
        // distinguished from (Alice, Bob, 4) tuples sharing all leaf data... the learner
        // may or may not find a classifier, but it must not panic and must return a
        // predicate that actually reproduces the example if it returns one.
        if let Some(phi) = learn_predicate(std::slice::from_ref(&ex), &psi, &config) {
            let prog = Program::new(psi, phi);
            assert!(eval_program(&ex.tree, &prog).unwrap().same_bag(&ex.output));
        }
    }
}
