//! Predicate learning (`LearnPredicate`, Algorithm 3).
//!
//! Given the examples and one candidate table extractor ψ, the learner:
//!
//! 1. builds the atomic-predicate universe (Figure 10),
//! 2. splits the intermediate table [[ψ]]T into positive tuples (those whose data
//!    projection is a row of the output example) and negative tuples,
//! 3. finds a minimum subset Φ* of atomic predicates distinguishing every
//!    positive/negative pair (Algorithm 4, via the exact set-cover solver),
//! 4. finds a smallest DNF classifier over Φ* with Quine–McCluskey minimization.
//!
//! The result is a [`Predicate`] that keeps every positive tuple and removes every
//! negative one; `None` is returned when no such predicate exists in the (bounded)
//! universe.

use crate::cache::ColumnEvalCache;
use crate::cover::{solve_exact, solve_greedy, CoverInstance};
use crate::qm::minimize;
use crate::synthesize::Example;
use crate::universe::{construct_universe, UniverseConfig};
use mitra_dsl::ast::{Operand, Predicate, TableExtractor};
use mitra_dsl::eval::{cross_product_slices, eval_predicate, node_value, EvalLimits};
use mitra_dsl::Value;
use mitra_hdt::NodeId;

/// Configuration for predicate learning.
#[derive(Debug, Clone, Copy)]
pub struct PredicateLearnConfig {
    /// Universe construction knobs.
    pub universe: UniverseConfig,
    /// Upper bound on the number of intermediate tuples considered per example; larger
    /// intermediate tables cause the candidate ψ to be rejected (the top-level loop
    /// will try another one).
    pub max_intermediate_rows: usize,
    /// Use the exact branch-and-bound cover solver (true) or the greedy approximation.
    pub exact_cover: bool,
    /// Node budget for the exact cover search.
    pub max_cover_nodes: usize,
    /// Maximum number of distinct predicates kept after behaviour deduplication.
    pub max_universe: usize,
    /// Worker threads for evaluating the predicate universe over the labelled tuples
    /// (1 = sequential; 0 = the process-global setting).  Results are identical for
    /// every value: the truth vectors are merged back in universe order.
    pub threads: usize,
}

impl Default for PredicateLearnConfig {
    fn default() -> Self {
        PredicateLearnConfig {
            universe: UniverseConfig::default(),
            max_intermediate_rows: 50_000,
            exact_cover: true,
            max_cover_nodes: 200_000,
            max_universe: 20_000,
            threads: 1,
        }
    }
}

/// A labelled tuple of the intermediate table.
#[derive(Debug, Clone)]
pub struct LabelledTuple {
    /// Index of the example this tuple came from.
    pub example: usize,
    /// The node tuple.
    pub nodes: Vec<NodeId>,
    /// True when the tuple's data projection appears in the output example.
    pub positive: bool,
}

/// Builds the positive/negative example tuples for a candidate table extractor.
///
/// Returns `None` when an intermediate table exceeds `max_rows` (the candidate should
/// then be skipped) or when ψ does not overapproximate some output example (a required
/// precondition of Theorem 2).
pub fn label_tuples(
    examples: &[Example],
    psi: &TableExtractor,
    max_rows: usize,
) -> Option<Vec<LabelledTuple>> {
    label_tuples_cached(
        examples,
        psi,
        max_rows,
        &ColumnEvalCache::new(examples.len()),
    )
}

/// [`label_tuples`] with a shared column-evaluation cache: each distinct column
/// extractor of ψ is evaluated at most once per example across all candidates (and
/// all pool workers) sharing the cache.
pub fn label_tuples_cached(
    examples: &[Example],
    psi: &TableExtractor,
    max_rows: usize,
    cache: &ColumnEvalCache,
) -> Option<Vec<LabelledTuple>> {
    let mut out = Vec::new();
    let limits = EvalLimits::with_max_rows(max_rows);
    for (ex_idx, ex) in examples.iter().enumerate() {
        // The row cap doubles as the candidate filter: an oversized intermediate
        // table rejects the candidate without materializing anything.
        let columns: Vec<_> = psi
            .columns
            .iter()
            .map(|pi| cache.column_nodes(ex_idx, &ex.tree, pi))
            .collect();
        let slices: Vec<&[NodeId]> = columns.iter().map(|c| c.as_slice()).collect();
        let tuples = cross_product_slices(&slices, &limits).ok()?;
        let mut covered_rows = vec![false; ex.output.rows.len()];
        for nodes in tuples {
            let values: Vec<Value> = nodes.iter().map(|n| node_value(&ex.tree, *n)).collect();
            let positive = ex.output.contains_row(&values);
            if positive {
                for (ri, row) in ex.output.rows.iter().enumerate() {
                    if row.as_slice() == values.as_slice() {
                        covered_rows[ri] = true;
                    }
                }
            }
            out.push(LabelledTuple {
                example: ex_idx,
                nodes,
                positive,
            });
        }
        // ψ must overapproximate the output table: every output row must be produced
        // by at least one tuple.
        if !covered_rows.iter().all(|b| *b) {
            return None;
        }
    }
    Some(out)
}

/// Learns a filtering predicate for the candidate table extractor ψ, following
/// Algorithm 3.  Returns `None` when no classifier exists within the configured
/// universe bounds.
pub fn learn_predicate(
    examples: &[Example],
    psi: &TableExtractor,
    config: &PredicateLearnConfig,
) -> Option<Predicate> {
    learn_predicate_cached(examples, psi, config, &ColumnEvalCache::new(examples.len()))
}

/// [`learn_predicate`] with a shared column-evaluation cache (see
/// [`label_tuples_cached`]); the top-level synthesis loop passes one cache for all
/// candidate table extractors of a task.
pub fn learn_predicate_cached(
    examples: &[Example],
    psi: &TableExtractor,
    config: &PredicateLearnConfig,
    cache: &ColumnEvalCache,
) -> Option<Predicate> {
    let tuples = label_tuples_cached(examples, psi, config.max_intermediate_rows, cache)?;
    let positives: Vec<&LabelledTuple> = tuples.iter().filter(|t| t.positive).collect();
    let negatives: Vec<&LabelledTuple> = tuples.iter().filter(|t| !t.positive).collect();

    if positives.is_empty() {
        return None;
    }
    if negatives.is_empty() {
        // Nothing to filter out: the trivial predicate works.
        return Some(Predicate::True);
    }

    // Build the universe and evaluate every predicate on every tuple.
    let universe = construct_universe(examples, psi, &config.universe);
    if universe.is_empty() {
        return None;
    }

    // Deduplicate predicates by their truth vector over all labelled tuples and drop
    // predicates that cannot distinguish anything (constant truth value).  This both
    // shrinks the ILP and mirrors the paper's observation that only behaviourally
    // distinct predicates matter.
    // Keyed by the truth vector so deduplication stays linear in the universe size.
    let truth_vector = |p: &Predicate| -> Vec<bool> {
        tuples
            .iter()
            .map(|t| eval_predicate(&examples[t.example].tree, &t.nodes, p))
            .collect()
    };
    let threads = mitra_pool::resolve(config.threads);
    // The candidates are independent, so the truth vectors fan out across workers;
    // the dedup fold below runs in universe order either way, so `kept` is identical
    // for every thread count.  Tiny universes stay inline: spawning costs more than
    // the evaluation itself.
    let prepared: Vec<(Predicate, Vec<bool>)> = if threads > 1 && universe.len() >= 64 {
        let vectors = mitra_pool::parallel_map(threads, &universe, |_, p| truth_vector(p));
        universe.into_iter().zip(vectors).collect()
    } else {
        universe
            .into_iter()
            .map(|p| {
                let v = truth_vector(&p);
                (p, v)
            })
            .collect()
    };
    let mut kept: Vec<(Predicate, Vec<bool>, usize)> = Vec::new();
    let mut by_vector: std::collections::HashMap<Vec<bool>, usize> =
        std::collections::HashMap::new();
    for (p, vector) in prepared {
        if vector.iter().all(|b| *b) || vector.iter().all(|b| !*b) {
            continue;
        }
        let size = predicate_weight(&p);
        match by_vector.get(&vector) {
            Some(&idx) => {
                // Keep the simpler representative.
                if size < kept[idx].2 {
                    kept[idx].0 = p;
                    kept[idx].2 = size;
                }
            }
            None => {
                by_vector.insert(vector.clone(), kept.len());
                kept.push((p, vector, size));
                if kept.len() >= config.max_universe {
                    break;
                }
            }
        }
    }
    if kept.is_empty() {
        return None;
    }

    // Build the set-cover instance: elements are (positive, negative) pairs, a
    // predicate covers a pair when its truth value differs on the two tuples.
    let pos_idx: Vec<usize> = tuples
        .iter()
        .enumerate()
        .filter(|(_, t)| t.positive)
        .map(|(i, _)| i)
        .collect();
    let neg_idx: Vec<usize> = tuples
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.positive)
        .map(|(i, _)| i)
        .collect();
    let num_elements = pos_idx.len() * neg_idx.len();
    let covers: Vec<Vec<usize>> = kept
        .iter()
        .map(|(_, vector, _)| {
            let mut cov = Vec::new();
            for (pi, &p) in pos_idx.iter().enumerate() {
                for (ni, &n) in neg_idx.iter().enumerate() {
                    if vector[p] != vector[n] {
                        cov.push(pi * neg_idx.len() + ni);
                    }
                }
            }
            cov
        })
        .collect();
    let instance = CoverInstance {
        num_elements,
        covers,
        weights: kept.iter().map(|(_, _, s)| *s).collect(),
    };
    let chosen = if config.exact_cover {
        solve_exact(&instance, config.max_cover_nodes)?
    } else {
        solve_greedy(&instance)?
    };
    if chosen.is_empty() {
        return None;
    }

    // Build the partial truth table over the chosen predicates and minimize.
    let on_set: Vec<Vec<bool>> = pos_idx
        .iter()
        .map(|&t| chosen.iter().map(|&k| kept[k].1[t]).collect())
        .collect();
    let off_set: Vec<Vec<bool>> = neg_idx
        .iter()
        .map(|&t| chosen.iter().map(|&k| kept[k].1[t]).collect())
        .collect();
    let dnf = minimize(chosen.len(), &on_set, &off_set)?;

    // Translate the DNF over variable indices back into a DSL predicate.
    let mut clauses = Vec::new();
    for term in &dnf.terms {
        let mut lits = Vec::new();
        for (var, lit) in term.literals.iter().enumerate() {
            match lit {
                None => {}
                Some(true) => lits.push(kept[chosen[var]].0.clone()),
                Some(false) => lits.push(Predicate::not(kept[chosen[var]].0.clone())),
            }
        }
        clauses.push(Predicate::conjunction(lits));
    }
    let formula = if dnf.terms.is_empty() {
        Predicate::False
    } else {
        Predicate::disjunction(clauses)
    };
    Some(formula)
}

/// Syntactic weight of a predicate, used for tie-breaking in the cover solver.
fn predicate_weight(p: &Predicate) -> usize {
    match p {
        Predicate::Compare { extractor, rhs, .. } => {
            1 + extractor.size()
                + match rhs {
                    Operand::Const(_) => 0,
                    Operand::Column { extractor, .. } => extractor.size(),
                }
        }
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_dsl::ast::ColumnExtractor;
    use mitra_dsl::eval::eval_program;
    use mitra_dsl::{Program, Table};
    use mitra_hdt::generate::{nested_objects, social_network};

    fn social_example() -> Example {
        Example {
            tree: social_network(2, 1),
            output: Table::from_rows(
                &["Person", "Friend-with", "years"],
                &[&["Alice", "Bob", "12"], &["Bob", "Alice", "21"]],
            ),
        }
    }

    fn social_psi() -> TableExtractor {
        use ColumnExtractor as CE;
        let name = CE::pchildren(CE::children(CE::Input, "Person"), "name", 0);
        let pi_f = CE::pchildren(CE::children(CE::Input, "Person"), "Friendship", 0);
        let years = CE::pchildren(CE::children(pi_f, "Friend"), "years", 0);
        TableExtractor::new(vec![name.clone(), name, years])
    }

    #[test]
    fn label_tuples_marks_positive_rows() {
        let ex = social_example();
        let tuples = label_tuples(&[ex], &social_psi(), 10_000).unwrap();
        // 2 names × 2 names × 2 years = 8 tuples, 2 of which are positive.
        assert_eq!(tuples.len(), 8);
        assert_eq!(tuples.iter().filter(|t| t.positive).count(), 2);
    }

    #[test]
    fn label_tuples_rejects_non_overapproximating_extractor() {
        let ex = social_example();
        // Only one column extractor -> arity mismatch means no row can be covered.
        let psi = TableExtractor::new(vec![ColumnExtractor::children(
            ColumnExtractor::Input,
            "Person",
        )]);
        assert!(label_tuples(&[ex], &psi, 10_000).is_none());
    }

    #[test]
    fn learns_predicate_for_motivating_example() {
        let ex = social_example();
        let psi = social_psi();
        let phi = learn_predicate(
            std::slice::from_ref(&ex),
            &psi,
            &PredicateLearnConfig::default(),
        )
        .expect("a predicate should be found");
        let prog = Program::new(psi, phi);
        let out = eval_program(&ex.tree, &prog).unwrap();
        assert!(
            out.same_bag(&ex.output),
            "synthesized filter does not reproduce the example: {out}"
        );
    }

    #[test]
    fn trivial_predicate_when_extractor_is_exact() {
        // Single column: person names; the cross product is already exactly the output.
        let ex = Example {
            tree: social_network(2, 1),
            output: Table::from_rows(&["name"], &[&["Alice"], &["Bob"]]),
        };
        let psi = TableExtractor::new(vec![ColumnExtractor::pchildren(
            ColumnExtractor::children(ColumnExtractor::Input, "Person"),
            "name",
            0,
        )]);
        let phi = learn_predicate(&[ex], &psi, &PredicateLearnConfig::default()).unwrap();
        assert_eq!(phi, Predicate::True);
    }

    #[test]
    fn figure8_constant_filter_is_learned() {
        // Keep the text of objects whose id < 20, paired with the text of their
        // directly nested object.
        let tree = nested_objects();
        let output = Table::from_rows(&["outer", "inner"], &[&["outer-a", "inner-a"]]);
        let ex = Example { tree, output };
        let pi = ColumnExtractor::pchildren(
            ColumnExtractor::descendants(ColumnExtractor::Input, "object"),
            "text",
            0,
        );
        let psi = TableExtractor::new(vec![pi.clone(), pi]);
        let phi = learn_predicate(
            std::slice::from_ref(&ex),
            &psi,
            &PredicateLearnConfig::default(),
        )
        .expect("predicate expected");
        let prog = Program::new(psi, phi);
        let out = eval_program(&ex.tree, &prog).unwrap();
        assert!(out.same_bag(&ex.output), "got {out}");
    }

    #[test]
    fn thread_count_does_not_change_the_learned_predicate() {
        let ex = social_example();
        let psi = social_psi();
        let sequential = learn_predicate(
            std::slice::from_ref(&ex),
            &psi,
            &PredicateLearnConfig::default(),
        );
        for threads in [2, 4] {
            let config = PredicateLearnConfig {
                threads,
                ..Default::default()
            };
            let parallel = learn_predicate(std::slice::from_ref(&ex), &psi, &config);
            assert_eq!(sequential, parallel, "threads={threads} diverged");
        }
    }

    #[test]
    fn shared_cache_reuses_column_evaluations_across_candidates() {
        let ex = social_example();
        let cache = ColumnEvalCache::new(1);
        let psi = social_psi();
        let first = label_tuples_cached(std::slice::from_ref(&ex), &psi, 10_000, &cache).unwrap();
        let cached_entries = cache.len();
        // ψ has two identical name columns -> strictly fewer cache entries than
        // columns; relabelling with the same cache must not grow it.
        assert!(cached_entries < psi.columns.len() + 1);
        let second = label_tuples_cached(std::slice::from_ref(&ex), &psi, 10_000, &cache).unwrap();
        assert_eq!(cache.len(), cached_entries);
        assert_eq!(first.len(), second.len());
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.nodes, b.nodes);
            assert_eq!(a.positive, b.positive);
        }
    }

    #[test]
    fn greedy_mode_also_learns_a_correct_predicate() {
        let ex = social_example();
        let psi = social_psi();
        let config = PredicateLearnConfig {
            exact_cover: false,
            ..Default::default()
        };
        let phi =
            learn_predicate(std::slice::from_ref(&ex), &psi, &config).expect("greedy predicate");
        let prog = Program::new(psi, phi);
        assert!(eval_program(&ex.tree, &prog).unwrap().same_bag(&ex.output));
    }

    #[test]
    fn impossible_output_returns_none() {
        // Output contains a row whose years value never co-occurs, and no predicate in
        // a tiny universe can separate it.
        let ex = Example {
            tree: social_network(2, 1),
            output: Table::from_rows(
                &["Person", "Friend-with", "years"],
                &[&["Alice", "Alice", "4"]],
            ),
        };
        let psi = social_psi();
        let config = PredicateLearnConfig {
            universe: UniverseConfig {
                max_node_extractor_depth: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        // With only identity node extractors the spurious (Alice, Alice, 4) cannot be
        // distinguished from (Alice, Bob, 4) tuples sharing all leaf data... the learner
        // may or may not find a classifier, but it must not panic and must return a
        // predicate that actually reproduces the example if it returns one.
        if let Some(phi) = learn_predicate(std::slice::from_ref(&ex), &psi, &config) {
            let prog = Program::new(psi, phi);
            assert!(eval_program(&ex.tree, &prog).unwrap().same_bag(&ex.output));
        }
    }
}
