//! Baseline synthesizer used by the ablation experiments (E7 in DESIGN.md).
//!
//! The paper's design rests on two choices: (1) column extractors are learned through a
//! DFA whose language is exactly the consistent programs, and (2) the minimum predicate
//! set is found exactly through a 0-1 ILP formulation.  To quantify what those choices
//! buy, this module provides a deliberately simpler synthesizer:
//!
//! * column extractors are found by *blind enumeration* of operator sequences (no DFA,
//!   no state sharing), checking each candidate against every example from scratch;
//! * the predicate is learned with the greedy cover heuristic instead of the exact
//!   solver.
//!
//! The result quality is comparable on easy tasks, but enumeration explores many more
//! candidates and degrades quickly as the alphabet (number of distinct tags) grows —
//! which is what the ablation benchmark measures.

use crate::dfa::{alphabet_of, apply_step, covers_column};
use crate::predicate::{learn_predicate, PredicateLearnConfig};
use crate::synthesize::{Example, SynthConfig, SynthError, Synthesis};
use mitra_dsl::ast::{ColumnExtractor, ExtractorStep, Program, TableExtractor};
use mitra_dsl::cost::cost;
use mitra_dsl::eval::{eval_program_with, EvalLimits};
use mitra_dsl::Value;
use std::time::Instant;

/// Statistics from blind column-extractor enumeration.
#[derive(Debug, Clone, Default)]
pub struct EnumerationStats {
    /// Number of candidate words (operator sequences) evaluated.
    pub candidates_evaluated: usize,
}

/// Enumerates column extractors for column `col` by breadth-first search over operator
/// sequences, without building a DFA.  Every candidate is evaluated against every
/// example tree from scratch.
pub fn enumerate_column_extractors_blind(
    examples: &[Example],
    col: usize,
    max_len: usize,
    max_candidates: usize,
    stats: &mut EnumerationStats,
) -> Vec<ColumnExtractor> {
    let mut results = Vec::new();
    // The alphabet is the union of the per-example alphabets.
    let mut alphabet: Vec<ExtractorStep> = Vec::new();
    for ex in examples {
        for letter in alphabet_of(&ex.tree) {
            if !alphabet.contains(&letter) {
                alphabet.push(letter);
            }
        }
    }
    let columns: Vec<Vec<Value>> = examples.iter().map(|ex| ex.output.column(col)).collect();

    let mut frontier: Vec<Vec<ExtractorStep>> = vec![Vec::new()];
    for _ in 0..=max_len {
        let mut next = Vec::new();
        for word in &frontier {
            stats.candidates_evaluated += 1;
            // Evaluate the word on every example (from scratch — no memoization).
            let mut consistent = true;
            let mut all_empty = false;
            for (ex, column) in examples.iter().zip(&columns) {
                let mut set = vec![ex.tree.root()];
                for step in word {
                    set = apply_step(&ex.tree, &set, step);
                    if set.is_empty() {
                        break;
                    }
                }
                if set.is_empty() {
                    all_empty = true;
                }
                if !covers_column(&ex.tree, &set, column) {
                    consistent = false;
                }
            }
            if consistent && !word.is_empty() {
                results.push(ColumnExtractor::from_steps(word));
                if results.len() >= max_candidates {
                    return results;
                }
            }
            if !all_empty && word.len() < max_len {
                for letter in &alphabet {
                    let mut w = word.clone();
                    w.push(*letter);
                    next.push(w);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    results
}

/// Baseline end-to-end synthesis: blind column enumeration + greedy predicate cover.
///
/// Returns the same [`Synthesis`] structure as the main algorithm so the two can be
/// compared directly; `candidates_tried` reports the number of *enumerated words*,
/// which is the quantity the ablation benchmark contrasts with the DFA approach.
pub fn learn_transformation_baseline(
    examples: &[Example],
    config: &SynthConfig,
) -> Result<Synthesis, SynthError> {
    let start = Instant::now();
    if examples.is_empty() {
        return Err(SynthError::EmptySpecification);
    }
    let arity = examples[0].output.arity();
    if arity == 0 {
        return Err(SynthError::EmptySpecification);
    }
    if examples.iter().any(|e| e.output.arity() != arity) {
        return Err(SynthError::InconsistentArity);
    }

    let mut stats = EnumerationStats::default();
    let mut per_column = Vec::with_capacity(arity);
    for col in 0..arity {
        let cands = enumerate_column_extractors_blind(
            examples,
            col,
            config.dfa_limits.max_word_len,
            config.max_column_candidates,
            &mut stats,
        );
        if cands.is_empty() {
            return Err(SynthError::NoColumnExtractor(col));
        }
        per_column.push(cands);
    }

    let pred_config = PredicateLearnConfig {
        universe: config.universe,
        max_intermediate_rows: config.max_intermediate_rows,
        exact_cover: false,
        ..Default::default()
    };

    // Try combinations in the order produced (no size-based ranking): first success wins.
    let mut best: Option<(Program, mitra_dsl::Cost)> = None;
    let mut combos = vec![Vec::new()];
    for cands in &per_column {
        let mut next = Vec::new();
        for combo in &combos {
            for pi in cands {
                let mut c: Vec<ColumnExtractor> = combo.clone();
                c.push(pi.clone());
                next.push(c);
            }
        }
        combos = next;
        if combos.len() > config.max_table_candidates * 4 {
            combos.truncate(config.max_table_candidates * 4);
        }
    }
    combos.truncate(config.max_table_candidates);

    let mut programs_found = 0;
    for combo in combos {
        if let Some(limit) = config.timeout {
            if start.elapsed() > limit {
                break;
            }
        }
        let psi = TableExtractor::new(combo);
        let Some(phi) = learn_predicate(examples, &psi, &pred_config) else {
            continue;
        };
        let mut program = Program::new(psi, phi);
        program.column_names = examples[0].output.columns.clone();
        // Same validation cap as the predicate learner (see `learn_transformation`):
        // resource failures are impossible for candidates that got this far.
        let limits = EvalLimits::with_max_rows(config.max_intermediate_rows);
        if !examples.iter().all(|ex| {
            eval_program_with(&ex.tree, &program, &limits)
                .map(|t| t.same_bag(&ex.output))
                .unwrap_or(false)
        }) {
            continue;
        }
        programs_found += 1;
        let c = cost(&program);
        if best.as_ref().map(|(_, bc)| c < *bc).unwrap_or(true) {
            best = Some((program, c));
        }
        // Baseline stops at the first working program (no Occam's-razor sweep).
        break;
    }

    match best {
        Some((program, c)) => Ok(Synthesis {
            program,
            cost: c,
            candidates_tried: stats.candidates_evaluated,
            programs_found,
            elapsed: start.elapsed(),
            // The blind baseline does not track search-space truncation and always
            // runs sequentially (it exists for the E7 ablation only).
            truncated: false,
            threads_used: 1,
            profile: crate::synthesize::SynthProfile::default(),
            budget_breach: None,
        }),
        None => Err(SynthError::NoProgram),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesize::learn_transformation;
    use mitra_dsl::eval::eval_program;
    use mitra_dsl::Table;
    use mitra_hdt::generate::social_network;

    fn simple_example() -> Example {
        Example::new(
            social_network(2, 1),
            Table::from_rows(&["name"], &[&["Alice"], &["Bob"]]),
        )
    }

    #[test]
    fn blind_enumeration_finds_extractors() {
        let mut stats = EnumerationStats::default();
        let cands = enumerate_column_extractors_blind(&[simple_example()], 0, 4, 16, &mut stats);
        assert!(!cands.is_empty());
        assert!(stats.candidates_evaluated > cands.len());
    }

    #[test]
    fn baseline_solves_simple_projection() {
        let ex = simple_example();
        let result =
            learn_transformation_baseline(std::slice::from_ref(&ex), &SynthConfig::default())
                .unwrap();
        assert!(eval_program(&ex.tree, &result.program)
            .unwrap()
            .same_bag(&ex.output));
    }

    #[test]
    fn baseline_evaluates_more_candidates_than_dfa() {
        let ex = simple_example();
        let dfa_result =
            learn_transformation(std::slice::from_ref(&ex), &SynthConfig::default()).unwrap();
        let base_result = learn_transformation_baseline(&[ex], &SynthConfig::default()).unwrap();
        // The DFA path counts table-extractor candidates (small); the blind path counts
        // every enumerated word, which is much larger even on this tiny example.
        assert!(base_result.candidates_tried > dfa_result.candidates_tried);
    }

    #[test]
    fn baseline_rejects_unsatisfiable_columns() {
        let ex = Example::new(
            social_network(2, 1),
            Table::from_rows(&["x"], &[&["missing-value"]]),
        );
        assert!(matches!(
            learn_transformation_baseline(&[ex], &SynthConfig::default()),
            Err(SynthError::NoColumnExtractor(0))
        ));
    }
}
