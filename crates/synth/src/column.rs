//! Learning column extraction programs (Algorithm 2, `LearnColExtractors`).
//!
//! For each input–output example we build the DFA of Figure 9 and intersect them; the
//! words accepted by the resulting automaton are exactly the column extractors
//! consistent with every example.  We enumerate accepted words shortest-first so that
//! the simplest candidates are considered first by the top-level synthesizer.

use crate::budget::{Budget, BudgetBreach, BudgetResource};
use crate::dfa::{Dfa, DfaLimits};
use crate::synthesize::Example;
use mitra_dsl::ast::ColumnExtractor;
use mitra_dsl::Value;

/// Configuration knobs for column-extractor learning.
#[derive(Debug, Clone, Copy)]
pub struct ColumnLearnConfig {
    /// Limits on DFA construction.
    pub limits: DfaLimits,
    /// Maximum number of candidate extractors returned per column.
    pub max_candidates: usize,
}

impl Default for ColumnLearnConfig {
    fn default() -> Self {
        ColumnLearnConfig {
            limits: DfaLimits::default(),
            max_candidates: 32,
        }
    }
}

/// Candidate extractors learned for one output column, with truncation provenance.
#[derive(Debug, Clone, Default)]
pub struct ColumnCandidates {
    /// Candidate extractors, ordered simplest-first.  Empty when no extractor within
    /// the configured limits covers the column.
    pub extractors: Vec<ColumnExtractor>,
    /// True when any per-example DFA hit a construction limit or the enumeration hit
    /// the candidate cap: the candidate list may then under-approximate the search
    /// space.
    pub truncated: bool,
}

/// Learns the set of column extractors for column `col` that are consistent with all
/// examples (i.e. whose extracted node set covers the column of every output example).
///
/// Returns candidates ordered simplest-first.  The returned vector is empty when no
/// extractor within the configured limits covers the column.
pub fn learn_column_extractors(
    examples: &[Example],
    col: usize,
    config: &ColumnLearnConfig,
) -> Vec<ColumnExtractor> {
    let mut combined: Option<Dfa> = None;
    for ex in examples {
        let column: Vec<Value> = ex.output.column(col);
        let dfa = Dfa::construct(&ex.tree, &column, config.limits);
        combined = Some(match combined {
            None => dfa,
            Some(acc) => acc.intersect(&dfa),
        });
    }
    let Some(dfa) = combined else {
        return Vec::new();
    };
    dfa.enumerate(config.limits.max_word_len, config.max_candidates)
        .words
        .iter()
        .map(|word| ColumnExtractor::from_steps(word))
        .collect()
}

/// Learns candidate extractors for **every** output column `0..arity`, building the
/// per-example DFAs of all columns concurrently on up to `threads` pool workers.
///
/// Each (column, example) pair's automaton is independent, so construction — the
/// dominant cost for large example documents — fans out freely; the per-column
/// product automata are then intersected **in example order** and enumerated with the
/// name-sorted tie-break, so the returned candidates are byte-identical to the
/// sequential path regardless of scheduling.
pub fn learn_all_columns(
    examples: &[Example],
    arity: usize,
    config: &ColumnLearnConfig,
    threads: usize,
) -> Vec<ColumnCandidates> {
    let automata = learn_column_automata(examples, arity, config.limits, threads);
    automata
        .dfas
        .into_iter()
        .map(|dfa| {
            let Some(dfa) = dfa else {
                return ColumnCandidates::default();
            };
            let enumeration = dfa.enumerate(config.limits.max_word_len, config.max_candidates);
            ColumnCandidates {
                extractors: enumeration
                    .words
                    .iter()
                    .map(|word| ColumnExtractor::from_steps(word))
                    .collect(),
                truncated: dfa.truncated || enumeration.truncated,
            }
        })
        .collect()
}

/// Per-column product automata plus phase timings for [`learn_column_automata`].
#[derive(Debug)]
pub struct ColumnAutomata {
    /// The intersected automaton of each column (`None` when there are no
    /// examples, i.e. nothing to intersect — or when a state budget breached
    /// before the column's product was completed).
    pub dfas: Vec<Option<Dfa>>,
    /// CPU time spent constructing per-example automata, summed across workers.
    pub build: std::time::Duration,
    /// Wall time spent intersecting automata (sequential, in example order).
    pub intersect: std::time::Duration,
    /// DFA states constructed plus intersected, accumulated in canonical
    /// (column, example) pair order then column-major intersection order —
    /// identical at every thread count.
    pub states_total: u64,
    /// Set when a state budget ran out; `dfas` is then partial and must not be
    /// used for synthesis.
    pub breach: Option<BudgetBreach>,
}

/// Builds the intersected column automaton for **every** output column `0..arity`,
/// constructing the per-example DFAs concurrently on up to `threads` pool workers.
///
/// Each (column, example) pair's automaton is independent, so construction — the
/// dominant cost for large example documents — fans out freely; the per-column
/// product automata are then intersected **in example order**, so the resulting
/// automata (and any enumeration over them) are byte-identical to the sequential
/// path regardless of scheduling.  The best-first table search streams words from
/// these automata directly instead of materializing a capped candidate list.
pub fn learn_column_automata(
    examples: &[Example],
    arity: usize,
    limits: DfaLimits,
    threads: usize,
) -> ColumnAutomata {
    learn_column_automata_budgeted(examples, arity, limits, threads, None)
}

/// [`learn_column_automata`] with an optional deterministic state budget.
///
/// State fuel is spent in canonical order — every constructed per-(column,
/// example) automaton's states first (pair order, regardless of which worker
/// built it), then each sequential intersection product's states — so with
/// `max_states` set, the breach point is a pure function of the inputs, never of
/// the thread count.  On a breach the per-example automata are still all built
/// (their construction fans out before accounting), but intersection stops and
/// the result carries `breach: Some(..)` with every remaining column `None`.
pub fn learn_column_automata_budgeted(
    examples: &[Example],
    arity: usize,
    limits: DfaLimits,
    threads: usize,
    max_states: Option<u64>,
) -> ColumnAutomata {
    // Workers share the example trees read-only: make sure no two of them race to
    // lazily build the same navigation index.
    for ex in examples {
        ex.tree.ensure_index();
    }
    let budget = Budget {
        max_dfa_states: max_states,
        ..Budget::UNLIMITED
    };
    let pairs: Vec<(usize, usize)> = (0..arity)
        .flat_map(|col| (0..examples.len()).map(move |ex| (col, ex)))
        .collect();
    let build_nanos = std::sync::atomic::AtomicU64::new(0);
    let dfas: Vec<Dfa> = mitra_pool::parallel_map(threads, &pairs, |_, &(col, ex_idx)| {
        // The span feeds `build_nanos` on drop: summed across workers this is the
        // CPU-time view the `SynthProfile` reports.
        let _span = mitra_trace::span_acc("synth", "dfa_build", &build_nanos);
        let ex = &examples[ex_idx];
        let column: Vec<Value> = ex.output.column(col);
        Dfa::construct(&ex.tree, &column, limits)
    });

    // Charge construction fuel in canonical pair order, after the fan-out: every
    // automaton is built either way (that keeps the build phase schedule-free),
    // but the breach point is deterministic.
    let mut states_total: u64 = 0;
    let mut breach: Option<BudgetBreach> = None;
    for dfa in &dfas {
        states_total += dfa.num_states() as u64;
        if let Err(b) = budget.check(BudgetResource::DfaStates, states_total) {
            breach = Some(b);
            break;
        }
    }

    let intersect_nanos = std::sync::atomic::AtomicU64::new(0);
    let combined: Vec<Option<Dfa>> = {
        let _span = mitra_trace::span_acc("synth", "dfa_intersect", &intersect_nanos);
        let mut per_dfa = dfas.into_iter();
        (0..arity)
            .map(|_| {
                // Canonical merge: intersect this column's automata in example
                // order, charging each product's states as it is built and
                // bailing out of further intersection work once fuel runs out.
                let mut combined: Option<Dfa> = None;
                for _ in 0..examples.len() {
                    // `dfas` holds exactly one DFA per (column, example) pair, so
                    // the iterator cannot run dry; stop merging rather than panic
                    // if that invariant is ever broken.
                    let Some(dfa) = per_dfa.next() else { break };
                    if breach.is_some() {
                        continue;
                    }
                    combined = Some(match combined {
                        None => dfa,
                        Some(acc) => {
                            let product = acc.intersect(&dfa);
                            states_total += product.num_states() as u64;
                            if let Err(b) = budget.check(BudgetResource::DfaStates, states_total) {
                                breach = Some(b);
                            }
                            product
                        }
                    });
                }
                if breach.is_some() {
                    None
                } else {
                    combined
                }
            })
            .collect()
    };
    ColumnAutomata {
        dfas: combined,
        build: std::time::Duration::from_nanos(
            build_nanos.load(std::sync::atomic::Ordering::Relaxed),
        ),
        intersect: std::time::Duration::from_nanos(
            intersect_nanos.load(std::sync::atomic::Ordering::Relaxed),
        ),
        states_total,
        breach,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_dsl::eval::{eval_column, node_value};
    use mitra_dsl::Table;
    use mitra_hdt::generate::social_network;

    fn example() -> Example {
        Example {
            tree: social_network(2, 1),
            output: Table::from_rows(
                &["Person", "Friend-with", "years"],
                &[&["Alice", "Bob", "12"], &["Bob", "Alice", "21"]],
            ),
        }
    }

    #[test]
    fn learns_name_extractor_for_first_column() {
        let ex = example();
        let cands =
            learn_column_extractors(std::slice::from_ref(&ex), 0, &ColumnLearnConfig::default());
        assert!(!cands.is_empty());
        // Every candidate must cover {Alice, Bob}.
        for pi in &cands {
            let nodes = eval_column(&ex.tree, pi);
            let vals: Vec<String> = nodes
                .iter()
                .map(|n| node_value(&ex.tree, *n).render())
                .collect();
            assert!(vals.contains(&"Alice".to_string()));
            assert!(vals.contains(&"Bob".to_string()));
        }
    }

    #[test]
    fn candidates_are_ordered_simplest_first() {
        let ex = example();
        let cands = learn_column_extractors(&[ex], 0, &ColumnLearnConfig::default());
        for pair in cands.windows(2) {
            assert!(pair[0].size() <= pair[1].size());
        }
    }

    #[test]
    fn years_column_has_multiple_extractors() {
        // The paper notes four different extractors for the `years` column (π31..π34);
        // we only require that more than one exists (e.g. via years and via id).
        let ex = example();
        let cands = learn_column_extractors(&[ex], 2, &ColumnLearnConfig::default());
        assert!(
            cands.len() > 1,
            "expected several candidates, got {cands:?}"
        );
    }

    #[test]
    fn impossible_column_yields_no_extractor() {
        let ex = Example {
            tree: social_network(2, 1),
            output: Table::from_rows(&["x"], &[&["value-not-in-tree"]]),
        };
        let cands = learn_column_extractors(&[ex], 0, &ColumnLearnConfig::default());
        assert!(cands.is_empty());
    }

    #[test]
    fn multiple_examples_restrict_candidates() {
        let ex1 = example();
        let ex2 = Example {
            tree: social_network(3, 1),
            output: Table::from_rows(
                &["Person", "Friend-with", "years"],
                &[
                    &["Alice", "Bob", "12"],
                    &["Bob", "Carol", "23"],
                    &["Carol", "Alice", "31"],
                ],
            ),
        };
        let one =
            learn_column_extractors(std::slice::from_ref(&ex1), 0, &ColumnLearnConfig::default());
        let both = learn_column_extractors(&[ex1, ex2], 0, &ColumnLearnConfig::default());
        assert!(!both.is_empty());
        assert!(both.len() <= one.len());
    }

    #[test]
    fn learn_all_columns_matches_per_column_learning() {
        let ex1 = example();
        let ex2 = Example {
            tree: social_network(3, 1),
            output: Table::from_rows(
                &["Person", "Friend-with", "years"],
                &[
                    &["Alice", "Bob", "12"],
                    &["Bob", "Carol", "23"],
                    &["Carol", "Alice", "31"],
                ],
            ),
        };
        let examples = [ex1, ex2];
        let config = ColumnLearnConfig::default();
        let sequential = learn_all_columns(&examples, 3, &config, 1);
        let parallel = learn_all_columns(&examples, 3, &config, 4);
        for col in 0..3 {
            assert_eq!(
                sequential[col].extractors, parallel[col].extractors,
                "column {col} diverged between thread counts"
            );
            assert_eq!(
                sequential[col].extractors,
                learn_column_extractors(&examples, col, &config),
                "column {col} diverged from single-column learner"
            );
        }
    }

    #[test]
    fn learn_all_columns_reports_truncation() {
        let ex = example();
        let tight = ColumnLearnConfig {
            max_candidates: 1,
            ..Default::default()
        };
        let cands = learn_all_columns(std::slice::from_ref(&ex), 3, &tight, 2);
        assert!(
            cands.iter().any(|c| c.truncated),
            "a 1-candidate cap must report truncation"
        );
        let generous = ColumnLearnConfig {
            max_candidates: 100_000,
            ..Default::default()
        };
        let roomy = learn_all_columns(std::slice::from_ref(&ex), 1, &generous, 2);
        assert!(!roomy[0].truncated);
    }

    #[test]
    fn respects_candidate_cap() {
        let ex = example();
        let config = ColumnLearnConfig {
            max_candidates: 2,
            ..Default::default()
        };
        let cands = learn_column_extractors(&[ex], 2, &config);
        assert!(cands.len() <= 2);
    }
}
