//! Quine–McCluskey logic minimization with don't-cares.
//!
//! Algorithm 3 needs, after the minimum predicate set Φ* has been chosen, a *smallest
//! DNF formula* over Φ* that evaluates to true on every positive example and false on
//! every negative example (Figure 13 in the paper).  The truth table is partial: only
//! the combinations actually observed among the examples are constrained, every other
//! combination is a don't-care that the minimizer may use freely.
//!
//! The implementation follows the classical two-step method:
//! 1. compute all prime implicants of (on-set ∪ don't-care-set) by iterative merging,
//! 2. choose a minimum subset of prime implicants covering the on-set (Petrick's
//!    problem), reusing the exact set-cover solver from [`crate::cover`].

use crate::cover::{solve_exact, CoverInstance};

/// A product term over `n` boolean variables: for each variable either a required
/// value or "don't care" (the variable does not appear in the term).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Term {
    /// `literals[i]` is `Some(true)` for the positive literal, `Some(false)` for the
    /// negated literal, `None` when variable `i` does not appear.
    pub literals: Vec<Option<bool>>,
}

impl Term {
    /// The term consisting of exactly one assignment (a minterm).
    pub fn minterm(assignment: &[bool]) -> Term {
        Term {
            literals: assignment.iter().map(|b| Some(*b)).collect(),
        }
    }

    /// Number of literals in the term.
    pub fn num_literals(&self) -> usize {
        self.literals.iter().filter(|l| l.is_some()).count()
    }

    /// Whether the term evaluates to true under the given assignment.
    pub fn matches(&self, assignment: &[bool]) -> bool {
        self.literals
            .iter()
            .zip(assignment)
            .all(|(lit, val)| match lit {
                None => true,
                Some(required) => required == val,
            })
    }

    /// Attempts to merge two terms differing in exactly one specified literal.
    fn merge(&self, other: &Term) -> Option<Term> {
        let mut diff = 0;
        let mut merged = Vec::with_capacity(self.literals.len());
        for (a, b) in self.literals.iter().zip(&other.literals) {
            if a == b {
                merged.push(*a);
            } else if a.is_some() && b.is_some() {
                diff += 1;
                if diff > 1 {
                    return None;
                }
                merged.push(None);
            } else {
                return None;
            }
        }
        if diff == 1 {
            Some(Term { literals: merged })
        } else {
            None
        }
    }
}

/// A DNF formula: disjunction of product terms.  An empty disjunction is `false`; a
/// formula containing an empty term (no literals) is `true`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dnf {
    /// The terms of the formula.
    pub terms: Vec<Term>,
}

impl Dnf {
    /// Evaluates the formula under an assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.terms.iter().any(|t| t.matches(assignment))
    }

    /// Total number of literal occurrences (used to compare formula sizes).
    pub fn literal_count(&self) -> usize {
        self.terms.iter().map(Term::num_literals).sum()
    }
}

/// Minimizes a partially-specified boolean function of `num_vars` variables.
///
/// `on_set` are assignments that must evaluate to true, `off_set` assignments that must
/// evaluate to false; everything else is a don't-care.  Returns `None` when the
/// specification is contradictory (some assignment appears in both sets).
pub fn minimize(num_vars: usize, on_set: &[Vec<bool>], off_set: &[Vec<bool>]) -> Option<Dnf> {
    // Contradiction check.
    for on in on_set {
        if off_set.iter().any(|off| off == on) {
            return None;
        }
    }
    let mut on: Vec<Vec<bool>> = on_set.to_vec();
    on.sort();
    on.dedup();
    if on.is_empty() {
        return Some(Dnf { terms: vec![] });
    }
    let mut off: Vec<Vec<bool>> = off_set.to_vec();
    off.sort();
    off.dedup();

    // Don't-cares: all assignments not in on ∪ off.  Only enumerate them when the
    // variable count is small enough; otherwise minimize without don't-cares (still
    // correct, possibly less minimal).
    let mut care_terms: Vec<Term> = on.iter().map(|a| Term::minterm(a)).collect();
    if num_vars <= 14 {
        for code in 0u32..(1u32 << num_vars) {
            let assignment: Vec<bool> = (0..num_vars).map(|i| (code >> i) & 1 == 1).collect();
            if !on.contains(&assignment) && !off.contains(&assignment) {
                care_terms.push(Term::minterm(&assignment));
            }
        }
    }

    // Step 1: prime implicants by iterative merging.
    let mut primes: Vec<Term> = Vec::new();
    let mut current = care_terms;
    current.sort_by_key(|t| t.literals.clone());
    current.dedup();
    while !current.is_empty() {
        let mut merged_any = vec![false; current.len()];
        let mut next: Vec<Term> = Vec::new();
        for i in 0..current.len() {
            for j in (i + 1)..current.len() {
                if let Some(m) = current[i].merge(&current[j]) {
                    merged_any[i] = true;
                    merged_any[j] = true;
                    if !next.contains(&m) {
                        next.push(m);
                    }
                }
            }
        }
        for (i, t) in current.iter().enumerate() {
            if !merged_any[i] && !primes.contains(t) {
                primes.push(t.clone());
            }
        }
        current = next;
    }

    // Step 2: minimum cover of the on-set by prime implicants (Petrick), via the exact
    // set-cover solver.  Weights = literal counts so that ties favour shorter terms.
    let matrix: Vec<Vec<bool>> = primes
        .iter()
        .map(|p| on.iter().map(|a| p.matches(a)).collect())
        .collect();
    let mut instance = CoverInstance::from_matrix(&matrix);
    instance.weights = primes.iter().map(Term::num_literals).collect();
    let chosen = solve_exact(&instance, 200_000)?;
    let terms = chosen.into_iter().map(|k| primes[k].clone()).collect();
    let dnf = Dnf { terms };

    // Sanity: the result must satisfy the specification.
    debug_assert!(on.iter().all(|a| dnf.eval(a)));
    debug_assert!(off.iter().all(|a| !dnf.eval(a)));
    Some(dnf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assignment(bits: &[u8]) -> Vec<bool> {
        bits.iter().map(|b| *b == 1).collect()
    }

    #[test]
    fn single_positive_no_negative_is_trivially_true() {
        let dnf = minimize(2, &[assignment(&[1, 0])], &[]).unwrap();
        // With every other assignment a don't-care, the minimal formula is `true`
        // (a single empty term).
        assert_eq!(dnf.terms.len(), 1);
        assert_eq!(dnf.terms[0].num_literals(), 0);
        assert!(dnf.eval(&assignment(&[0, 0])));
    }

    #[test]
    fn contradiction_returns_none() {
        let a = assignment(&[1, 1]);
        assert!(minimize(2, std::slice::from_ref(&a), std::slice::from_ref(&a)).is_none());
    }

    #[test]
    fn empty_on_set_is_false() {
        let dnf = minimize(2, &[], &[assignment(&[0, 0])]).unwrap();
        assert!(dnf.terms.is_empty());
        assert!(!dnf.eval(&assignment(&[1, 1])));
    }

    #[test]
    fn xor_needs_two_terms() {
        let on = vec![assignment(&[0, 1]), assignment(&[1, 0])];
        let off = vec![assignment(&[0, 0]), assignment(&[1, 1])];
        let dnf = minimize(2, &on, &off).unwrap();
        assert_eq!(dnf.terms.len(), 2);
        for a in &on {
            assert!(dnf.eval(a));
        }
        for a in &off {
            assert!(!dnf.eval(a));
        }
    }

    #[test]
    fn dont_cares_enable_simplification() {
        // f(a,b,c): on = {111}, off = {000}.  Everything else don't-care, so a single
        // positive literal suffices.
        let dnf = minimize(3, &[assignment(&[1, 1, 1])], &[assignment(&[0, 0, 0])]).unwrap();
        assert_eq!(dnf.terms.len(), 1);
        assert_eq!(dnf.terms[0].num_literals(), 1);
    }

    #[test]
    fn paper_figure13_truth_table() {
        // Variables: (φ2, φ5, φ7).  Positive rows: (T,T,F), (T,T,T), (T,F,F);
        // negative rows: (F,F,F), (T,F,T), (F,F,T).  The paper reports the minimal
        // classifier φ5 ∨ (φ2 ∧ ¬φ7).
        let on = vec![
            assignment(&[1, 1, 0]),
            assignment(&[1, 1, 1]),
            assignment(&[1, 0, 0]),
        ];
        let off = vec![
            assignment(&[0, 0, 0]),
            assignment(&[1, 0, 1]),
            assignment(&[0, 0, 1]),
        ];
        let dnf = minimize(3, &on, &off).unwrap();
        for a in &on {
            assert!(dnf.eval(a));
        }
        for a in &off {
            assert!(!dnf.eval(a));
        }
        // Minimal solution uses 2 terms and 3 literal occurrences, matching
        // φ5 ∨ (φ2 ∧ ¬φ7).
        assert_eq!(dnf.terms.len(), 2);
        assert_eq!(dnf.literal_count(), 3);
    }

    #[test]
    fn term_merge_rules() {
        let a = Term::minterm(&assignment(&[1, 0, 1]));
        let b = Term::minterm(&assignment(&[1, 1, 1]));
        let m = a.merge(&b).unwrap();
        assert_eq!(m.literals, vec![Some(true), None, Some(true)]);
        // Terms differing in two positions do not merge.
        let c = Term::minterm(&assignment(&[0, 1, 0]));
        assert!(a.merge(&c).is_none());
    }

    #[test]
    fn five_variable_function_minimizes_correctly() {
        // f = x0 ∧ x4 with all combinations explicitly specified (no don't-cares).
        let mut on = Vec::new();
        let mut off = Vec::new();
        for code in 0u32..32 {
            let a: Vec<bool> = (0..5).map(|i| (code >> i) & 1 == 1).collect();
            if a[0] && a[4] {
                on.push(a);
            } else {
                off.push(a);
            }
        }
        let dnf = minimize(5, &on, &off).unwrap();
        assert_eq!(dnf.terms.len(), 1);
        assert_eq!(dnf.terms[0].num_literals(), 2);
    }
}
