//! Deterministic fuel budgets for synthesis and execution.
//!
//! PR 3 removed wall-clock timeouts from the determinism-critical paths because a
//! deadline firing mid-search makes the examined candidate set depend on machine
//! speed and thread count.  A [`Budget`] is the deterministic replacement: pure
//! *work counters* — candidates examined at the best-first frontier, DFA states
//! constructed/intersected, rows materialized by the executor — that are advanced
//! at canonical points of the sequential control flow, so a budget exhausts after
//! exactly the same work at every thread count and on every machine.
//!
//! Checked at three layers:
//!
//! * the best-first frontier ([`crate::synthesize::learn_transformation`]) checks
//!   `candidates` against the total pop count at every batch boundary;
//! * column-automata learning ([`crate::column::learn_column_automata_budgeted`])
//!   accumulates constructed + intersected state counts in canonical (column,
//!   example) order and stops intersecting once `dfa_states` is spent;
//! * the executor ([`crate::exec::execute_nodes_budgeted`]) counts tuples
//!   materialized by each join/cross-product step and each residual-filter chunk
//!   merge against `rows`.
//!
//! Exhaustion surfaces as a typed [`BudgetExhausted`] carrying the partial
//! [`SynthProfile`] of the work done so far (wrapped as
//! `SynthError::Budget` / `MitraError::BudgetExhausted` up the stack), unless the
//! search already holds a valid program — then the incumbent is returned and the
//! breach is reported on [`crate::synthesize::Synthesis::budget_breach`].

use crate::synthesize::SynthProfile;
use std::fmt;

/// A deterministic fuel budget.  `None` fields are unlimited; the default budget
/// is unlimited everywhere.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum combos popped off the best-first frontier (examined *or* pruned —
    /// fuel pays for the pop, not for how far evaluation got).
    pub max_candidates: Option<u64>,
    /// Maximum DFA states constructed plus intersected across all columns and
    /// examples of one synthesis call.
    pub max_dfa_states: Option<u64>,
    /// Maximum tuples materialized by the executor across the join and residual
    /// filter steps of one program execution.
    pub max_rows: Option<u64>,
}

impl Budget {
    /// The unlimited budget (every field `None`).
    pub const UNLIMITED: Budget = Budget {
        max_candidates: None,
        max_dfa_states: None,
        max_rows: None,
    };

    /// True when no field imposes a limit.
    pub fn is_unlimited(&self) -> bool {
        self.max_candidates.is_none() && self.max_dfa_states.is_none() && self.max_rows.is_none()
    }

    /// Checks `spent` units of `resource` against this budget: `Err` once the
    /// allowance is used up (`spent >= limit`).
    #[inline]
    pub fn check(&self, resource: BudgetResource, spent: u64) -> Result<(), BudgetBreach> {
        let limit = match resource {
            BudgetResource::Candidates => self.max_candidates,
            BudgetResource::DfaStates => self.max_dfa_states,
            BudgetResource::Rows => self.max_rows,
        };
        match limit {
            Some(limit) if spent >= limit => Err(BudgetBreach {
                resource,
                spent,
                limit,
            }),
            _ => Ok(()),
        }
    }
}

/// The three fuel counters a [`Budget`] can bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetResource {
    /// Combos popped off the best-first frontier.
    Candidates,
    /// DFA states constructed and intersected.
    DfaStates,
    /// Tuples materialized by the executor.
    Rows,
}

impl fmt::Display for BudgetResource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BudgetResource::Candidates => "candidates-examined",
            BudgetResource::DfaStates => "dfa-states",
            BudgetResource::Rows => "rows-materialized",
        })
    }
}

/// One exhausted budget dimension: which resource ran out, and the spent/limit
/// counters at the deterministic check point that tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetBreach {
    /// The exhausted resource.
    pub resource: BudgetResource,
    /// Fuel spent when the check tripped.
    pub spent: u64,
    /// The configured allowance.
    pub limit: u64,
}

impl fmt::Display for BudgetBreach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} fuel exhausted ({} spent of {} allowed)",
            self.resource, self.spent, self.limit
        )
    }
}

/// The typed payload of a budget-exhaustion failure: the breach plus the partial
/// [`SynthProfile`] of the work completed before fuel ran out (all-zero for
/// breaches raised by the execution phase, which does no synthesis work).
///
/// The profile is boxed so the payload stays small inside the `SynthError` /
/// `MigrationError` / `MitraError` enums that carry it through every
/// `Result` in the stack (clippy's `result_large_err` threshold).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExhausted {
    /// Which counter ran out, and where.
    pub breach: BudgetBreach,
    /// Work done before exhaustion.
    pub profile: Box<SynthProfile>,
}

impl BudgetExhausted {
    /// Builds the payload, boxing the profile.
    pub fn new(breach: BudgetBreach, profile: SynthProfile) -> Self {
        BudgetExhausted {
            breach,
            profile: Box::new(profile),
        }
    }
}

impl fmt::Display for BudgetExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} after examining {} candidates (pruned {})",
            self.breach, self.profile.candidates_examined, self.profile.candidates_pruned
        )
    }
}

impl std::error::Error for BudgetExhausted {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unlimited_and_never_breaches() {
        let b = Budget::default();
        assert!(b.is_unlimited());
        assert_eq!(b, Budget::UNLIMITED);
        for r in [
            BudgetResource::Candidates,
            BudgetResource::DfaStates,
            BudgetResource::Rows,
        ] {
            assert!(b.check(r, u64::MAX).is_ok());
        }
    }

    #[test]
    fn check_trips_at_the_limit_inclusive() {
        let b = Budget {
            max_candidates: Some(10),
            ..Budget::UNLIMITED
        };
        assert!(!b.is_unlimited());
        assert!(b.check(BudgetResource::Candidates, 9).is_ok());
        let breach = b.check(BudgetResource::Candidates, 10).unwrap_err();
        assert_eq!(breach.spent, 10);
        assert_eq!(breach.limit, 10);
        // Other resources stay unlimited.
        assert!(b.check(BudgetResource::Rows, u64::MAX).is_ok());
    }

    #[test]
    fn displays_name_the_resource() {
        let breach = BudgetBreach {
            resource: BudgetResource::DfaStates,
            spent: 4097,
            limit: 4096,
        };
        let text = breach.to_string();
        assert!(text.contains("dfa-states"), "{text}");
        assert!(text.contains("4097"), "{text}");
        let exhausted = BudgetExhausted::new(breach, SynthProfile::default());
        assert!(exhausted.to_string().contains("dfa-states"));
    }
}
