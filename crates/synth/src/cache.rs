//! Shared column-evaluation cache for candidate enumeration.
//!
//! The top-level synthesis loop tries up to `max_table_candidates` table extractors,
//! but they are drawn from the cartesian product of small per-column candidate lists:
//! with 3 columns × 16 candidates, 128 combos reuse only 48 distinct column
//! extractors.  Evaluating `[[π]]T` once per distinct extractor per example — instead
//! of once per combo — removes the redundant tree walks, and sharing the cache across
//! pool workers means concurrent candidates never repeat each other's work either.
//!
//! Keys are [`ColumnExtractor`]s, which hash as their interned `TagId` step paths
//! (`u32` handles, no strings).  Values are `Arc`'d node lists so workers borrow the
//! cached evaluation without cloning it.  Each example tree gets its own shard with
//! an independent lock; entries are only ever inserted, never invalidated, because
//! the trees are immutable for the duration of one synthesis call.

use mitra_dsl::ast::ColumnExtractor;
use mitra_dsl::eval::eval_column;
use mitra_hdt::{Hdt, NodeId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Concurrent per-example memo table for `[[π]]T` evaluations.
#[derive(Debug)]
pub struct ColumnEvalCache {
    shards: Vec<Mutex<HashMap<ColumnExtractor, Arc<Vec<NodeId>>>>>,
}

impl ColumnEvalCache {
    /// Creates a cache with one shard per example.
    pub fn new(num_examples: usize) -> Self {
        let mut shards = Vec::with_capacity(num_examples);
        shards.resize_with(num_examples, || Mutex::new(HashMap::new()));
        ColumnEvalCache { shards }
    }

    /// The node set `[[π]]T` for example `ex_idx`, computed on first use.
    ///
    /// Two workers racing on the same key may both evaluate the extractor; the
    /// evaluation is deterministic, so whichever insertion wins stores the same
    /// value.  The lock is released during evaluation to keep the critical section
    /// to two hash operations.
    pub fn column_nodes(
        &self,
        ex_idx: usize,
        tree: &Hdt,
        pi: &ColumnExtractor,
    ) -> Arc<Vec<NodeId>> {
        if let Some(hit) = self.shards[ex_idx]
            .lock()
            .expect("cache shard poisoned")
            .get(pi)
        {
            return Arc::clone(hit);
        }
        let nodes = Arc::new(eval_column(tree, pi));
        let mut shard = self.shards[ex_idx].lock().expect("cache shard poisoned");
        Arc::clone(shard.entry(pi.clone()).or_insert(nodes))
    }

    /// Total number of cached (example, extractor) evaluations.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").len())
            .sum()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_hdt::generate::social_network;

    #[test]
    fn cache_returns_same_nodes_as_direct_evaluation() {
        let tree = social_network(3, 1);
        let pi = ColumnExtractor::pchildren(
            ColumnExtractor::children(ColumnExtractor::Input, "Person"),
            "name",
            0,
        );
        let cache = ColumnEvalCache::new(1);
        assert!(cache.is_empty());
        let cached = cache.column_nodes(0, &tree, &pi);
        assert_eq!(*cached, eval_column(&tree, &pi));
        // Second lookup hits the memo (same Arc) and does not grow the cache.
        let again = cache.column_nodes(0, &tree, &pi);
        assert!(Arc::ptr_eq(&cached, &again));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shards_are_per_example() {
        let t1 = social_network(2, 1);
        let t2 = social_network(3, 1);
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "Person");
        let cache = ColumnEvalCache::new(2);
        let n1 = cache.column_nodes(0, &t1, &pi);
        let n2 = cache.column_nodes(1, &t2, &pi);
        assert_eq!(n1.len(), 2);
        assert_eq!(n2.len(), 3);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let tree = social_network(4, 2);
        tree.ensure_index();
        let pi = ColumnExtractor::descendants(ColumnExtractor::Input, "name");
        let cache = ColumnEvalCache::new(1);
        let expected = eval_column(&tree, &pi);
        let lookups: Vec<usize> = (0..16).collect();
        let results = mitra_pool::parallel_map(4, &lookups, |_, _| {
            cache.column_nodes(0, &tree, &pi).to_vec()
        });
        for r in results {
            assert_eq!(r, expected);
        }
        assert_eq!(cache.len(), 1);
    }
}
