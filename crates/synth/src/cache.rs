//! Shared column-evaluation cache for candidate enumeration.
//!
//! The top-level synthesis loop tries up to `max_table_candidates` table extractors,
//! but they are drawn from the cartesian product of small per-column candidate lists:
//! with 3 columns × 16 candidates, 128 combos reuse only 48 distinct column
//! extractors.  Evaluating `[[π]]T` once per distinct extractor per example — instead
//! of once per combo — removes the redundant tree walks, and sharing the cache across
//! pool workers means concurrent candidates never repeat each other's work either.
//!
//! Keys are [`ColumnExtractor`]s, which hash as their interned `TagId` step paths
//! (`u32` handles, no strings).  Values are `Arc`'d node lists so workers borrow the
//! cached evaluation without cloning it.  Each example tree gets its own shard with
//! an independent lock; entries are only ever inserted, never invalidated, because
//! the trees are immutable for the duration of one synthesis call.
//!
//! Lock poisoning is recovered from (`PoisonError::into_inner`) rather than
//! propagated: the cache is insert-only and every value is a pure function of its
//! key, so a shard abandoned mid-insert by a panicking worker is at worst missing
//! an entry — surviving siblings recompute it, they never observe torn state.

use crate::synthesize::Example;
use crate::universe::{mine_constants, valid_node_extractors_with_nodes, UniverseConfig};
use mitra_dsl::ast::{ColumnExtractor, NodeExtractor};
use mitra_dsl::eval::{eval_column, node_value};
use mitra_dsl::{Table, Value};
use mitra_hdt::{Hdt, NodeId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, PoisonError};

/// Comparability class of a [`Value`], fixing the `None` cases of
/// [`Value::compare`]: a null/non-null pair is incomparable, a numeric pair
/// involving NaN is incomparable, everything else compares.  Two classes therefore
/// decide comparability without touching the values again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueClass {
    /// SQL NULL — comparable only to NULL.
    Null,
    /// Numeric view exists (numbers, booleans, numeric strings) and is not NaN.
    Num,
    /// Numeric view exists but is NaN — incomparable to anything numeric, textual
    /// comparison against non-numeric values.
    Nan,
    /// No numeric view — compares textually against anything non-null.
    Text,
}

/// True exactly when [`Value::compare`] returns `Some(_)` for values of these
/// classes.
pub fn classes_comparable(a: ValueClass, b: ValueClass) -> bool {
    use ValueClass::*;
    match (a, b) {
        (Null, Null) => true,
        (Null, _) | (_, Null) => false,
        (Nan, Num | Nan) | (Num, Nan) => false,
        _ => true,
    }
}

/// Per-node comparison data for the pairwise predicate rule (rule 5): leafness,
/// the interned value id, and the comparability class.  Ids are assigned through
/// [`Value`]'s `Eq`/`Hash` (which are defined as `compare() == Some(Equal)`), so
/// id equality *is* value equality under the DSL's comparison — NaN values, never
/// equal to anything, get a fresh id per occurrence.
#[derive(Debug, Clone, Copy)]
pub struct NodeInfo {
    /// Whether the node is a leaf (only leaf pairs compare by value).
    pub leaf: bool,
    /// Interned value id: equal ids ⟺ `Value::compare` yields `Some(Equal)`.
    pub value: u32,
    /// Comparability class of the value (see [`classes_comparable`]).
    pub class: ValueClass,
}

/// The valid node extractors of one column extractor π, with their evaluations and
/// behavioural equivalence classes — everything the fast predicate-learning path
/// needs to build truth vectors without re-walking the trees per tuple.
///
/// Two extractors are *behaviourally equivalent* when they map every column node of
/// every example to the same node; equivalent extractors produce identical truth
/// vectors in every predicate context, so predicate learning only evaluates the
/// class representatives (~an order of magnitude fewer on the benchmark datasets).
#[derive(Debug)]
pub struct ColumnPhiData {
    /// Valid node extractors, in the canonical enumeration order of
    /// [`crate::universe::valid_node_extractors`].
    pub phis: Vec<NodeExtractor>,
    /// `nodes[p][e][k]`: extractor `phis[p]` applied to the `k`-th node of
    /// `[[π]]T_e`.  Never ⊥ — validity is exactly the never-⊥ judgement.
    pub nodes: Vec<Vec<Vec<NodeId>>>,
    /// Indices of the first member (= representative) of each distinct behaviour
    /// class, in enumeration order.
    pub reps: Vec<usize>,
    /// For each extractor, the index of its class representative.
    pub rep_of: Vec<usize>,
    /// `info[p][e][k]`: comparison data for `nodes[p][e][k]`, populated for
    /// behaviour-class representatives only (`info[p]` is empty otherwise) — the
    /// predicate rules never touch non-representatives.
    pub info: Vec<Vec<Vec<NodeInfo>>>,
}

/// Concurrent per-example memo table for `[[π]]T` evaluations, plus the derived
/// per-extractor artifacts the best-first search reuses across candidate combos:
/// row-coverage bitmaps (incremental combo pruning) and valid-node-extractor data
/// (fast predicate learning).  One cache lives for the duration of one synthesis
/// call; the examples it serves are fixed, so every entry is insert-only.
#[derive(Debug)]
pub struct ColumnEvalCache {
    shards: Vec<Mutex<HashMap<ColumnExtractor, Arc<Vec<NodeId>>>>>,
    /// Per-example `(π → coverage bitmap)` maps: bit `c` says whether every value
    /// of output column `c` occurs among `[[π]]T`'s node values.
    coverage: Vec<Mutex<HashMap<ColumnExtractor, Arc<Vec<bool>>>>>,
    /// `π → ColumnPhiData` (one map across examples: validity spans all of them).
    phi_data: Mutex<HashMap<ColumnExtractor, Arc<ColumnPhiData>>>,
    /// Constants mined from the example trees (rule 4), computed on first use.
    constants: Mutex<Option<Arc<Vec<Value>>>>,
    /// Value interner backing [`NodeInfo::value`].  Ids depend on insertion order
    /// (hence on worker interleaving), but they are only ever compared for
    /// equality within one cache, so results stay deterministic.
    values: Mutex<HashMap<Value, u32>>,
}

impl ColumnEvalCache {
    /// Creates a cache with one shard per example.
    pub fn new(num_examples: usize) -> Self {
        let mut shards = Vec::with_capacity(num_examples);
        shards.resize_with(num_examples, || Mutex::new(HashMap::new()));
        let mut coverage = Vec::with_capacity(num_examples);
        coverage.resize_with(num_examples, || Mutex::new(HashMap::new()));
        ColumnEvalCache {
            shards,
            coverage,
            phi_data: Mutex::new(HashMap::new()),
            constants: Mutex::new(None),
            values: Mutex::new(HashMap::new()),
        }
    }

    /// Interns a value, returning its id and comparability class.  Id equality is
    /// `Value` equality (`compare() == Some(Equal)`); NaN values are never equal
    /// to anything, including themselves, and receive a fresh id per call.
    fn intern_value(&self, v: Value) -> (u32, ValueClass) {
        let class = match &v {
            Value::Null => ValueClass::Null,
            other => match other.as_number() {
                Some(n) if n.is_nan() => ValueClass::Nan,
                Some(_) => ValueClass::Num,
                None => ValueClass::Text,
            },
        };
        let mut map = self.values.lock().unwrap_or_else(PoisonError::into_inner);
        let next = map.len() as u32;
        let id = *map.entry(v).or_insert(next);
        (id, class)
    }

    /// The node set `[[π]]T` for example `ex_idx`, computed on first use.
    ///
    /// Two workers racing on the same key may both evaluate the extractor; the
    /// evaluation is deterministic, so whichever insertion wins stores the same
    /// value.  The lock is released during evaluation to keep the critical section
    /// to two hash operations.
    pub fn column_nodes(
        &self,
        ex_idx: usize,
        tree: &Hdt,
        pi: &ColumnExtractor,
    ) -> Arc<Vec<NodeId>> {
        if let Some(hit) = self.shards[ex_idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(pi)
        {
            mitra_trace::counter_add!("cache.column_nodes.hit", 1);
            return Arc::clone(hit);
        }
        mitra_trace::counter_add!("cache.column_nodes.miss", 1);
        let nodes = Arc::new(eval_column(tree, pi));
        let mut shard = self.shards[ex_idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match shard.entry(pi.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => Arc::clone(e.get()),
            std::collections::hash_map::Entry::Vacant(e) => {
                mitra_trace::counter_add!("cache.column_nodes.insert", 1);
                Arc::clone(e.insert(nodes))
            }
        }
    }

    /// The row-coverage bitmap of extractor `pi` on example `ex_idx`: bit `c` is
    /// set when every value of `output` column `c` occurs among the values of
    /// `[[π]]T`'s nodes.  A combo whose column `c` extractor has bit `c` clear can
    /// never reproduce the example rows, so the search rejects it without labelling
    /// tuples or learning a predicate.
    ///
    /// The caller must pass the same `output` for a given `ex_idx` for the lifetime
    /// of the cache (one synthesis call fixes the examples), since the bitmap is
    /// memoized per extractor only.
    pub fn row_coverage(
        &self,
        ex_idx: usize,
        tree: &Hdt,
        pi: &ColumnExtractor,
        output: &Table,
    ) -> Arc<Vec<bool>> {
        if let Some(hit) = self.coverage[ex_idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(pi)
        {
            mitra_trace::counter_add!("cache.row_coverage.hit", 1);
            return Arc::clone(hit);
        }
        mitra_trace::counter_add!("cache.row_coverage.miss", 1);
        let nodes = self.column_nodes(ex_idx, tree, pi);
        let values: Vec<Value> = nodes.iter().map(|n| node_value(tree, *n)).collect();
        let bitmap: Vec<bool> = (0..output.arity())
            .map(|c| output.rows.iter().all(|row| values.contains(&row[c])))
            .collect();
        let bitmap = Arc::new(bitmap);
        let mut shard = self.coverage[ex_idx]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match shard.entry(pi.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => Arc::clone(e.get()),
            std::collections::hash_map::Entry::Vacant(e) => {
                mitra_trace::counter_add!("cache.row_coverage.insert", 1);
                Arc::clone(e.insert(bitmap))
            }
        }
    }

    /// The valid node extractors of `pi` with their evaluations and behaviour
    /// classes, computed on first use (see [`ColumnPhiData`]).
    pub fn phi_data(
        &self,
        examples: &[Example],
        pi: &ColumnExtractor,
        config: &UniverseConfig,
    ) -> Arc<ColumnPhiData> {
        if let Some(hit) = self
            .phi_data
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(pi)
        {
            mitra_trace::counter_add!("cache.phi_data.hit", 1);
            return Arc::clone(hit);
        }
        mitra_trace::counter_add!("cache.phi_data.miss", 1);
        let with_nodes = valid_node_extractors_with_nodes(examples, pi, config);
        let mut phis = Vec::with_capacity(with_nodes.len());
        let mut nodes = Vec::with_capacity(with_nodes.len());
        for (phi, extracted) in with_nodes {
            phis.push(phi);
            nodes.push(extracted);
        }
        // Behaviour classes: first extractor with a given node map represents it.
        // The enumeration is size-nondecreasing per BFS level, so a representative
        // is also a minimum-size member of its class.
        let mut first_of: HashMap<&[Vec<NodeId>], usize> = HashMap::new();
        let mut reps = Vec::new();
        let mut rep_of = Vec::with_capacity(nodes.len());
        for (p, map) in nodes.iter().enumerate() {
            match first_of.get(map.as_slice()) {
                Some(&r) => rep_of.push(r),
                None => {
                    first_of.insert(map.as_slice(), p);
                    reps.push(p);
                    rep_of.push(p);
                }
            }
        }
        drop(first_of);
        // Comparison data for the representatives: leafness, interned value id and
        // comparability class per extracted node, so rule 5 compares node pairs
        // through integer ids instead of re-deriving values per tuple.
        let mut info: Vec<Vec<Vec<NodeInfo>>> = vec![Vec::new(); nodes.len()];
        for &p in &reps {
            info[p] = nodes[p]
                .iter()
                .enumerate()
                .map(|(e, per_ex)| {
                    let tree = &examples[e].tree;
                    per_ex
                        .iter()
                        .map(|&n| {
                            let (value, class) = self.intern_value(node_value(tree, n));
                            NodeInfo {
                                leaf: tree.is_leaf(n),
                                value,
                                class,
                            }
                        })
                        .collect()
                })
                .collect();
        }
        let data = Arc::new(ColumnPhiData {
            phis,
            nodes,
            reps,
            rep_of,
            info,
        });
        let mut map = self.phi_data.lock().unwrap_or_else(PoisonError::into_inner);
        match map.entry(pi.clone()) {
            std::collections::hash_map::Entry::Occupied(e) => Arc::clone(e.get()),
            std::collections::hash_map::Entry::Vacant(e) => {
                mitra_trace::counter_add!("cache.phi_data.insert", 1);
                Arc::clone(e.insert(data))
            }
        }
    }

    /// The constants mined from the example trees (rule 4's `c ∈ data(T)` side
    /// condition), computed on first use.  `max` must not vary across calls on one
    /// cache (one synthesis call fixes the universe configuration).
    pub fn constants(&self, examples: &[Example], max: usize) -> Arc<Vec<Value>> {
        let mut slot = self
            .constants
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match &*slot {
            Some(hit) => {
                mitra_trace::counter_add!("cache.constants.hit", 1);
                Arc::clone(hit)
            }
            None => {
                mitra_trace::counter_add!("cache.constants.miss", 1);
                let mined = Arc::new(mine_constants(examples, max));
                *slot = Some(Arc::clone(&mined));
                mined
            }
        }
    }

    /// Total number of cached (example, extractor) evaluations.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).len())
            .sum()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_hdt::generate::social_network;

    #[test]
    fn cache_returns_same_nodes_as_direct_evaluation() {
        let tree = social_network(3, 1);
        let pi = ColumnExtractor::pchildren(
            ColumnExtractor::children(ColumnExtractor::Input, "Person"),
            "name",
            0,
        );
        let cache = ColumnEvalCache::new(1);
        assert!(cache.is_empty());
        let cached = cache.column_nodes(0, &tree, &pi);
        assert_eq!(*cached, eval_column(&tree, &pi));
        // Second lookup hits the memo (same Arc) and does not grow the cache.
        let again = cache.column_nodes(0, &tree, &pi);
        assert!(Arc::ptr_eq(&cached, &again));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shards_are_per_example() {
        let t1 = social_network(2, 1);
        let t2 = social_network(3, 1);
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "Person");
        let cache = ColumnEvalCache::new(2);
        let n1 = cache.column_nodes(0, &t1, &pi);
        let n2 = cache.column_nodes(1, &t2, &pi);
        assert_eq!(n1.len(), 2);
        assert_eq!(n2.len(), 3);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_lookups_agree() {
        let tree = social_network(4, 2);
        tree.ensure_index();
        let pi = ColumnExtractor::descendants(ColumnExtractor::Input, "name");
        let cache = ColumnEvalCache::new(1);
        let expected = eval_column(&tree, &pi);
        let lookups: Vec<usize> = (0..16).collect();
        let results = mitra_pool::parallel_map(4, &lookups, |_, _| {
            cache.column_nodes(0, &tree, &pi).to_vec()
        });
        for r in results {
            assert_eq!(r, expected);
        }
        assert_eq!(cache.len(), 1);
    }
}
