//! Minimum predicate-set selection (`FindMinCover`, Algorithm 4).
//!
//! The paper formulates the problem as 0–1 integer linear programming: choose the
//! smallest subset of atomic predicates such that every (positive, negative) example
//! pair is *distinguished* by at least one chosen predicate.  This is exactly a
//! minimum set-cover instance where the elements are the pairs and each predicate
//! covers the pairs on which its truth value differs.
//!
//! Two solvers are provided:
//!
//! * [`solve_exact`] — branch-and-bound search that returns an optimal cover (the
//!   behaviour required by Theorem 2).  The greedy solution is used as the initial
//!   upper bound, and ties between equally-sized covers are broken in favour of
//!   smaller total predicate weight (we use the predicate's syntactic size as weight so
//!   the Occam's-razor ranking is deterministic).
//! * [`solve_greedy`] — the classical ln(n)-approximation, used as a fallback for very
//!   large universes and as the ablation baseline of experiment E7.
//!
//! Both solvers return the empty cover for a zero-element instance.  Since the
//! cost-ordered search landed, predicate learning short-circuits the all-positive
//! case (`Predicate::True`) before constructing a universe, so the degenerate
//! no-negative-tuples instance no longer reaches these solvers from the synthesis
//! path; the early exits remain for direct callers.

/// A set-cover instance: `covers[k]` lists the element indices covered by set `k`.
#[derive(Debug, Clone)]
pub struct CoverInstance {
    /// Number of elements to cover.
    pub num_elements: usize,
    /// For each candidate set, the sorted list of elements it covers.
    pub covers: Vec<Vec<usize>>,
    /// Tie-breaking weight of each set (smaller preferred); typically predicate size.
    pub weights: Vec<usize>,
}

impl CoverInstance {
    /// Builds an instance from a boolean coverage matrix: `matrix[k][e]` is true when
    /// set `k` covers element `e`.
    pub fn from_matrix(matrix: &[Vec<bool>]) -> CoverInstance {
        let num_elements = matrix.first().map(Vec::len).unwrap_or(0);
        let covers = matrix
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter_map(|(e, b)| if *b { Some(e) } else { None })
                    .collect()
            })
            .collect();
        CoverInstance {
            num_elements,
            covers,
            weights: vec![1; matrix.len()],
        }
    }

    fn coverable(&self) -> bool {
        let mut covered = vec![false; self.num_elements];
        for c in &self.covers {
            for &e in c {
                covered[e] = true;
            }
        }
        covered.iter().all(|b| *b)
    }
}

/// Result of a cover computation: the chosen set indices (sorted).
pub type Cover = Vec<usize>;

/// Greedy set cover: repeatedly picks the set covering the most uncovered elements
/// (ties broken by smaller weight, then smaller index).  Returns `None` when the
/// elements cannot be covered at all.
pub fn solve_greedy(instance: &CoverInstance) -> Option<Cover> {
    if instance.num_elements == 0 {
        return Some(Vec::new());
    }
    if !instance.coverable() {
        return None;
    }
    let mut covered = vec![false; instance.num_elements];
    let mut remaining = instance.num_elements;
    let mut chosen = Vec::new();
    while remaining > 0 {
        let mut best: Option<(usize, usize)> = None; // (gain, index)
        for (k, cov) in instance.covers.iter().enumerate() {
            if chosen.contains(&k) {
                continue;
            }
            let gain = cov.iter().filter(|&&e| !covered[e]).count();
            if gain == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bg, bk)) => {
                    gain > bg
                        || (gain == bg && (instance.weights[k], k) < (instance.weights[bk], bk))
                }
            };
            if better {
                best = Some((gain, k));
            }
        }
        let (_, k) = best?;
        chosen.push(k);
        for &e in &instance.covers[k] {
            if !covered[e] {
                covered[e] = true;
                remaining -= 1;
            }
        }
    }
    chosen.sort_unstable();
    Some(chosen)
}

/// Exact minimum set cover by branch and bound.
///
/// The objective is lexicographic: first minimize the number of chosen sets, then the
/// sum of their weights.  `max_nodes` bounds the search effort; when exceeded the best
/// solution found so far (at worst the greedy one) is returned, so the result is always
/// a valid cover when one exists.
pub fn solve_exact(instance: &CoverInstance, max_nodes: usize) -> Option<Cover> {
    if instance.num_elements == 0 {
        return Some(Vec::new());
    }
    let greedy = solve_greedy(instance)?;
    let mut best = greedy;
    let mut best_cost = cover_cost(instance, &best);

    // Which sets cover each element, used to branch on the hardest element.
    let mut coverers: Vec<Vec<usize>> = vec![Vec::new(); instance.num_elements];
    for (k, cov) in instance.covers.iter().enumerate() {
        for &e in cov {
            coverers[e].push(k);
        }
    }

    struct Search<'a> {
        instance: &'a CoverInstance,
        coverers: &'a [Vec<usize>],
        best: Vec<usize>,
        best_cost: (usize, usize),
        nodes: usize,
        max_nodes: usize,
    }

    impl Search<'_> {
        fn run(&mut self, chosen: &mut Vec<usize>, covered: &mut Vec<usize>, uncovered: usize) {
            if self.nodes >= self.max_nodes {
                return;
            }
            self.nodes += 1;
            if uncovered == 0 {
                let cost = cover_cost(self.instance, chosen);
                if cost < self.best_cost {
                    self.best_cost = cost;
                    self.best = chosen.clone();
                }
                return;
            }
            // Lower bound: at least one more set is needed.
            if chosen.len() + 1 > self.best_cost.0 {
                return;
            }
            // Branch on the uncovered element with the fewest coverers.
            let mut pivot: Option<usize> = None;
            let mut pivot_options = usize::MAX;
            for (e, cnt) in covered.iter().enumerate() {
                if *cnt > 0 {
                    continue;
                }
                let options = self.coverers[e].len();
                if options < pivot_options {
                    pivot_options = options;
                    pivot = Some(e);
                }
            }
            let Some(pivot) = pivot else { return };
            let candidates = self.coverers[pivot].clone();
            for k in candidates {
                if chosen.contains(&k) {
                    continue;
                }
                chosen.push(k);
                let mut newly = 0;
                for &e in &self.instance.covers[k] {
                    if covered[e] == 0 {
                        newly += 1;
                    }
                    covered[e] += 1;
                }
                self.run(chosen, covered, uncovered - newly);
                for &e in &self.instance.covers[k] {
                    covered[e] -= 1;
                }
                chosen.pop();
            }
        }
    }

    let mut search = Search {
        instance,
        coverers: &coverers,
        best: best.clone(),
        best_cost,
        nodes: 0,
        max_nodes,
    };
    let mut covered = vec![0usize; instance.num_elements];
    let mut chosen = Vec::new();
    search.run(&mut chosen, &mut covered, instance.num_elements);
    best = search.best;
    best_cost = search.best_cost;
    let _ = best_cost;
    best.sort_unstable();
    Some(best)
}

fn cover_cost(instance: &CoverInstance, cover: &[usize]) -> (usize, usize) {
    (
        cover.len(),
        cover.iter().map(|&k| instance.weights[k]).sum(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance(matrix: &[&[bool]]) -> CoverInstance {
        CoverInstance::from_matrix(&matrix.iter().map(|r| r.to_vec()).collect::<Vec<_>>())
    }

    #[test]
    fn empty_instance_needs_nothing() {
        let inst = CoverInstance {
            num_elements: 0,
            covers: vec![],
            weights: vec![],
        };
        assert_eq!(solve_exact(&inst, 1000), Some(vec![]));
        assert_eq!(solve_greedy(&inst), Some(vec![]));
    }

    #[test]
    fn single_set_covering_everything() {
        let inst = instance(&[&[true, true, true]]);
        assert_eq!(solve_exact(&inst, 1000), Some(vec![0]));
    }

    #[test]
    fn uncoverable_returns_none() {
        let inst = instance(&[&[true, false, false], &[false, true, false]]);
        assert_eq!(solve_exact(&inst, 1000), None);
        assert_eq!(solve_greedy(&inst), None);
    }

    #[test]
    fn exact_beats_greedy_on_classic_trap() {
        // Elements 0..5.  Greedy picks the big set (covers 4), then needs 2 more = 3.
        // Optimal is the two disjoint sets of size 3 = 2 sets.
        let inst = instance(&[
            &[true, true, true, false, false, false], // A
            &[false, false, false, true, true, true], // B
            &[true, true, false, true, true, false],  // big greedy bait (covers 4)
            &[false, false, true, false, false, false],
            &[false, false, false, false, false, true],
        ]);
        let greedy = solve_greedy(&inst).unwrap();
        let exact = solve_exact(&inst, 100_000).unwrap();
        assert!(exact.len() <= greedy.len());
        assert_eq!(exact, vec![0, 1]);
        assert_eq!(greedy.len(), 3);
    }

    #[test]
    fn exact_respects_weights_on_ties() {
        // Two equally sized optimal covers exist; weights must break the tie.
        let mut inst = instance(&[&[true, true], &[true, true]]);
        inst.weights = vec![5, 1];
        let exact = solve_exact(&inst, 1000).unwrap();
        assert_eq!(exact, vec![1]);
    }

    #[test]
    fn paper_example5_cover_is_three_predicates() {
        // Figure 12 of the paper: rows are predicates φ1..φ7, columns are the nine
        // (positive, negative) pairs υ11..υ33.  The optimal cover has 3 predicates and
        // the paper reports {φ2, φ5, φ7}.
        let matrix: Vec<Vec<bool>> = vec![
            vec![true, true, false, false, false, true, false, false, true], // φ1
            vec![true, false, true, true, false, true, true, false, true],   // φ2
            vec![true, true, true, false, false, false, false, false, false], // φ3
            vec![true, true, false, false, false, true, false, false, true], // φ4
            vec![true, true, true, true, true, true, false, false, false],   // φ5
            vec![true, true, true, false, false, false, false, false, false], // φ6
            vec![false, true, true, true, false, false, false, true, true],  // φ7
        ];
        let inst = CoverInstance::from_matrix(&matrix);
        let exact = solve_exact(&inst, 1_000_000).unwrap();
        assert_eq!(exact.len(), 3);
        // Verify it is a genuine cover.
        let mut covered = [false; 9];
        for &k in &exact {
            for (e, b) in matrix[k].iter().enumerate() {
                if *b {
                    covered[e] = true;
                }
            }
        }
        assert!(covered.iter().all(|b| *b));
        // The paper's choice {φ2, φ5, φ7} (indices 1, 4, 6) is one optimal answer.
        assert!(exact.contains(&4), "φ5 is the only predicate covering υ22");
    }

    #[test]
    fn greedy_always_produces_valid_cover() {
        let inst = instance(&[
            &[true, false, true, false],
            &[false, true, false, true],
            &[true, true, false, false],
        ]);
        let cover = solve_greedy(&inst).unwrap();
        let mut covered = [false; 4];
        for &k in &cover {
            for &e in &inst.covers[k] {
                covered[e] = true;
            }
        }
        assert!(covered.iter().all(|b| *b));
    }

    #[test]
    fn node_budget_still_returns_valid_cover() {
        let inst = instance(&[
            &[true, true, true, false, false, false],
            &[false, false, false, true, true, true],
            &[true, true, false, true, true, false],
            &[false, false, true, false, false, true],
        ]);
        let cover = solve_exact(&inst, 1).unwrap();
        let mut covered = [false; 6];
        for &k in &cover {
            for &e in &inst.covers[k] {
                covered[e] = true;
            }
        }
        assert!(covered.iter().all(|b| *b));
    }
}
