//! Document-shape fingerprints and the per-shape program cache (DESIGN.md §12).
//!
//! A corpus-scale migration (millions of documents sharing a handful of
//! layouts) must not pay the ~seconds synthesis cost per document when
//! execution costs milliseconds.  The corpus service therefore synthesizes a
//! program once per document *shape* and streams it over every document with
//! that shape.  The shape of an HDT is its set of root-to-node **tag paths**:
//! two documents with the same path set — no matter how many records each
//! holds — admit exactly the same column extractors (`children`/`pchildren`
//! chains are tag-path programs), so a program learned on one executes on the
//! other.
//!
//! Fingerprints are computed over the interned-tag structure but hashed via the
//! stable *tag names*, not the process-local [`TagId`](mitra_hdt::TagId)
//! values, so a fingerprint written to a checkpoint journal in one process
//! matches the one recomputed after a crash in a fresh process.  The hash is a
//! 64-bit FNV-1a fold over the sorted path-hash set: deterministic, ordering-
//! and multiplicity-insensitive, with no dependency beyond `mitra-hdt`.

use mitra_hdt::Hdt;
use std::collections::{BTreeSet, HashMap};
use std::sync::{Arc, Mutex, PoisonError};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Extends an FNV-1a state with one path segment (a tag name plus a
/// separator, so `ab`/`c` and `a`/`bc` hash differently).
fn fnv_segment(mut h: u64, tag: &str) -> u64 {
    for b in tag.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h ^= 0x1f;
    h.wrapping_mul(FNV_PRIME)
}

/// A 64-bit shape fingerprint: the FNV-1a fold of a document's sorted
/// tag-path-hash set.  Stable across processes and thread counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Fixed-width lowercase hex rendering, used by journals and ledgers.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }
}

impl std::fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

/// Computes the shape fingerprint of a document: hash the root-to-node tag
/// path of every node (explicit stack — adversarially deep documents must not
/// overflow), collect the distinct path hashes, and fold them in sorted order.
pub fn fingerprint(tree: &Hdt) -> Fingerprint {
    tree.ensure_index();
    let root = tree.root();
    let mut paths: BTreeSet<u64> = BTreeSet::new();
    let mut stack: Vec<(mitra_hdt::NodeId, u64)> =
        vec![(root, fnv_segment(FNV_OFFSET, tree.tag_name(root)))];
    while let Some((id, h)) = stack.pop() {
        paths.insert(h);
        for &child in tree.children(id) {
            stack.push((child, fnv_segment(h, tree.tag_name(child))));
        }
    }
    let mut h = FNV_OFFSET;
    for p in &paths {
        for b in p.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
    }
    Fingerprint(h)
}

/// A concurrency-safe, first-write-wins memo from [`Fingerprint`] to a shared
/// per-shape value (the corpus service stores the learned per-table programs —
/// or the typed synthesis failure — for each shape).
///
/// The cache never evicts: a corpus has a handful of shapes, and determinism
/// requires that every document of a shape sees the same entry.  When two
/// writers race on the same fingerprint the first insert wins and both receive
/// the same `Arc`, so readers can never observe two different programs for one
/// shape.
#[derive(Debug, Default)]
pub struct ProgramCache<V> {
    inner: Mutex<HashMap<Fingerprint, Arc<V>>>,
}

impl<V> ProgramCache<V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        ProgramCache {
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Looks a shape up, counting `cache.shape_programs.{hit,miss}`.
    pub fn get(&self, fp: Fingerprint) -> Option<Arc<V>> {
        let found = self
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&fp)
            .cloned();
        if found.is_some() {
            mitra_trace::counter_add!("cache.shape_programs.hit", 1);
        } else {
            mitra_trace::counter_add!("cache.shape_programs.miss", 1);
        }
        found
    }

    /// Inserts a value for a shape (first write wins) and returns the entry
    /// that ended up cached.
    pub fn insert(&self, fp: Fingerprint, value: V) -> Arc<V> {
        let mut map = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = map.entry(fp).or_insert_with(|| {
            mitra_trace::counter_add!("cache.shape_programs.insert", 1);
            Arc::new(value)
        });
        Arc::clone(entry)
    }

    /// Number of cached shapes.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// True when no shape has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_hdt::xml::xml_to_hdt;

    #[test]
    fn multiplicity_does_not_change_the_fingerprint() {
        let two = xml_to_hdt("<r><p><a>1</a><b>2</b></p><p><a>3</a><b>4</b></p></r>").unwrap();
        let five = xml_to_hdt(
            "<r><p><a>1</a><b>2</b></p><p><a>3</a><b>4</b></p><p><a>5</a><b>6</b></p>\
             <p><a>7</a><b>8</b></p><p><a>9</a><b>0</b></p></r>",
        )
        .unwrap();
        assert_eq!(fingerprint(&two), fingerprint(&five));
    }

    #[test]
    fn data_does_not_change_the_fingerprint_but_structure_does() {
        let a = xml_to_hdt("<r><p><a>hello</a></p></r>").unwrap();
        let b = xml_to_hdt("<r><p><a>world</a></p></r>").unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
        let extra = xml_to_hdt("<r><p><a>hello</a><z>1</z></p></r>").unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&extra));
        let renamed = xml_to_hdt("<r><q><a>hello</a></q></r>").unwrap();
        assert_ne!(fingerprint(&a), fingerprint(&renamed));
    }

    #[test]
    fn sibling_order_does_not_change_the_fingerprint() {
        let ab = xml_to_hdt("<r><a>1</a><b>2</b></r>").unwrap();
        let ba = xml_to_hdt("<r><b>2</b><a>1</a></r>").unwrap();
        assert_eq!(fingerprint(&ab), fingerprint(&ba));
    }

    #[test]
    fn fingerprints_are_stable_hex_renderable_values() {
        let t = xml_to_hdt("<r><a>1</a></r>").unwrap();
        let fp = fingerprint(&t);
        assert_eq!(fp, fingerprint(&t));
        assert_eq!(fp.to_hex().len(), 16);
        assert_eq!(fp.to_hex(), format!("{fp}"));
    }

    #[test]
    fn cache_is_first_write_wins() {
        let cache: ProgramCache<u32> = ProgramCache::new();
        let t = xml_to_hdt("<r><a>1</a></r>").unwrap();
        let fp = fingerprint(&t);
        assert!(cache.get(fp).is_none());
        assert!(cache.is_empty());
        let first = cache.insert(fp, 7);
        let second = cache.insert(fp, 99);
        assert_eq!(*first, 7);
        assert_eq!(*second, 7, "first insert must win");
        assert_eq!(*cache.get(fp).unwrap(), 7);
        assert_eq!(cache.len(), 1);
    }
}
