//! Construction of the atomic-predicate universe (Figure 10).
//!
//! Given a candidate table extractor ψ = π1 × … × πk and the examples, the universe Φ
//! contains:
//!
//! * `((λn.ϕ) t[i]) ⊙ c` for every valid node extractor ϕ of column `i` and every
//!   constant `c` mined from the input trees (rule 4), and
//! * `((λn.ϕ1) t[i]) ⊙ ((λn.ϕ2) t[j])` for every pair of columns and valid node
//!   extractors (rule 5).
//!
//! A node extractor is *valid* for column `i` (the χ_i judgement, rules 1–3) when it
//! never evaluates to ⊥ on any node extracted for that column in any example.  Since
//! `parent`/`child` compositions are unbounded in principle, the enumeration is bounded
//! by a configurable depth.

use crate::synthesize::Example;
use mitra_dsl::ast::{
    ColumnExtractor, CompareOp, NodeExtractor, Operand, Predicate, TableExtractor,
};
use mitra_dsl::eval::{eval_column, eval_node_extractor};
use mitra_dsl::Value;
use mitra_hdt::{Hdt, NodeId, TagId};
use std::collections::HashSet;

/// Configuration for predicate-universe construction.
#[derive(Debug, Clone, Copy)]
pub struct UniverseConfig {
    /// Maximum number of parent/child steps in a node extractor.
    pub max_node_extractor_depth: usize,
    /// Maximum number of valid node extractors kept per column.
    pub max_extractors_per_column: usize,
    /// Maximum number of constants mined from the input trees.
    pub max_constants: usize,
    /// Whether ordering comparisons (`<`, `<=`, `>`, `>=`) are generated in addition to
    /// equality/inequality.
    pub with_ordering: bool,
}

impl Default for UniverseConfig {
    fn default() -> Self {
        UniverseConfig {
            max_node_extractor_depth: 3,
            max_extractors_per_column: 24,
            max_constants: 64,
            with_ordering: true,
        }
    }
}

/// Computes the set of valid node extractors χ_i for column `i` of ψ.
///
/// The extractors are enumerated breadth-first by size so that simpler extractors come
/// first; an extractor is kept only if it evaluates to a node (never ⊥) for every node
/// the column extractor produces on every example tree (rules 2–3 of Figure 10).
pub fn valid_node_extractors(
    examples: &[Example],
    pi: &ColumnExtractor,
    config: &UniverseConfig,
) -> Vec<NodeExtractor> {
    valid_node_extractors_with_nodes(examples, pi, config)
        .into_iter()
        .map(|(phi, _)| phi)
        .collect()
}

/// Like [`valid_node_extractors`], but also returns, for each valid extractor, the
/// node it maps every column node to: `nodes[e][k]` is `ϕ` applied to the `k`-th
/// node of `[[π]]T_e`.  Validity is exactly the never-⊥ judgement, so every entry
/// is a real node.  The fast predicate-learning path uses these to evaluate whole
/// truth vectors without re-walking the trees per tuple.
pub fn valid_node_extractors_with_nodes(
    examples: &[Example],
    pi: &ColumnExtractor,
    config: &UniverseConfig,
) -> Vec<(NodeExtractor, Vec<Vec<NodeId>>)> {
    // Pre-compute the nodes each example extracts for this column.
    let per_example_nodes: Vec<(&Hdt, Vec<NodeId>)> = examples
        .iter()
        .map(|ex| (&ex.tree, eval_column(&ex.tree, pi)))
        .collect();

    // Candidate (tag,pos) pairs for `child` steps, mined from all trees.  Sorted by
    // tag *name* so enumeration order is deterministic regardless of interning order.
    let mut seen: HashSet<(TagId, usize)> = HashSet::new();
    let mut tag_pos: Vec<(TagId, usize)> = Vec::new();
    for ex in examples {
        for id in ex.tree.ids() {
            if id == ex.tree.root() {
                continue;
            }
            let n = ex.tree.node(id);
            if seen.insert((n.tag, n.pos)) {
                tag_pos.push((n.tag, n.pos));
            }
        }
    }
    tag_pos.sort_by_key(|(t, p)| (t.as_str(), *p));

    let identity_nodes: Vec<Vec<NodeId>> = per_example_nodes
        .iter()
        .map(|(_, nodes)| nodes.clone())
        .collect();
    let mut result: Vec<(NodeExtractor, Vec<Vec<NodeId>>)> = Vec::new();
    let mut frontier: Vec<NodeExtractor> = vec![NodeExtractor::Id];
    result.push((NodeExtractor::Id, identity_nodes));

    for _ in 0..config.max_node_extractor_depth {
        let mut next: Vec<NodeExtractor> = Vec::new();
        for base in &frontier {
            // parent(base)
            let cand = NodeExtractor::parent(base.clone());
            if !result.iter().any(|(phi, _)| *phi == cand) {
                if let Some(extracted) = extract_all(&per_example_nodes, &cand) {
                    result.push((cand.clone(), extracted));
                    next.push(cand);
                    if result.len() >= config.max_extractors_per_column {
                        return result;
                    }
                }
            }
            // child(base, tag, pos)
            for (tag, pos) in &tag_pos {
                let cand = NodeExtractor::child(base.clone(), *tag, *pos);
                if result.iter().any(|(phi, _)| *phi == cand) {
                    continue;
                }
                if let Some(extracted) = extract_all(&per_example_nodes, &cand) {
                    result.push((cand.clone(), extracted));
                    next.push(cand);
                    if result.len() >= config.max_extractors_per_column {
                        return result;
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    result
}

/// Evaluates `phi` on every column node of every example; `None` as soon as any
/// evaluation is ⊥ (i.e. the extractor is not valid, rules 2–3 of Figure 10).
fn extract_all(
    per_example_nodes: &[(&Hdt, Vec<NodeId>)],
    phi: &NodeExtractor,
) -> Option<Vec<Vec<NodeId>>> {
    per_example_nodes
        .iter()
        .map(|(tree, nodes)| {
            nodes
                .iter()
                .map(|n| eval_node_extractor(tree, *n, phi))
                .collect::<Option<Vec<NodeId>>>()
        })
        .collect()
}

/// Mines the constants appearing as leaf data in the example trees (rule 4's
/// `c ∈ data(T)` side condition).
pub fn mine_constants(examples: &[Example], max: usize) -> Vec<Value> {
    let mut out: Vec<Value> = Vec::new();
    for ex in examples {
        for d in ex.tree.data_values() {
            let v = Value::from_data(d);
            if !out.contains(&v) {
                out.push(v);
                if out.len() >= max {
                    return out;
                }
            }
        }
    }
    out
}

/// Constructs the full predicate universe for a candidate table extractor.
///
/// Predicates are returned roughly simplest-first (constant comparisons with shallow
/// extractors before deep column-to-column comparisons), which downstream solvers use
/// as a tie-breaking preference.
pub fn construct_universe(
    examples: &[Example],
    psi: &TableExtractor,
    config: &UniverseConfig,
) -> Vec<Predicate> {
    let per_column_extractors: Vec<Vec<NodeExtractor>> = psi
        .columns
        .iter()
        .map(|pi| valid_node_extractors(examples, pi, config))
        .collect();
    let constants = mine_constants(examples, config.max_constants);

    let const_ops: &[CompareOp] = if config.with_ordering {
        &[
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ]
    } else {
        &[CompareOp::Eq, CompareOp::Ne]
    };
    // Column-to-column comparisons are overwhelmingly equality joins in practice (the
    // paper's examples only ever use `=` between tuple components); restricting the
    // pairwise operators keeps the universe — and therefore the ILP — small.
    let pair_ops: &[CompareOp] = &[CompareOp::Eq, CompareOp::Ne];

    let mut universe = Vec::new();

    // Rule 4: comparisons against constants.
    for (i, extractors) in per_column_extractors.iter().enumerate() {
        for phi in extractors {
            for c in &constants {
                for op in const_ops {
                    // Ordering comparisons against non-numeric constants are rarely
                    // meaningful and blow up the universe; keep them for numbers only.
                    if matches!(
                        op,
                        CompareOp::Lt | CompareOp::Le | CompareOp::Gt | CompareOp::Ge
                    ) && c.as_number().is_none()
                    {
                        continue;
                    }
                    universe.push(Predicate::Compare {
                        extractor: phi.clone(),
                        index: i,
                        op: *op,
                        rhs: Operand::Const(c.clone()),
                    });
                }
            }
        }
    }

    // Rule 5: comparisons between two tuple components.
    for (i, ext_i) in per_column_extractors.iter().enumerate() {
        for (j, ext_j) in per_column_extractors.iter().enumerate() {
            if i == j {
                // Comparing a column with itself through two *different* extractors is
                // still meaningful (e.g. the φ1 of Figure 3 relates t[0] and t[2] — but
                // also id/fid pairs on the same index), so we keep i == j pairs as long
                // as the extractors differ.
            }
            for phi1 in ext_i {
                for phi2 in ext_j {
                    if i == j && phi1 == phi2 {
                        continue; // trivially true under Eq
                    }
                    for op in pair_ops {
                        universe.push(Predicate::Compare {
                            extractor: phi1.clone(),
                            index: i,
                            op: *op,
                            rhs: Operand::Column {
                                extractor: phi2.clone(),
                                index: j,
                            },
                        });
                    }
                }
            }
        }
    }

    universe
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_dsl::Table;
    use mitra_hdt::generate::social_network;

    fn example() -> Example {
        Example {
            tree: social_network(2, 1),
            output: Table::from_rows(
                &["Person", "Friend-with", "years"],
                &[&["Alice", "Bob", "12"], &["Bob", "Alice", "21"]],
            ),
        }
    }

    fn name_extractor() -> ColumnExtractor {
        ColumnExtractor::pchildren(
            ColumnExtractor::children(ColumnExtractor::Input, "Person"),
            "name",
            0,
        )
    }

    #[test]
    fn identity_is_always_valid() {
        let ex = example();
        let chis = valid_node_extractors(&[ex], &name_extractor(), &UniverseConfig::default());
        assert!(chis.contains(&NodeExtractor::Id));
    }

    #[test]
    fn parent_is_valid_for_non_root_columns() {
        let ex = example();
        let chis = valid_node_extractors(&[ex], &name_extractor(), &UniverseConfig::default());
        assert!(chis.contains(&NodeExtractor::parent(NodeExtractor::Id)));
    }

    #[test]
    fn invalid_child_steps_are_rejected() {
        let ex = example();
        let chis = valid_node_extractors(&[ex], &name_extractor(), &UniverseConfig::default());
        // name nodes have no child tagged `Person`, so child(n, Person, 0) must be absent.
        assert!(!chis.contains(&NodeExtractor::child(NodeExtractor::Id, "Person", 0)));
    }

    #[test]
    fn sibling_access_via_parent_then_child_is_found() {
        let ex = example();
        let chis = valid_node_extractors(&[ex], &name_extractor(), &UniverseConfig::default());
        let sibling_id = NodeExtractor::child(NodeExtractor::parent(NodeExtractor::Id), "id", 0);
        assert!(
            chis.contains(&sibling_id),
            "expected sibling access in {chis:?}"
        );
    }

    #[test]
    fn constants_are_mined_from_leaves() {
        let ex = example();
        let consts = mine_constants(&[ex], 100);
        assert!(consts.contains(&Value::str("Alice")));
        assert!(consts.contains(&Value::int(12)));
    }

    #[test]
    fn universe_contains_figure3_style_predicates() {
        let ex = example();
        let pi_years = ColumnExtractor::pchildren(
            ColumnExtractor::children(
                ColumnExtractor::pchildren(
                    ColumnExtractor::children(ColumnExtractor::Input, "Person"),
                    "Friendship",
                    0,
                ),
                "Friend",
            ),
            "years",
            0,
        );
        let psi = TableExtractor::new(vec![name_extractor(), name_extractor(), pi_years]);
        let universe = construct_universe(&[ex], &psi, &UniverseConfig::default());
        assert!(!universe.is_empty());
        // φ2 of Figure 3: child(parent(t[1]), id, 0) = child(parent(t[2]), fid, 0)
        let phi2 = Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::parent(NodeExtractor::Id), "id", 0),
            index: 1,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::child(NodeExtractor::parent(NodeExtractor::Id), "fid", 0),
                index: 2,
            },
        };
        assert!(
            universe.contains(&phi2),
            "universe missing the id=fid join predicate"
        );
    }

    #[test]
    fn universe_size_respects_caps() {
        let ex = example();
        let psi = TableExtractor::new(vec![name_extractor()]);
        let small = UniverseConfig {
            max_extractors_per_column: 2,
            max_constants: 2,
            with_ordering: false,
            ..Default::default()
        };
        let big = UniverseConfig::default();
        let u_small = construct_universe(std::slice::from_ref(&ex), &psi, &small);
        let u_big = construct_universe(&[ex], &psi, &big);
        assert!(u_small.len() < u_big.len());
    }
}
