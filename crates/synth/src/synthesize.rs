//! Top-level synthesis (`LearnTransformation`, Algorithm 1).
//!
//! The algorithm learns, for each output column, a set of candidate column extractors
//! (via the DFA machinery of [`crate::column`]), forms candidate table extractors from
//! their cartesian product, learns a filtering predicate for each candidate
//! ([`crate::predicate`]), validates the resulting program against every example, and
//! finally returns the program minimizing the Occam's-razor cost θ.

use crate::cache::ColumnEvalCache;
use crate::column::{learn_all_columns, ColumnLearnConfig};
use crate::dfa::DfaLimits;
use crate::predicate::{learn_predicate_cached, PredicateLearnConfig};
use crate::universe::UniverseConfig;
use mitra_dsl::ast::{ColumnExtractor, Program, TableExtractor};
use mitra_dsl::cost::{cost, Cost};
use mitra_dsl::eval::{eval_program_with, EvalLimits};
use mitra_dsl::Table;
use mitra_hdt::Hdt;
use std::fmt;
use std::time::{Duration, Instant};

/// One input–output example: an HDT and the relational table it should map to.
#[derive(Debug, Clone)]
pub struct Example {
    /// The input hierarchical data tree.
    pub tree: Hdt,
    /// The expected output table.
    pub output: Table,
}

impl Example {
    /// Creates an example.
    pub fn new(tree: Hdt, output: Table) -> Self {
        Example { tree, output }
    }
}

/// Tunable parameters of the synthesizer.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Limits for DFA construction and enumeration.
    pub dfa_limits: DfaLimits,
    /// Maximum candidate column extractors per column.
    pub max_column_candidates: usize,
    /// Maximum candidate table extractors (combinations) tried.
    pub max_table_candidates: usize,
    /// Predicate-universe knobs.
    pub universe: UniverseConfig,
    /// Maximum intermediate-table size per example.
    pub max_intermediate_rows: usize,
    /// Whether the exact (ILP-equivalent) cover solver is used.
    pub exact_cover: bool,
    /// Overall wall-clock budget; `None` means unlimited.
    pub timeout: Option<Duration>,
    /// Worker threads for DFA construction and candidate validation.
    ///
    /// `0` resolves to the process-global setting (`--threads` / `MITRA_THREADS` /
    /// available parallelism), `1` restores the fully sequential path.  The learned
    /// program is identical for every value: per-worker results are merged in
    /// canonical candidate order.
    pub threads: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            dfa_limits: DfaLimits::default(),
            max_column_candidates: 16,
            max_table_candidates: 128,
            universe: UniverseConfig::default(),
            max_intermediate_rows: 50_000,
            exact_cover: true,
            timeout: Some(Duration::from_secs(120)),
            threads: 0,
        }
    }
}

/// Reasons why synthesis can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// No examples were provided, or an example had zero columns.
    EmptySpecification,
    /// The examples disagree on the number of output columns.
    InconsistentArity,
    /// No column extractor consistent with the examples exists for the given column.
    NoColumnExtractor(usize),
    /// Column extractors were found but no (extractor, predicate) combination
    /// reproduces the examples.
    NoProgram,
    /// The configured timeout was exceeded before a program was found.
    Timeout,
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::EmptySpecification => write!(f, "no usable input-output examples"),
            SynthError::InconsistentArity => {
                write!(f, "output examples have different numbers of columns")
            }
            SynthError::NoColumnExtractor(i) => {
                write!(f, "no column extractor found for column {i}")
            }
            SynthError::NoProgram => write!(f, "no DSL program is consistent with the examples"),
            SynthError::Timeout => write!(f, "synthesis timed out"),
        }
    }
}

impl std::error::Error for SynthError {}

/// Result of a successful synthesis, with statistics used by the benchmark harness.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The best (lowest-cost) program found.
    pub program: Program,
    /// Its cost under θ.
    pub cost: Cost,
    /// Number of candidate table extractors examined.
    pub candidates_tried: usize,
    /// Number of candidate programs that satisfied all examples.
    pub programs_found: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// True when any column's DFA construction or enumeration hit a configured
    /// limit: the search space was under-explored and "no better program" claims
    /// must be read accordingly.
    pub truncated: bool,
    /// Worker threads actually used (after resolving `SynthConfig::threads`).
    pub threads_used: usize,
}

/// What became of one candidate table extractor.
enum CandidateOutcome {
    /// The wall-clock budget was already exhausted when the candidate came up.
    DeadlineSkipped,
    /// No predicate was found, or the validated table did not match an example.
    Rejected,
    /// A program consistent with every example.
    Valid(Box<Program>, Cost),
}

/// Evaluates one candidate table extractor: learn a predicate, build the program,
/// validate it against every example (Theorem 3 soundness check).
///
/// The row cap matches the one `learn_predicate` already enforced on the same trees
/// and extractor, so a candidate that reached validation can never fail on
/// resources — `Err` there (impossible by that invariant) conservatively rejects
/// the candidate rather than panicking.
fn evaluate_candidate(
    examples: &[Example],
    combo: &[ColumnExtractor],
    pred_config: &PredicateLearnConfig,
    cache: &ColumnEvalCache,
    max_intermediate_rows: usize,
) -> CandidateOutcome {
    let psi = TableExtractor::new(combo.to_vec());
    let Some(phi) = learn_predicate_cached(examples, &psi, pred_config, cache) else {
        return CandidateOutcome::Rejected;
    };
    let mut program = Program::new(psi, phi);
    program.column_names = examples[0].output.columns.clone();
    let limits = EvalLimits::with_max_rows(max_intermediate_rows);
    if !examples.iter().all(|ex| {
        eval_program_with(&ex.tree, &program, &limits)
            .map(|t| t.same_bag(&ex.output))
            .unwrap_or(false)
    }) {
        return CandidateOutcome::Rejected;
    }
    let c = cost(&program);
    CandidateOutcome::Valid(Box::new(program), c)
}

/// Learns a DSL program consistent with the given examples (Algorithm 1).
///
/// With `config.threads > 1` (or `0` resolving to a parallel global setting) the
/// two phases fan out across a scoped worker pool: every (column, example) DFA is
/// constructed concurrently, and the candidate table extractors of phase 2 are
/// validated concurrently with a shared column-evaluation cache.  Results are
/// **identical to the sequential path**: per-worker outcomes are merged in
/// canonical order (candidates by enumeration index, ties between equal-cost
/// programs broken by that index), never by completion order.
///
/// One caveat: a configured `timeout` trades that determinism for bounded wall
/// clock.  The deadline decides *which candidates get examined* by elapsed time,
/// so once it fires, results can differ across machine speeds — and therefore
/// across thread counts, since more workers get further before the budget runs
/// out.  Callers that need bit-for-bit reproducibility (determinism tests, the
/// bench harness) must run with `timeout: None`.
pub fn learn_transformation(
    examples: &[Example],
    config: &SynthConfig,
) -> Result<Synthesis, SynthError> {
    let start = Instant::now();
    if examples.is_empty() {
        return Err(SynthError::EmptySpecification);
    }
    let arity = examples[0].output.arity();
    if arity == 0 {
        return Err(SynthError::EmptySpecification);
    }
    if examples.iter().any(|e| e.output.arity() != arity) {
        return Err(SynthError::InconsistentArity);
    }
    let threads = mitra_pool::resolve(config.threads);

    // Build every example tree's navigation index up front: the workers below share
    // the trees read-only and must not serialize behind a lazy first-touch build.
    for ex in examples {
        ex.tree.ensure_index();
    }

    // Phase 1: learn candidate column extractors, all columns' DFAs in parallel.
    let col_config = ColumnLearnConfig {
        limits: config.dfa_limits,
        max_candidates: config.max_column_candidates,
    };
    let learned = learn_all_columns(examples, arity, &col_config, threads);
    let mut truncated = false;
    let mut per_column: Vec<Vec<ColumnExtractor>> = Vec::with_capacity(arity);
    for (col, cands) in learned.into_iter().enumerate() {
        if cands.extractors.is_empty() {
            return Err(SynthError::NoColumnExtractor(col));
        }
        truncated |= cands.truncated;
        per_column.push(cands.extractors);
    }

    // Phase 2: iterate over table extractors (cartesian product of candidates, in
    // order of increasing total size) and learn a predicate for each.  Candidates
    // are independent given the shared read-only cache, so they fan out; the merge
    // below walks outcomes in candidate order.
    let combos = ordered_combinations(&per_column, config.max_table_candidates);
    let pred_config = PredicateLearnConfig {
        universe: config.universe,
        max_intermediate_rows: config.max_intermediate_rows,
        exact_cover: config.exact_cover,
        threads,
        ..Default::default()
    };
    let cache = ColumnEvalCache::new(examples.len());

    let outcomes: Vec<CandidateOutcome> = mitra_pool::parallel_map(threads, &combos, |_, combo| {
        // The deadline check mirrors the sequential loop: a candidate whose turn
        // comes up after the budget is spent is skipped, not started.
        if let Some(limit) = config.timeout {
            if start.elapsed() > limit {
                return CandidateOutcome::DeadlineSkipped;
            }
        }
        evaluate_candidate(
            examples,
            combo,
            &pred_config,
            &cache,
            config.max_intermediate_rows,
        )
    });

    let mut best: Option<(Program, Cost)> = None;
    let mut candidates_tried = 0usize;
    let mut programs_found = 0usize;
    let mut timed_out = false;
    for outcome in outcomes {
        match outcome {
            CandidateOutcome::DeadlineSkipped => timed_out = true,
            CandidateOutcome::Rejected => candidates_tried += 1,
            CandidateOutcome::Valid(program, c) => {
                candidates_tried += 1;
                programs_found += 1;
                let better = match &best {
                    None => true,
                    Some((_, bc)) => c < *bc,
                };
                if better {
                    best = Some((*program, c));
                }
            }
        }
    }

    match best {
        Some((program, c)) => Ok(Synthesis {
            program,
            cost: c,
            candidates_tried,
            programs_found,
            elapsed: start.elapsed(),
            truncated,
            threads_used: threads,
        }),
        None => {
            if timed_out {
                Err(SynthError::Timeout)
            } else {
                Err(SynthError::NoProgram)
            }
        }
    }
}

/// Enumerates combinations (one candidate per column), ordered by the total size of
/// the chosen extractors so that simpler table extractors are tried first, capped at
/// `max` combinations.
fn ordered_combinations(
    per_column: &[Vec<ColumnExtractor>],
    max: usize,
) -> Vec<Vec<ColumnExtractor>> {
    let mut combos: Vec<Vec<usize>> = vec![vec![]];
    for cands in per_column {
        let mut next = Vec::new();
        for combo in &combos {
            for (i, _) in cands.iter().enumerate() {
                let mut c = combo.clone();
                c.push(i);
                next.push(c);
            }
        }
        combos = next;
        // Keep the combination count in check as we go: sort by partial size and trim.
        if combos.len() > max * 8 {
            combos.sort_by_key(|c| partial_size(per_column, c));
            combos.truncate(max * 8);
        }
    }
    combos.sort_by_key(|c| partial_size(per_column, c));
    combos.truncate(max);
    combos
        .into_iter()
        .map(|idxs| {
            idxs.iter()
                .enumerate()
                .map(|(col, &i)| per_column[col][i].clone())
                .collect()
        })
        .collect()
}

fn partial_size(per_column: &[Vec<ColumnExtractor>], combo: &[usize]) -> usize {
    combo
        .iter()
        .enumerate()
        .map(|(col, &i)| per_column[col][i].size())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_dsl::eval::eval_program;
    use mitra_dsl::pretty;
    use mitra_hdt::generate::{nested_objects, social_network, social_network_rows};

    fn social_example(n: usize, f: usize) -> Example {
        let tree = social_network(n, f);
        let rows = social_network_rows(n, f);
        let mut output = Table::new(vec![
            "Person".to_string(),
            "Friend-with".to_string(),
            "years".to_string(),
        ]);
        for r in rows {
            output.push(r.iter().map(|s| mitra_dsl::Value::from_data(s)).collect());
        }
        Example::new(tree, output)
    }

    #[test]
    fn synthesizes_motivating_example() {
        let ex = social_example(3, 1);
        let result =
            learn_transformation(std::slice::from_ref(&ex), &SynthConfig::default()).unwrap();
        // The program must generalize: run it on a bigger document.
        let big = social_example(5, 2);
        let out = eval_program(&big.tree, &result.program).unwrap();
        assert!(
            out.same_bag(&big.output),
            "program does not generalize:\n{}\ngot {out}",
            pretty::program_summary(&result.program)
        );
        assert!(result.cost.atoms >= 1);
    }

    #[test]
    fn synthesizes_single_column_projection() {
        let ex = Example::new(
            social_network(3, 1),
            Table::from_rows(&["name"], &[&["Alice"], &["Bob"], &["Carol"]]),
        );
        let result = learn_transformation(&[ex], &SynthConfig::default()).unwrap();
        assert_eq!(result.program.arity(), 1);
        // Simplest program should need no predicate atoms at all.
        assert_eq!(result.cost.atoms, 0);
    }

    #[test]
    fn synthesizes_figure8_example() {
        let tree = nested_objects();
        let output = Table::from_rows(&["outer", "inner"], &[&["outer-a", "inner-a"]]);
        let ex = Example::new(tree, output);
        let result =
            learn_transformation(std::slice::from_ref(&ex), &SynthConfig::default()).unwrap();
        let check = eval_program(&ex.tree, &result.program).unwrap();
        assert!(check.same_bag(&ex.output));
    }

    #[test]
    fn error_on_empty_examples() {
        assert_eq!(
            learn_transformation(&[], &SynthConfig::default()).unwrap_err(),
            SynthError::EmptySpecification
        );
    }

    #[test]
    fn error_on_inconsistent_arity() {
        let e1 = Example::new(
            social_network(2, 1),
            Table::from_rows(&["a"], &[&["Alice"]]),
        );
        let e2 = Example::new(
            social_network(2, 1),
            Table::from_rows(&["a", "b"], &[&["Alice", "Bob"]]),
        );
        assert_eq!(
            learn_transformation(&[e1, e2], &SynthConfig::default()).unwrap_err(),
            SynthError::InconsistentArity
        );
    }

    #[test]
    fn error_when_column_value_missing_from_tree() {
        let ex = Example::new(
            social_network(2, 1),
            Table::from_rows(&["x"], &[&["not-in-the-tree"]]),
        );
        match learn_transformation(&[ex], &SynthConfig::default()) {
            Err(SynthError::NoColumnExtractor(0)) => {}
            other => panic!("expected NoColumnExtractor, got {other:?}"),
        }
    }

    #[test]
    fn ranking_prefers_fewer_atoms() {
        // For the simple projection task the chosen program must not carry a
        // gratuitous predicate even though predicated programs also satisfy it.
        let ex = Example::new(
            social_network(2, 1),
            Table::from_rows(&["id"], &[&["1"], &["2"]]),
        );
        let result = learn_transformation(&[ex], &SynthConfig::default()).unwrap();
        assert_eq!(result.cost.atoms, 0);
    }

    #[test]
    fn multiple_examples_are_all_satisfied() {
        let e1 = social_example(2, 1);
        let e2 = social_example(3, 1);
        let result =
            learn_transformation(&[e1.clone(), e2.clone()], &SynthConfig::default()).unwrap();
        for ex in [e1, e2] {
            assert!(eval_program(&ex.tree, &result.program)
                .unwrap()
                .same_bag(&ex.output));
        }
    }

    #[test]
    fn combination_ordering_is_by_size() {
        let small = ColumnExtractor::children(ColumnExtractor::Input, "a");
        let big = ColumnExtractor::descendants(
            ColumnExtractor::children(ColumnExtractor::Input, "a"),
            "b",
        );
        let combos =
            ordered_combinations(&[vec![small.clone(), big.clone()], vec![small, big]], 10);
        let sizes: Vec<usize> = combos
            .iter()
            .map(|c| c.iter().map(ColumnExtractor::size).sum())
            .collect();
        for w in sizes.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }
}
