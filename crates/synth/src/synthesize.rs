//! Top-level synthesis (`LearnTransformation`, Algorithm 1), as a lazy cost-ordered
//! best-first search.
//!
//! The algorithm learns, for each output column, the intersected DFA of candidate
//! column extractors (via [`crate::column`]), then explores the cartesian product of
//! the columns' accepted words through a binary-heap frontier keyed by the admissible
//! θ-cost lower bound `(0, Σ column-extractor sizes, 0)`.  Combos pop in true cost
//! order — per-column candidates *stream* out of the automata on demand instead of
//! being capped and materialized up front — and each popped combo learns a filtering
//! predicate ([`crate::predicate`]) and validates against every example.  The search
//! stops at the first point where the best validated program provably beats every
//! unexplored combo (see DESIGN.md §8), or after `max_table_candidates` pops.
//!
//! The returned program is identical at every thread count: batches of combos are
//! popped on a deterministic schedule, evaluated concurrently, and merged in pop
//! order with strict-improvement ties (cost, then enumeration index).

use crate::budget::{Budget, BudgetBreach, BudgetExhausted, BudgetResource};
use crate::cache::ColumnEvalCache;
use crate::column::{learn_all_columns, learn_column_automata_budgeted, ColumnLearnConfig};
use crate::dfa::{DfaLimits, WordStream};
use crate::predicate::{
    learn_predicate_cached, learn_predicate_reference_cached, PredicateLearnConfig,
};
use crate::universe::UniverseConfig;
use mitra_dsl::ast::{ColumnExtractor, Program, TableExtractor};
use mitra_dsl::cost::{cost, Cost};
use mitra_dsl::eval::{eval_program_with, EvalLimits};
use mitra_dsl::Table;
use mitra_hdt::Hdt;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

/// One input–output example: an HDT and the relational table it should map to.
#[derive(Debug, Clone)]
pub struct Example {
    /// The input hierarchical data tree.
    pub tree: Hdt,
    /// The expected output table.
    pub output: Table,
}

impl Example {
    /// Creates an example.
    pub fn new(tree: Hdt, output: Table) -> Self {
        Example { tree, output }
    }
}

/// Tunable parameters of the synthesizer.
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Limits for DFA construction and enumeration.
    pub dfa_limits: DfaLimits,
    /// Maximum candidate column extractors per column.
    ///
    /// Only the exhaustive reference path materializes per-column candidate lists;
    /// the best-first search streams candidates from the column automata and is
    /// bounded by `max_table_candidates` alone.
    pub max_column_candidates: usize,
    /// Maximum candidate table extractors (combinations) examined.
    pub max_table_candidates: usize,
    /// Predicate-universe knobs.
    pub universe: UniverseConfig,
    /// Maximum intermediate-table size per example.
    pub max_intermediate_rows: usize,
    /// Whether the exact (ILP-equivalent) cover solver is used.
    pub exact_cover: bool,
    /// Overall wall-clock budget; `None` means unlimited.
    pub timeout: Option<Duration>,
    /// Deterministic fuel budget (candidates popped, DFA states, rows
    /// materialized).  Unlike `timeout`, exhaustion is a pure function of the
    /// work done, so results under a budget are identical at every thread count
    /// and machine speed.  Default: unlimited.
    pub budget: Budget,
    /// Worker threads for DFA construction and candidate validation.
    ///
    /// `0` resolves to the process-global setting (`--threads` / `MITRA_THREADS` /
    /// available parallelism), `1` restores the fully sequential path.  The learned
    /// program is identical for every value: per-worker results are merged in
    /// canonical candidate order.
    pub threads: usize,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            dfa_limits: DfaLimits::default(),
            max_column_candidates: 16,
            max_table_candidates: 128,
            universe: UniverseConfig::default(),
            max_intermediate_rows: 50_000,
            exact_cover: true,
            timeout: Some(Duration::from_secs(120)),
            budget: Budget::UNLIMITED,
            threads: 0,
        }
    }
}

/// Reasons why synthesis can fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SynthError {
    /// No examples were provided, or an example had zero columns.
    EmptySpecification,
    /// The examples disagree on the number of output columns.
    InconsistentArity,
    /// No column extractor consistent with the examples exists for the given column.
    NoColumnExtractor(usize),
    /// Column extractors were found but no (extractor, predicate) combination
    /// reproduces the examples.
    NoProgram,
    /// The configured timeout was exceeded before a program was found.
    Timeout,
    /// A deterministic fuel budget ran out before any program was found; the
    /// payload carries the breach and the partial work profile.
    BudgetExhausted(BudgetExhausted),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::EmptySpecification => write!(f, "no usable input-output examples"),
            SynthError::InconsistentArity => {
                write!(f, "output examples have different numbers of columns")
            }
            SynthError::NoColumnExtractor(i) => {
                write!(f, "no column extractor found for column {i}")
            }
            SynthError::NoProgram => write!(f, "no DSL program is consistent with the examples"),
            SynthError::Timeout => write!(f, "synthesis timed out"),
            SynthError::BudgetExhausted(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SynthError {}

/// Wall-time and work breakdown of one synthesis call, threaded into
/// [`Synthesis`], migration reports and the `--json` benchmark outputs so perf
/// work can attribute wins per phase.
///
/// The duration fields are *summed across pool workers* where a phase fans out
/// (DFA build, predicate learning, validation), so on multi-threaded runs they
/// can exceed the elapsed wall clock.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SynthProfile {
    /// Constructing the per-(column, example) automata.
    pub dfa_build: Duration,
    /// Intersecting them into per-column product automata.
    pub dfa_intersect: Duration,
    /// Streaming words out of the product automata.
    pub dfa_enumerate: Duration,
    /// Learning filtering predicates for popped combos.
    pub predicate_learn: Duration,
    /// Validating candidate programs against the examples.
    pub validate: Duration,
    /// Combos that ran candidate evaluation (rejected or valid).
    pub candidates_examined: usize,
    /// Combos discarded by the admissible lower bound before any evaluation.
    pub candidates_pruned: usize,
}

impl SynthProfile {
    /// Field-wise sum, for aggregating per-table profiles into a migration total.
    pub fn merge(&mut self, other: &SynthProfile) {
        self.dfa_build += other.dfa_build;
        self.dfa_intersect += other.dfa_intersect;
        self.dfa_enumerate += other.dfa_enumerate;
        self.predicate_learn += other.predicate_learn;
        self.validate += other.validate;
        self.candidates_examined += other.candidates_examined;
        self.candidates_pruned += other.candidates_pruned;
    }
}

/// Result of a successful synthesis, with statistics used by the benchmark harness.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The best (lowest-cost) program found.
    pub program: Program,
    /// Its cost under θ.
    pub cost: Cost,
    /// Number of candidate table extractors examined.
    pub candidates_tried: usize,
    /// Number of candidate programs that satisfied all examples.
    pub programs_found: usize,
    /// Wall-clock time spent.
    pub elapsed: Duration,
    /// True when any column's DFA *construction* hit a configured limit: the
    /// search space was under-explored and "no better program" claims must be
    /// read accordingly.  (Enumeration no longer truncates — candidates stream
    /// from the automata on demand.)
    pub truncated: bool,
    /// Worker threads actually used (after resolving `SynthConfig::threads`).
    pub threads_used: usize,
    /// Per-phase wall times and candidate counts.
    pub profile: SynthProfile,
    /// Set when a fuel budget ran out *after* a valid program was already in
    /// hand: the incumbent is returned, but the search was cut short and
    /// "no better program" claims must be read accordingly.
    pub budget_breach: Option<BudgetBreach>,
}

/// What became of one candidate table extractor.
enum CandidateOutcome {
    /// The wall-clock budget was already exhausted when the candidate came up.
    DeadlineSkipped,
    /// The admissible lower bound proved the combo cannot beat the incumbent
    /// program; no predicate was learned.
    Pruned,
    /// No predicate was found, or the validated table did not match an example.
    Rejected,
    /// A program consistent with every example.
    Valid(Box<Program>, Cost),
}

/// Evaluates one candidate table extractor: cheap incremental pruning first (row
/// coverage, product bounds, the admissible cost floor), then learn a predicate,
/// build the program, and validate it against every example (Theorem 3 soundness
/// check).
///
/// The row cap matches the one `learn_predicate` already enforced on the same trees
/// and extractor, so a candidate that reached validation can never fail on
/// resources — `Err` there (impossible by that invariant) conservatively rejects
/// the candidate rather than panicking.
#[allow(clippy::too_many_arguments)]
fn evaluate_candidate(
    examples: &[Example],
    combo: &[ColumnExtractor],
    combo_size: usize,
    floor: Option<Cost>,
    pred_config: &PredicateLearnConfig,
    cache: &ColumnEvalCache,
    max_intermediate_rows: usize,
    predicate_nanos: &AtomicU64,
    validate_nanos: &AtomicU64,
) -> CandidateOutcome {
    // Tentpole (c): a combo dies the moment one column's evaluated value-set can no
    // longer cover the example rows — no tuple labelling, no universe.
    for (ex_idx, ex) in examples.iter().enumerate() {
        for (col, pi) in combo.iter().enumerate() {
            if !cache.row_coverage(ex_idx, &ex.tree, pi, &ex.output)[col] {
                return CandidateOutcome::Rejected;
            }
        }
    }

    // Row-product guard (checked multiplication, mirroring `cross_product_slices`)
    // plus the admissible atom bound: an intermediate table bigger or smaller than
    // the output needs at least one predicate atom to filter or fail.
    let mut atoms_lower_bound = 0usize;
    for (ex_idx, ex) in examples.iter().enumerate() {
        let mut product: Option<usize> = Some(1);
        for pi in combo {
            let n = cache.column_nodes(ex_idx, &ex.tree, pi).len();
            product = product.and_then(|p| p.checked_mul(n));
        }
        match product {
            // Overflow: `cross_product_slices` would reject the candidate too.
            None => return CandidateOutcome::Rejected,
            Some(p) if p > max_intermediate_rows => return CandidateOutcome::Rejected,
            Some(p) => {
                if p != ex.output.rows.len() {
                    atoms_lower_bound = 1;
                }
            }
        }
    }
    if let Some(floor) = floor {
        // Any program this combo can produce costs at least the bound, and on an
        // exact tie the earlier-popped incumbent wins — so `<=` prunes.
        if floor <= Cost::lower_bound(atoms_lower_bound, combo_size) {
            return CandidateOutcome::Pruned;
        }
    }

    let psi = TableExtractor::new(combo.to_vec());
    let phi = {
        let _span = mitra_trace::span_acc("synth", "predicate_learn", predicate_nanos);
        learn_predicate_cached(examples, &psi, pred_config, cache)
    };
    let Some(phi) = phi else {
        return CandidateOutcome::Rejected;
    };
    let mut program = Program::new(psi, phi);
    program.column_names = examples[0].output.columns.clone();
    let limits = EvalLimits::with_max_rows(max_intermediate_rows);
    let valid = {
        let _span = mitra_trace::span_acc("synth", "validate", validate_nanos);
        examples.iter().all(|ex| {
            eval_program_with(&ex.tree, &program, &limits)
                .map(|t| t.same_bag(&ex.output))
                .unwrap_or(false)
        })
    };
    if !valid {
        return CandidateOutcome::Rejected;
    }
    let c = cost(&program);
    CandidateOutcome::Valid(Box::new(program), c)
}

/// Lazily materialized per-column candidate stream over a column automaton.
///
/// Words arrive shortest-first from [`WordStream`], and a word's extractor size
/// equals its length, so `words[i].1` is nondecreasing in `i` — the monotonicity
/// the heap keys rely on.
struct ColumnStream<'a> {
    words: Vec<(ColumnExtractor, usize)>,
    stream: WordStream<'a>,
    exhausted: bool,
}

impl<'a> ColumnStream<'a> {
    fn new(stream: WordStream<'a>) -> Self {
        ColumnStream {
            words: Vec::new(),
            stream,
            exhausted: false,
        }
    }

    /// Pulls words until index `idx` exists; false when the bounded language is
    /// exhausted first.  Pull time is accounted to the enumerate phase.
    fn ensure(&mut self, idx: usize, enumerate_nanos: &AtomicU64) -> bool {
        if self.exhausted || self.words.len() > idx {
            return self.words.len() > idx;
        }
        let _span = mitra_trace::span_acc("synth", "dfa_enumerate", enumerate_nanos);
        while !self.exhausted && self.words.len() <= idx {
            match self.stream.next_word() {
                Some(word) => {
                    let extractor = ColumnExtractor::from_steps(&word);
                    let size = extractor.size();
                    self.words.push((extractor, size));
                    mitra_trace::counter_add!("synth.words_streamed", 1);
                }
                None => self.exhausted = true,
            }
        }
        self.words.len() > idx
    }

    fn size(&self, idx: usize) -> usize {
        self.words[idx].1
    }

    fn extractor(&self, idx: usize) -> &ColumnExtractor {
        &self.words[idx].0
    }
}

/// The heap key of a combo: the sum of its column extractors' sizes (saturating —
/// the sum, not a product, but wide candidate sets must degrade gracefully rather
/// than wrap).  Equals the `extractor_constructs` component of any program built
/// from the combo, which makes `(0, key, 0)` an admissible θ lower bound.
fn combo_key(streams: &[ColumnStream<'_>], idxs: &[usize]) -> usize {
    idxs.iter().enumerate().fold(0usize, |acc, (col, &i)| {
        acc.saturating_add(streams[col].size(i))
    })
}

/// Learns a DSL program consistent with the given examples (Algorithm 1), by
/// lazy cost-ordered best-first search over candidate table extractors.
///
/// Combos (one streamed word per column) pop off a binary-heap frontier in
/// `(Σ sizes, enumeration index)` order; each popped combo is first subjected to
/// cheap incremental pruning (per-column row-coverage bitmaps, checked row
/// products, the admissible cost floor against the incumbent best program) and
/// only then runs predicate learning.  The search ends when the incumbent
/// provably beats every unexplored combo, when `max_table_candidates` combos have
/// been popped, or when the frontier empties.
///
/// With `config.threads > 1` (or `0` resolving to a parallel global setting)
/// combos are evaluated concurrently in deterministically-scheduled batches;
/// outcomes merge in pop order with strict-improvement ties, and workers prune
/// against the incumbent from *before* their batch, so the result — program,
/// cost, and all candidate counts — is **identical to the sequential path** at
/// every thread count.
///
/// One caveat: a configured `timeout` trades that determinism for bounded wall
/// clock.  The deadline decides *which candidates get examined* by elapsed time,
/// so once it fires, results can differ across machine speeds — and therefore
/// across thread counts, since more workers get further before the budget runs
/// out.  Callers that need bit-for-bit reproducibility (determinism tests, the
/// bench harness) must run with `timeout: None`.
pub fn learn_transformation(
    examples: &[Example],
    config: &SynthConfig,
) -> Result<Synthesis, SynthError> {
    let start = Instant::now();
    if examples.is_empty() {
        return Err(SynthError::EmptySpecification);
    }
    let arity = examples[0].output.arity();
    if arity == 0 {
        return Err(SynthError::EmptySpecification);
    }
    if examples.iter().any(|e| e.output.arity() != arity) {
        return Err(SynthError::InconsistentArity);
    }
    let _span = mitra_trace::span_detail("synth", "learn_transformation", || {
        format!("arity={arity} examples={}", examples.len())
    });
    let threads = mitra_pool::resolve(config.threads);

    // Build every example tree's navigation index up front: the workers below share
    // the trees read-only and must not serialize behind a lazy first-touch build.
    for ex in examples {
        ex.tree.ensure_index();
    }

    // Phase 1: the per-column product automata, all (column, example) DFAs built in
    // parallel.  State accounting is canonical (pair order, then intersection
    // order), so a `dfa_states` budget exhausts identically at every thread count.
    let automata = learn_column_automata_budgeted(
        examples,
        arity,
        config.dfa_limits,
        threads,
        config.budget.max_dfa_states,
    );
    if let Some(breach) = automata.breach {
        return Err(SynthError::BudgetExhausted(BudgetExhausted::new(
            breach,
            SynthProfile {
                dfa_build: automata.build,
                dfa_intersect: automata.intersect,
                ..Default::default()
            },
        )));
    }
    let mut truncated = false;
    let mut dfas = Vec::with_capacity(arity);
    for (col, dfa) in automata.dfas.into_iter().enumerate() {
        let Some(dfa) = dfa else {
            return Err(SynthError::NoColumnExtractor(col));
        };
        truncated |= dfa.truncated;
        dfas.push(dfa);
    }

    // Phase 2: best-first search over streamed combos.
    let _search_span = mitra_trace::span("synth", "best_first_search");
    let enumerate_nanos = AtomicU64::new(0);
    let mut streams: Vec<ColumnStream<'_>> = dfas
        .iter()
        .map(|dfa| ColumnStream::new(dfa.stream(config.dfa_limits.max_word_len)))
        .collect();
    for (col, stream) in streams.iter_mut().enumerate() {
        if !stream.ensure(0, &enumerate_nanos) {
            return Err(SynthError::NoColumnExtractor(col));
        }
    }

    let pred_config = PredicateLearnConfig {
        universe: config.universe,
        max_intermediate_rows: config.max_intermediate_rows,
        exact_cover: config.exact_cover,
        threads,
        ..Default::default()
    };
    let cache = ColumnEvalCache::new(examples.len());
    let predicate_nanos = AtomicU64::new(0);
    let validate_nanos = AtomicU64::new(0);

    // The frontier: combos keyed by (Σ sizes, index vector).  Every index vector is
    // generated exactly once — combo `v` is pushed only by its canonical
    // predecessor `v - e_p` where `p` is `v`'s last nonzero position — and keys are
    // monotone along successor edges because per-column sizes are nondecreasing, so
    // pops happen in true (cost bound, enumeration index) order.
    let mut heap: BinaryHeap<Reverse<(usize, Vec<usize>)>> = BinaryHeap::new();
    let seed = vec![0usize; arity];
    heap.push(Reverse((combo_key(&streams, &seed), seed)));

    let mut best: Option<(Program, Cost)> = None;
    let mut candidates_tried = 0usize;
    let mut programs_found = 0usize;
    let mut pruned = 0usize;
    let mut timed_out = false;
    let mut budget_breach: Option<BudgetBreach> = None;
    let mut popped_total = 0usize;
    // Deterministic batch schedule, independent of the thread count: batches grow
    // geometrically so the incumbent (and with it the pruning floor and the
    // termination bound) refreshes quickly early on, while later batches are wide
    // enough to keep a pool busy.
    let mut batch_size = 1usize;

    while popped_total < config.max_table_candidates {
        // Candidate fuel pays per frontier pop; the check (and the batch clamp
        // below) depend only on the pop count, never on elapsed time.
        if let Err(breach) = config
            .budget
            .check(BudgetResource::Candidates, popped_total as u64)
        {
            budget_breach = Some(breach);
            break;
        }
        mitra_trace::hist_observe!("synth.frontier_depth", heap.len() as u64);
        // Provably-minimal stop (DESIGN.md §8): every unexplored combo — frontier
        // entry or descendant thereof — has Σ sizes ≥ the frontier's minimum key,
        // hence program cost ≥ (0, min_key, 0).  An incumbent at or below that
        // bound cannot be beaten, and on ties the incumbent's earlier enumeration
        // index wins.
        let Some(Reverse((min_key, _))) = heap.peek() else {
            break;
        };
        if let Some((_, best_cost)) = &best {
            if *best_cost <= Cost::lower_bound(0, *min_key) {
                break;
            }
        }

        // Pop a deterministic batch, expanding successors as we go (a successor can
        // be popped within the same batch).
        let mut take = batch_size.min(config.max_table_candidates - popped_total);
        if let Some(limit) = config.budget.max_candidates {
            take = take.min((limit as usize).saturating_sub(popped_total));
        }
        let mut batch: Vec<(usize, Vec<usize>)> = Vec::new();
        while batch.len() < take {
            let Some(Reverse((key, idxs))) = heap.pop() else {
                break;
            };
            let last_nonzero = idxs.iter().rposition(|&i| i != 0).unwrap_or(0);
            for col in last_nonzero..arity {
                let mut succ = idxs.clone();
                succ[col] += 1;
                if streams[col].ensure(succ[col], &enumerate_nanos) {
                    let succ_key = combo_key(&streams, &succ);
                    heap.push(Reverse((succ_key, succ)));
                }
            }
            batch.push((key, idxs));
        }
        if batch.is_empty() {
            break;
        }
        let batch_start = popped_total;
        popped_total += batch.len();

        let jobs: Vec<(usize, Vec<ColumnExtractor>)> = batch
            .iter()
            .map(|(key, idxs)| {
                let combo: Vec<ColumnExtractor> = idxs
                    .iter()
                    .enumerate()
                    .map(|(col, &i)| streams[col].extractor(i).clone())
                    .collect();
                (*key, combo)
            })
            .collect();
        // Workers prune against the incumbent from before the batch: in-batch
        // improvements must not influence later jobs, or the outcome (and the
        // candidate counts) would depend on scheduling.
        let floor = best.as_ref().map(|(_, c)| *c);
        let outcomes = mitra_pool::parallel_map_catch(threads, &jobs, |j, (key, combo)| {
            // Fault-injection site keyed by the global pop index — which candidate
            // dies is a pure function of the spec, never of worker scheduling.
            mitra_trace::fault::hit("synth.validate", (batch_start + j) as u64);
            // The deadline check mirrors the sequential loop: a candidate whose
            // turn comes up after the budget is spent is skipped, not started.
            if let Some(limit) = config.timeout {
                if start.elapsed() > limit {
                    return CandidateOutcome::DeadlineSkipped;
                }
            }
            evaluate_candidate(
                examples,
                combo,
                *key,
                floor,
                &pred_config,
                &cache,
                config.max_intermediate_rows,
                &predicate_nanos,
                &validate_nanos,
            )
        });

        // Canonical merge, in pop order with strict improvement: ties between
        // equal-cost programs go to the earlier enumeration index.
        let mut panicked = 0u64;
        for outcome in outcomes {
            match outcome {
                // A panicking evaluation poisons only its own slot; the combo
                // counts as examined-and-rejected, so candidate accounting (and
                // with it the returned program) is identical at every thread
                // count for an index-keyed fault.
                Err(_) => {
                    candidates_tried += 1;
                    panicked += 1;
                }
                Ok(CandidateOutcome::DeadlineSkipped) => timed_out = true,
                Ok(CandidateOutcome::Pruned) => pruned += 1,
                Ok(CandidateOutcome::Rejected) => candidates_tried += 1,
                Ok(CandidateOutcome::Valid(program, c)) => {
                    candidates_tried += 1;
                    programs_found += 1;
                    let better = match &best {
                        None => true,
                        Some((_, bc)) => c < *bc,
                    };
                    if better {
                        best = Some((*program, c));
                    }
                }
            }
        }
        if panicked > 0 {
            mitra_trace::counter_add!("synth.candidates.panicked", panicked);
        }
        if timed_out {
            break;
        }
        batch_size = (batch_size * 2).min(16);
    }

    mitra_trace::counter_add!("synth.candidates.examined", candidates_tried as u64);
    mitra_trace::counter_add!("synth.candidates.pruned", pruned as u64);
    let profile = SynthProfile {
        dfa_build: automata.build,
        dfa_intersect: automata.intersect,
        dfa_enumerate: Duration::from_nanos(enumerate_nanos.load(Relaxed)),
        predicate_learn: Duration::from_nanos(predicate_nanos.load(Relaxed)),
        validate: Duration::from_nanos(validate_nanos.load(Relaxed)),
        candidates_examined: candidates_tried,
        candidates_pruned: pruned,
    };
    match best {
        Some((program, c)) => Ok(Synthesis {
            program,
            cost: c,
            candidates_tried,
            programs_found,
            elapsed: start.elapsed(),
            truncated,
            threads_used: threads,
            profile,
            budget_breach,
        }),
        None => {
            if let Some(breach) = budget_breach {
                Err(SynthError::BudgetExhausted(BudgetExhausted::new(
                    breach, profile,
                )))
            } else if timed_out {
                Err(SynthError::Timeout)
            } else {
                Err(SynthError::NoProgram)
            }
        }
    }
}

/// The pre-refactor materialize-then-sweep pipeline, kept as the oracle for the
/// differential suite (`tests/search_equivalence.rs`): capped per-column candidate
/// lists, every combination evaluated with the reference predicate learner, no
/// early termination and no pruning.  When neither the per-column cap nor the
/// combination cap binds, the best-first search must return a byte-identical
/// program and cost.
pub fn learn_transformation_exhaustive(
    examples: &[Example],
    config: &SynthConfig,
) -> Result<Synthesis, SynthError> {
    let start = Instant::now();
    if examples.is_empty() {
        return Err(SynthError::EmptySpecification);
    }
    let arity = examples[0].output.arity();
    if arity == 0 {
        return Err(SynthError::EmptySpecification);
    }
    if examples.iter().any(|e| e.output.arity() != arity) {
        return Err(SynthError::InconsistentArity);
    }
    let threads = mitra_pool::resolve(config.threads);
    for ex in examples {
        ex.tree.ensure_index();
    }

    let col_config = ColumnLearnConfig {
        limits: config.dfa_limits,
        max_candidates: config.max_column_candidates,
    };
    let learned = learn_all_columns(examples, arity, &col_config, threads);
    let mut truncated = false;
    let mut per_column: Vec<Vec<ColumnExtractor>> = Vec::with_capacity(arity);
    for (col, cands) in learned.into_iter().enumerate() {
        if cands.extractors.is_empty() {
            return Err(SynthError::NoColumnExtractor(col));
        }
        truncated |= cands.truncated;
        per_column.push(cands.extractors);
    }

    let combos = ordered_combinations(&per_column, config.max_table_candidates);
    let pred_config = PredicateLearnConfig {
        universe: config.universe,
        max_intermediate_rows: config.max_intermediate_rows,
        exact_cover: config.exact_cover,
        threads,
        ..Default::default()
    };
    let cache = ColumnEvalCache::new(examples.len());
    let limits = EvalLimits::with_max_rows(config.max_intermediate_rows);

    let mut best: Option<(Program, Cost)> = None;
    let mut candidates_tried = 0usize;
    let mut programs_found = 0usize;
    let mut timed_out = false;
    let mut budget_breach: Option<BudgetBreach> = None;
    for combo in &combos {
        // The reference path spends candidate fuel per combo examined, matching
        // the best-first frontier's pay-per-pop accounting.
        if let Err(breach) = config
            .budget
            .check(BudgetResource::Candidates, candidates_tried as u64)
        {
            budget_breach = Some(breach);
            break;
        }
        if let Some(limit) = config.timeout {
            if start.elapsed() > limit {
                timed_out = true;
                continue;
            }
        }
        candidates_tried += 1;
        let psi = TableExtractor::new(combo.clone());
        let Some(phi) = learn_predicate_reference_cached(examples, &psi, &pred_config, &cache)
        else {
            continue;
        };
        let mut program = Program::new(psi, phi);
        program.column_names = examples[0].output.columns.clone();
        if !examples.iter().all(|ex| {
            eval_program_with(&ex.tree, &program, &limits)
                .map(|t| t.same_bag(&ex.output))
                .unwrap_or(false)
        }) {
            continue;
        }
        let c = cost(&program);
        programs_found += 1;
        let better = match &best {
            None => true,
            Some((_, bc)) => c < *bc,
        };
        if better {
            best = Some((program, c));
        }
    }

    let profile = SynthProfile {
        candidates_examined: candidates_tried,
        ..Default::default()
    };
    match best {
        Some((program, c)) => Ok(Synthesis {
            program,
            cost: c,
            candidates_tried,
            programs_found,
            elapsed: start.elapsed(),
            truncated,
            threads_used: threads,
            profile,
            budget_breach,
        }),
        None => {
            if let Some(breach) = budget_breach {
                Err(SynthError::BudgetExhausted(BudgetExhausted::new(
                    breach, profile,
                )))
            } else if timed_out {
                Err(SynthError::Timeout)
            } else {
                Err(SynthError::NoProgram)
            }
        }
    }
}

/// Enumerates combinations (one candidate per column), ordered by the total size of
/// the chosen extractors so that simpler table extractors are tried first, capped at
/// `max` combinations.
///
/// Only the exhaustive reference path uses this; the best-first search generates
/// the same (size, index) order lazily through its heap frontier.
fn ordered_combinations(
    per_column: &[Vec<ColumnExtractor>],
    max: usize,
) -> Vec<Vec<ColumnExtractor>> {
    let mut combos: Vec<Vec<usize>> = vec![vec![]];
    for cands in per_column {
        let mut next = Vec::new();
        for combo in &combos {
            for (i, _) in cands.iter().enumerate() {
                let mut c = combo.clone();
                c.push(i);
                next.push(c);
            }
        }
        combos = next;
        // Keep the combination count in check as we go: sort by partial size and trim.
        if combos.len() > max * 8 {
            combos.sort_by_key(|c| partial_size(per_column, c));
            combos.truncate(max * 8);
        }
    }
    combos.sort_by_key(|c| partial_size(per_column, c));
    combos.truncate(max);
    combos
        .into_iter()
        .map(|idxs| {
            idxs.iter()
                .enumerate()
                .map(|(col, &i)| per_column[col][i].clone())
                .collect()
        })
        .collect()
}

/// Total extractor size of a (partial) combination.  Saturating: on pathologically
/// wide candidate sets the sum must degrade to "effectively infinite", not wrap
/// around and sort a gigantic combo ahead of everything else.
fn partial_size(per_column: &[Vec<ColumnExtractor>], combo: &[usize]) -> usize {
    combo.iter().enumerate().fold(0usize, |acc, (col, &i)| {
        acc.saturating_add(per_column[col][i].size())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_dsl::eval::eval_program;
    use mitra_dsl::pretty;
    use mitra_hdt::generate::{nested_objects, social_network, social_network_rows};

    fn social_example(n: usize, f: usize) -> Example {
        let tree = social_network(n, f);
        let rows = social_network_rows(n, f);
        let mut output = Table::new(vec![
            "Person".to_string(),
            "Friend-with".to_string(),
            "years".to_string(),
        ]);
        for r in rows {
            output.push(r.iter().map(|s| mitra_dsl::Value::from_data(s)).collect());
        }
        Example::new(tree, output)
    }

    #[test]
    fn synthesizes_motivating_example() {
        let ex = social_example(3, 1);
        let result =
            learn_transformation(std::slice::from_ref(&ex), &SynthConfig::default()).unwrap();
        // The program must generalize: run it on a bigger document.
        let big = social_example(5, 2);
        let out = eval_program(&big.tree, &result.program).unwrap();
        assert!(
            out.same_bag(&big.output),
            "program does not generalize:\n{}\ngot {out}",
            pretty::program_summary(&result.program)
        );
        assert!(result.cost.atoms >= 1);
    }

    #[test]
    fn synthesizes_single_column_projection() {
        let ex = Example::new(
            social_network(3, 1),
            Table::from_rows(&["name"], &[&["Alice"], &["Bob"], &["Carol"]]),
        );
        let result = learn_transformation(&[ex], &SynthConfig::default()).unwrap();
        assert_eq!(result.program.arity(), 1);
        // Simplest program should need no predicate atoms at all.
        assert_eq!(result.cost.atoms, 0);
    }

    #[test]
    fn synthesizes_figure8_example() {
        let tree = nested_objects();
        let output = Table::from_rows(&["outer", "inner"], &[&["outer-a", "inner-a"]]);
        let ex = Example::new(tree, output);
        let result =
            learn_transformation(std::slice::from_ref(&ex), &SynthConfig::default()).unwrap();
        let check = eval_program(&ex.tree, &result.program).unwrap();
        assert!(check.same_bag(&ex.output));
    }

    #[test]
    fn error_on_empty_examples() {
        assert_eq!(
            learn_transformation(&[], &SynthConfig::default()).unwrap_err(),
            SynthError::EmptySpecification
        );
    }

    #[test]
    fn error_on_inconsistent_arity() {
        let e1 = Example::new(
            social_network(2, 1),
            Table::from_rows(&["a"], &[&["Alice"]]),
        );
        let e2 = Example::new(
            social_network(2, 1),
            Table::from_rows(&["a", "b"], &[&["Alice", "Bob"]]),
        );
        assert_eq!(
            learn_transformation(&[e1, e2], &SynthConfig::default()).unwrap_err(),
            SynthError::InconsistentArity
        );
    }

    #[test]
    fn error_when_column_value_missing_from_tree() {
        let ex = Example::new(
            social_network(2, 1),
            Table::from_rows(&["x"], &[&["not-in-the-tree"]]),
        );
        match learn_transformation(&[ex], &SynthConfig::default()) {
            Err(SynthError::NoColumnExtractor(0)) => {}
            other => panic!("expected NoColumnExtractor, got {other:?}"),
        }
    }

    #[test]
    fn ranking_prefers_fewer_atoms() {
        // For the simple projection task the chosen program must not carry a
        // gratuitous predicate even though predicated programs also satisfy it.
        let ex = Example::new(
            social_network(2, 1),
            Table::from_rows(&["id"], &[&["1"], &["2"]]),
        );
        let result = learn_transformation(&[ex], &SynthConfig::default()).unwrap();
        assert_eq!(result.cost.atoms, 0);
    }

    #[test]
    fn multiple_examples_are_all_satisfied() {
        let e1 = social_example(2, 1);
        let e2 = social_example(3, 1);
        let result =
            learn_transformation(&[e1.clone(), e2.clone()], &SynthConfig::default()).unwrap();
        for ex in [e1, e2] {
            assert!(eval_program(&ex.tree, &result.program)
                .unwrap()
                .same_bag(&ex.output));
        }
    }

    #[test]
    fn combination_ordering_is_by_size() {
        let small = ColumnExtractor::children(ColumnExtractor::Input, "a");
        let big = ColumnExtractor::descendants(
            ColumnExtractor::children(ColumnExtractor::Input, "a"),
            "b",
        );
        let combos =
            ordered_combinations(&[vec![small.clone(), big.clone()], vec![small, big]], 10);
        let sizes: Vec<usize> = combos
            .iter()
            .map(|c| c.iter().map(ColumnExtractor::size).sum())
            .collect();
        for w in sizes.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn best_first_matches_exhaustive_on_motivating_example() {
        let ex = social_example(3, 1);
        // Caps wide enough that neither path's bound binds: the searches explore
        // the same space and must agree byte-for-byte.
        let config = SynthConfig {
            timeout: None,
            max_column_candidates: 1_000,
            max_table_candidates: 2_000,
            threads: 1,
            ..Default::default()
        };
        let fast = learn_transformation(std::slice::from_ref(&ex), &config).unwrap();
        let slow = learn_transformation_exhaustive(std::slice::from_ref(&ex), &config).unwrap();
        assert_eq!(
            pretty::program(&fast.program),
            pretty::program(&slow.program)
        );
        assert_eq!(fast.cost, slow.cost);
    }

    #[test]
    fn zero_candidate_budget_errs_with_partial_profile() {
        let ex = social_example(3, 1);
        let config = SynthConfig {
            timeout: None,
            threads: 1,
            budget: Budget {
                max_candidates: Some(0),
                ..Budget::UNLIMITED
            },
            ..Default::default()
        };
        match learn_transformation(&[ex], &config) {
            Err(SynthError::BudgetExhausted(e)) => {
                assert_eq!(e.breach.resource, BudgetResource::Candidates);
                assert_eq!(e.breach.limit, 0);
                assert_eq!(e.profile.candidates_examined, 0);
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn dfa_state_budget_errs_before_search_starts() {
        let ex = social_example(3, 1);
        let config = SynthConfig {
            timeout: None,
            threads: 1,
            budget: Budget {
                max_dfa_states: Some(1),
                ..Budget::UNLIMITED
            },
            ..Default::default()
        };
        match learn_transformation(&[ex], &config) {
            Err(SynthError::BudgetExhausted(e)) => {
                assert_eq!(e.breach.resource, BudgetResource::DfaStates);
                assert_eq!(e.profile.candidates_examined, 0);
            }
            other => panic!("expected budget exhaustion, got {other:?}"),
        }
    }

    #[test]
    fn budget_breach_with_incumbent_returns_the_program() {
        // The projection task terminates naturally well before the candidate cap
        // (see `prunes_and_terminates_early_on_projection`), so the loop-top
        // budget check — not the `max_table_candidates` loop condition — is what
        // fires in the capped rerun.
        let ex = Example::new(
            social_network(3, 1),
            Table::from_rows(&["name"], &[&["Alice"], &["Bob"], &["Carol"]]),
        );
        let unlimited = SynthConfig {
            timeout: None,
            max_table_candidates: 10_000,
            threads: 1,
            ..Default::default()
        };
        let free = learn_transformation(std::slice::from_ref(&ex), &unlimited).unwrap();
        assert!(free.budget_breach.is_none());
        // Allow exactly as many pops as the natural run makes: the loop-top check
        // trips before the termination bound does, so the same incumbent comes
        // back carrying a breach.
        let total_pops = free.candidates_tried + free.profile.candidates_pruned;
        let capped = SynthConfig {
            budget: Budget {
                max_candidates: Some(total_pops as u64),
                ..Budget::UNLIMITED
            },
            ..unlimited
        };
        let cut = learn_transformation(std::slice::from_ref(&ex), &capped).unwrap();
        let breach = cut.budget_breach.expect("budget must have breached");
        assert_eq!(breach.resource, BudgetResource::Candidates);
        assert_eq!(breach.spent, total_pops as u64);
        assert_eq!(
            pretty::program(&cut.program),
            pretty::program(&free.program)
        );
        assert_eq!(cut.cost, free.cost);
    }

    #[test]
    fn budget_exhaustion_is_identical_across_thread_counts() {
        let ex = social_example(3, 1);
        let run = |threads: usize, max_candidates: u64| {
            let config = SynthConfig {
                timeout: None,
                threads,
                budget: Budget {
                    max_candidates: Some(max_candidates),
                    ..Budget::UNLIMITED
                },
                ..Default::default()
            };
            learn_transformation(std::slice::from_ref(&ex), &config)
        };
        for cap in [0, 1, 3, 7, 50] {
            let seq = run(1, cap);
            let par = run(4, cap);
            match (&seq, &par) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(pretty::program(&a.program), pretty::program(&b.program));
                    assert_eq!(a.cost, b.cost);
                    assert_eq!(a.candidates_tried, b.candidates_tried);
                    assert_eq!(a.budget_breach, b.budget_breach, "cap={cap}");
                }
                // Work counters must match exactly; profile *durations* are wall
                // clock and legitimately differ between runs.
                (Err(SynthError::BudgetExhausted(a)), Err(SynthError::BudgetExhausted(b))) => {
                    assert_eq!(a.breach, b.breach, "cap={cap}");
                    assert_eq!(
                        a.profile.candidates_examined, b.profile.candidates_examined,
                        "cap={cap}"
                    );
                    assert_eq!(
                        a.profile.candidates_pruned, b.profile.candidates_pruned,
                        "cap={cap}"
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "cap={cap}"),
                other => panic!("thread counts diverged at cap={cap}: {other:?}"),
            }
        }
    }

    #[test]
    fn prunes_and_terminates_early_on_projection() {
        // A 0-atom winner lets the search stop as soon as the frontier bound
        // catches up — far fewer candidates than the cap.
        let ex = Example::new(
            social_network(3, 1),
            Table::from_rows(&["name"], &[&["Alice"], &["Bob"], &["Carol"]]),
        );
        let config = SynthConfig {
            timeout: None,
            max_table_candidates: 10_000,
            threads: 1,
            ..Default::default()
        };
        let result = learn_transformation(&[ex], &config).unwrap();
        assert_eq!(result.cost.atoms, 0);
        assert!(
            result.candidates_tried + result.profile.candidates_pruned < 10_000,
            "search did not terminate early: {} tried, {} pruned",
            result.candidates_tried,
            result.profile.candidates_pruned
        );
    }
}
