//! # mitra-codegen — executable code generation from synthesized DSL programs
//!
//! The paper's architecture (Figure 14) pairs a language-agnostic synthesis core with
//! domain-specific plug-ins whose job is to translate the synthesized DSL program into
//! an executable artifact for the input format:
//!
//! * **Mitra-xml** emits XSLT stylesheets — implemented in [`xslt`];
//! * **Mitra-json** emits JavaScript programs — implemented in [`js`].
//!
//! The emitted source is text; this crate does not ship an XSLT or JavaScript runtime.
//! The benchmark harness measures the `LOC` statistic of Table 1 from these artifacts
//! and the integration tests check their structure (one loop per column extractor,
//! predicate guards pushed to the shallowest loop that binds their columns, correct
//! escaping).  Guard placement is derived from the static query plan in [`guards`].

mod guards;
pub mod js;
pub mod loc;
pub mod xslt;

pub use js::generate_javascript;
pub use loc::lines_of_code;
pub use xslt::generate_xslt;

/// Which plug-in produced an artifact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The XSLT (XML) back-end.
    Xslt,
    /// The JavaScript (JSON) back-end.
    JavaScript,
}

/// A generated program artifact.
#[derive(Debug, Clone)]
pub struct Artifact {
    /// Which back-end produced it.
    pub backend: Backend,
    /// The source text.
    pub source: String,
}

impl Artifact {
    /// Lines of code of the artifact, excluding blank lines and comments, matching the
    /// way the paper reports the `LOC` column of Table 1 (built-in helpers are not
    /// counted).
    pub fn loc(&self) -> usize {
        lines_of_code(&self.source)
    }
}

/// Generates an artifact for a program using the requested backend.
pub fn generate(program: &mitra_dsl::Program, backend: Backend) -> Artifact {
    let source = match backend {
        Backend::Xslt => generate_xslt(program),
        Backend::JavaScript => generate_javascript(program),
    };
    Artifact { backend, source }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_dsl::ast::{ColumnExtractor, Predicate, TableExtractor};
    use mitra_dsl::Program;

    fn tiny_program() -> Program {
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "item");
        Program::new(TableExtractor::new(vec![pi]), Predicate::True)
    }

    #[test]
    fn generate_dispatches_to_backends() {
        let p = tiny_program();
        let xslt = generate(&p, Backend::Xslt);
        let js = generate(&p, Backend::JavaScript);
        assert_eq!(xslt.backend, Backend::Xslt);
        assert_eq!(js.backend, Backend::JavaScript);
        assert!(xslt.source.contains("<xsl:stylesheet"));
        assert!(js.source.contains("function"));
    }

    #[test]
    fn loc_is_positive_for_any_program() {
        let p = tiny_program();
        assert!(generate(&p, Backend::Xslt).loc() > 0);
        assert!(generate(&p, Backend::JavaScript).loc() > 0);
    }
}
