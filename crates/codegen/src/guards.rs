//! Shared predicate-pushdown analysis for the code-generation back-ends.
//!
//! Both generators emit one nested loop per column (always in column order, which
//! is the order the paper's artifacts use) and formerly evaluated the entire
//! predicate inside the innermost loop.  [`guards_by_depth`] instead asks the
//! static query planner ([`mitra_synth::plan`]) how the predicate decomposes —
//! per-column filters, equi-join constraints, residual CNF clauses — and assigns
//! each fragment to the shallowest loop depth at which every referenced column is
//! bound.  The generated code then prunes tuples as early as the executor's plan
//! does instead of enumerating the full cross product first.

use mitra_dsl::ast::{CompareOp, Operand, Predicate, Program};
use mitra_synth::exec::plan;

/// For each loop depth `d` (the scope where `c0..cd` are bound), the predicates
/// that become checkable there.  The conjunction of all guards over all depths is
/// equivalent to the program's predicate; a `True` predicate yields no guards at
/// all, and `False` yields an (empty-disjunction) `False` guard at depth 0.
pub(crate) fn guards_by_depth(program: &Program) -> Vec<Vec<Predicate>> {
    let arity = program.arity();
    let mut guards: Vec<Vec<Predicate>> = vec![Vec::new(); arity.max(1)];
    let p = plan(program);
    for (col, filters) in p.column_filters.iter().enumerate() {
        guards[col].extend(filters.iter().cloned());
    }
    for j in &p.joins {
        guards[j.left_col.max(j.right_col)].push(Predicate::Compare {
            extractor: j.left_extractor.clone(),
            index: j.left_col,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: j.right_extractor.clone(),
                index: j.right_col,
            },
        });
    }
    for clause in &p.residual_clauses {
        let pred = Predicate::disjunction(clause.iter().cloned());
        let depth = pred.max_column_index().unwrap_or(0).min(guards.len() - 1);
        guards[depth].push(pred);
    }
    guards
}

#[cfg(test)]
mod tests {
    use super::*;
    use mitra_dsl::ast::{ColumnExtractor, NodeExtractor, TableExtractor};
    use mitra_dsl::Value;

    #[test]
    fn filters_land_on_their_column_and_joins_at_the_deeper_one() {
        use ColumnExtractor as CE;
        let cols = vec![
            CE::children(CE::Input, "a"),
            CE::children(CE::Input, "b"),
            CE::children(CE::Input, "c"),
        ];
        let filter = Predicate::Compare {
            extractor: NodeExtractor::Id,
            index: 0,
            op: CompareOp::Lt,
            rhs: Operand::Const(Value::int(3)),
        };
        let join = Predicate::Compare {
            extractor: NodeExtractor::Id,
            index: 1,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::Id,
                index: 2,
            },
        };
        let program = Program::new(TableExtractor::new(cols), Predicate::and(filter, join));
        let guards = guards_by_depth(&program);
        assert_eq!(guards[0].len(), 1);
        assert_eq!(guards[1].len(), 0);
        assert_eq!(guards[2].len(), 1);
    }

    #[test]
    fn true_predicate_has_no_guards() {
        let program = Program::new(
            TableExtractor::new(vec![ColumnExtractor::children(ColumnExtractor::Input, "x")]),
            Predicate::True,
        );
        assert!(guards_by_depth(&program).iter().all(Vec::is_empty));
    }

    #[test]
    fn false_predicate_guards_depth_zero() {
        let program = Program::new(
            TableExtractor::new(vec![ColumnExtractor::children(ColumnExtractor::Input, "x")]),
            Predicate::False,
        );
        let guards = guards_by_depth(&program);
        assert_eq!(guards[0], vec![Predicate::False]);
    }
}
