//! Lines-of-code metric for generated artifacts.
//!
//! Table 1 of the paper reports the size of the synthesized XSLT/JavaScript programs in
//! lines of code, "without including built-in functions ... or code for parsing the
//! input file".  We mirror that by counting non-blank, non-comment lines and excluding
//! the regions the generators mark as boilerplate.

/// Counts lines of code: blank lines, XML/JS comments and lines inside
/// `BOILERPLATE-BEGIN`/`BOILERPLATE-END` markers are excluded.
pub fn lines_of_code(source: &str) -> usize {
    let mut count = 0;
    let mut in_boilerplate = false;
    let mut in_block_comment = false;
    for line in source.lines() {
        let trimmed = line.trim();
        if trimmed.contains("BOILERPLATE-BEGIN") {
            in_boilerplate = true;
            continue;
        }
        if trimmed.contains("BOILERPLATE-END") {
            in_boilerplate = false;
            continue;
        }
        if in_boilerplate || trimmed.is_empty() {
            continue;
        }
        if in_block_comment {
            if trimmed.contains("*/") || trimmed.contains("-->") {
                in_block_comment = false;
            }
            continue;
        }
        if trimmed.starts_with("//") {
            continue;
        }
        if trimmed.starts_with("/*") {
            if !trimmed.contains("*/") {
                in_block_comment = true;
            }
            continue;
        }
        if trimmed.starts_with("<!--") {
            if !trimmed.contains("-->") {
                in_block_comment = true;
            }
            continue;
        }
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_plain_lines() {
        assert_eq!(lines_of_code("a\nb\nc"), 3);
    }

    #[test]
    fn skips_blank_and_comment_lines() {
        let src = "a\n\n// comment\nb\n/* block\nstill block\n*/\nc\n";
        assert_eq!(lines_of_code(src), 3);
    }

    #[test]
    fn skips_xml_comments() {
        let src = "<a/>\n<!-- note -->\n<!-- multi\nline -->\n<b/>\n";
        assert_eq!(lines_of_code(src), 2);
    }

    #[test]
    fn skips_boilerplate_regions() {
        let src = "x\n<!-- BOILERPLATE-BEGIN -->\nhelper1\nhelper2\n<!-- BOILERPLATE-END -->\ny\n";
        assert_eq!(lines_of_code(src), 2);
    }

    #[test]
    fn empty_source_is_zero() {
        assert_eq!(lines_of_code(""), 0);
        assert_eq!(lines_of_code("\n\n"), 0);
    }
}
