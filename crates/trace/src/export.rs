//! Trace exporters: Chrome trace-event JSON (Perfetto / `chrome://tracing`) and
//! folded stacks for flamegraph tooling.
//!
//! Both exporters work from a slice of [`Event`]s (usually [`crate::take_events`])
//! so callers control when the buffers drain, and both emit plain strings — the
//! crate stays dependency-free and does not touch the filesystem.

use crate::span::{Event, Phase};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Renders events as a Chrome trace-event JSON document (the `traceEvents` array
/// format), loadable in Perfetto and `chrome://tracing`.
///
/// Span begins/ends become `"B"`/`"E"` phase events with microsecond timestamps;
/// each thread ordinal additionally gets an `"M"` (metadata) `thread_name` event
/// so the timeline rows are labelled.  Span ids and parents ride along in `args`
/// for flow queries.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 256);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut tids: Vec<u32> = events.iter().map(|e| e.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            if tid == 0 {
                "main".to_string()
            } else {
                format!("worker-{tid}")
            }
        );
    }
    for ev in events {
        if !first {
            out.push(',');
        }
        first = false;
        let ph = match ev.phase {
            Phase::Begin => 'B',
            Phase::End => 'E',
        };
        // ts is fractional microseconds; emit ns/1000 with 3 decimals to keep
        // full precision without floating-point formatting surprises.
        let _ = write!(
            out,
            "{{\"ph\":\"{ph}\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":1,\"tid\":{},\
             \"ts\":{}.{:03}",
            escape_json(ev.name),
            escape_json(ev.cat),
            ev.tid,
            ev.ts_ns / 1000,
            ev.ts_ns % 1000,
        );
        if ev.phase == Phase::Begin {
            let _ = write!(out, ",\"args\":{{\"id\":{},\"parent\":{}", ev.id, ev.parent);
            if let Some(detail) = &ev.detail {
                let _ = write!(out, ",\"detail\":\"{}\"", escape_json(detail));
            }
            out.push_str("}}");
        } else {
            out.push('}');
        }
    }
    out.push_str("]}");
    out
}

/// Renders events as folded stacks (`root;child;leaf <self-microseconds>`), the
/// input format of flamegraph tooling.
///
/// Each thread's B/E sequence is replayed with an explicit stack; a frame's
/// *self* time is its wall time minus time spent in enclosed child spans, so the
/// folded counts sum to total traced wall time without double counting.
/// Unbalanced tails (spans still open when the buffer was drained) are dropped.
pub fn folded_stacks(events: &[Event]) -> String {
    // Replay per thread: Chrome-style B/E streams are only nested per tid.
    let mut per_tid: BTreeMap<u32, Vec<&Event>> = BTreeMap::new();
    for ev in events {
        per_tid.entry(ev.tid).or_default().push(ev);
    }

    struct Frame {
        name: String,
        start_ns: u64,
        child_ns: u64,
    }

    // Aggregate identical stacks across threads: stack path → self-time ns.
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for evs in per_tid.values() {
        let mut stack: Vec<Frame> = Vec::new();
        for ev in evs {
            match ev.phase {
                Phase::Begin => stack.push(Frame {
                    name: format!("{}::{}", ev.cat, ev.name),
                    start_ns: ev.ts_ns,
                    child_ns: 0,
                }),
                Phase::End => {
                    let Some(frame) = stack.pop() else { continue };
                    let total = ev.ts_ns.saturating_sub(frame.start_ns);
                    let self_ns = total.saturating_sub(frame.child_ns);
                    if let Some(parent) = stack.last_mut() {
                        parent.child_ns += total;
                    }
                    let mut path = String::new();
                    for f in &stack {
                        path.push_str(&f.name);
                        path.push(';');
                    }
                    path.push_str(&frame.name);
                    *folded.entry(path).or_insert(0) += self_ns;
                }
            }
        }
    }

    let mut out = String::new();
    for (path, self_ns) in folded {
        // Flamegraph counts are integers; microseconds keep short spans visible.
        let _ = writeln!(out, "{path} {}", self_ns / 1000);
    }
    out
}

/// Escapes a string for embedding inside a JSON string literal.
fn escape_json(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts_ns: u64, tid: u32, phase: Phase, name: &'static str, id: u64, parent: u64) -> Event {
        Event {
            ts_ns,
            tid,
            phase,
            cat: "test",
            name,
            id,
            parent,
            detail: None,
        }
    }

    #[test]
    fn chrome_trace_emits_balanced_events_and_metadata() {
        let events = vec![
            ev(1_000, 0, Phase::Begin, "outer", 1, 0),
            ev(2_000, 0, Phase::Begin, "inner", 2, 1),
            ev(3_500, 0, Phase::End, "inner", 2, 0),
            ev(4_000, 0, Phase::End, "outer", 1, 0),
        ];
        let json = chrome_trace(&events);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert!(
            json.contains("\"ts\":3.500"),
            "sub-µs precision kept: {json}"
        );
        assert!(json.contains("\"parent\":1"));
    }

    #[test]
    fn chrome_trace_escapes_detail() {
        let mut e = ev(0, 0, Phase::Begin, "span", 1, 0);
        e.detail = Some("a\"b\\c\nd".into());
        let json = chrome_trace(&[e]);
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn folded_stacks_compute_self_time() {
        let events = vec![
            ev(0, 0, Phase::Begin, "outer", 1, 0),
            ev(10_000, 0, Phase::Begin, "inner", 2, 1),
            ev(40_000, 0, Phase::End, "inner", 2, 0),
            ev(100_000, 0, Phase::End, "outer", 1, 0),
        ];
        let folded = folded_stacks(&events);
        // inner: 30 µs self; outer: 100 − 30 = 70 µs self.
        assert!(folded.contains("test::outer 70"), "{folded}");
        assert!(folded.contains("test::outer;test::inner 30"), "{folded}");
    }

    #[test]
    fn folded_stacks_aggregate_across_threads() {
        let events = vec![
            ev(0, 0, Phase::Begin, "work", 1, 0),
            ev(5_000, 0, Phase::End, "work", 1, 0),
            ev(0, 1, Phase::Begin, "work", 1 << 32, 0),
            ev(7_000, 1, Phase::End, "work", 1 << 32, 0),
        ];
        let folded = folded_stacks(&events);
        assert!(folded.contains("test::work 12"), "{folded}");
    }

    #[test]
    fn folded_stacks_drop_unbalanced_tail() {
        let events = vec![
            ev(0, 0, Phase::Begin, "closed", 1, 0),
            ev(2_000, 0, Phase::End, "closed", 1, 0),
            ev(3_000, 0, Phase::Begin, "open", 2, 0),
        ];
        let folded = folded_stacks(&events);
        assert!(folded.contains("test::closed 2"), "{folded}");
        assert!(!folded.contains("open"), "{folded}");
    }
}
