//! Span guards and the lock-sharded event buffer.
//!
//! Every thread owns one event buffer behind its own mutex; a thread only ever
//! locks *its own* buffer (uncontended except while an exporter drains), so span
//! recording scales with the worker count instead of serializing on one global
//! lock.  Buffers are registered in a global list so the exporters can collect
//! events from threads that have since exited (scoped pool workers are short-lived;
//! the `Arc` keeps their history alive).
//!
//! Span ids are thread-aware and hierarchical: each thread keeps a stack of live
//! spans, a new span's id is `(thread ordinal << 32) | per-thread sequence`, and its
//! parent id is the top of the stack (0 for a root span).  Begin/end events carry
//! the id and parent so exporters — and Perfetto's flow queries — can rebuild the
//! tree without guessing from nesting.

use crate::{duration_to_ns, events_enabled, now_ns};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::{Duration, Instant};

/// Whether an event opens or closes a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`ph: "B"` in the Chrome trace format).
    Begin,
    /// Span end (`ph: "E"`).
    End,
}

/// One buffered span event.
#[derive(Debug, Clone)]
pub struct Event {
    /// Nanoseconds since the process-wide trace epoch.
    pub ts_ns: u64,
    /// Ordinal of the recording thread (dense, assigned on first span).
    pub tid: u32,
    /// Begin or end.
    pub phase: Phase,
    /// Span category (pipeline layer: `ingest`, `synth`, `exec`, `migrate`, …).
    pub cat: &'static str,
    /// Span name within the category.
    pub name: &'static str,
    /// Hierarchical span id: `(tid << 32) | per-thread sequence`.
    pub id: u64,
    /// Id of the enclosing span on the same thread; 0 for a root span.
    pub parent: u64,
    /// Optional free-form detail (e.g. a table name), only on begin events.
    pub detail: Option<Box<str>>,
}

/// One thread's shared event buffer (the registry holds a second `Arc` so the
/// events survive the thread's exit).
type EventBuffer = Arc<Mutex<Vec<Event>>>;

/// The per-thread event shard: its dense thread ordinal plus the buffer.
///
/// All shard/buffer locks recover from poisoning (`PoisonError::into_inner`):
/// buffers are append-only `Vec<Event>` (a push cannot be observed half-done
/// through the guard) and tracing must stay usable while the pool reports a
/// caught worker panic — a poisoned trace lock must not cascade the failure.
struct Shard {
    tid: u32,
    events: EventBuffer,
}

/// Global registry of every thread's buffer (alive or exited).
static SHARDS: OnceLock<Mutex<Vec<EventBuffer>>> = OnceLock::new();
/// Dense thread-ordinal allocator.
static NEXT_TID: AtomicU32 = AtomicU32::new(0);

fn shards() -> &'static Mutex<Vec<EventBuffer>> {
    SHARDS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static SHARD: Shard = {
        let tid = NEXT_TID.fetch_add(1, Relaxed);
        let events = Arc::new(Mutex::new(Vec::new()));
        shards().lock().unwrap_or_else(PoisonError::into_inner).push(Arc::clone(&events));
        Shard { tid, events }
    };
    /// Stack of live span ids on this thread (the hierarchy source).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Per-thread span sequence for id assignment.
    static SPAN_SEQ: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
}

fn push_event(ev: Event) {
    SHARD.with(|s| {
        s.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(ev)
    });
}

fn current_tid() -> u32 {
    SHARD.with(|s| s.tid)
}

/// RAII guard for one span.
///
/// The guard always measures elapsed wall time (via [`SpanGuard::elapsed`] or an
/// attached accumulator); begin/end events are recorded only when the mode is
/// [`crate::TraceMode::Full`] *at span creation* — the end event pairs with the
/// begin even if the mode flips mid-span, so per-thread event streams stay
/// balanced.
pub struct SpanGuard<'a> {
    start: Instant,
    cat: &'static str,
    name: &'static str,
    /// Set when a begin event was recorded (mode was Full at creation).
    recorded: Option<RecordedSpan>,
    /// Optional accumulator receiving the elapsed nanoseconds on drop.
    sink: Option<&'a AtomicU64>,
}

struct RecordedSpan {
    id: u64,
    tid: u32,
}

fn open_span(cat: &'static str, name: &'static str, detail: Option<Box<str>>) -> RecordedSpan {
    let tid = current_tid();
    let seq = SPAN_SEQ.with(|s| {
        let v = s.get().wrapping_add(1);
        s.set(v);
        v
    });
    let id = (u64::from(tid) << 32) | u64::from(seq);
    let parent = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    push_event(Event {
        ts_ns: now_ns(),
        tid,
        phase: Phase::Begin,
        cat,
        name,
        id,
        parent,
        detail,
    });
    RecordedSpan { id, tid }
}

impl<'a> SpanGuard<'a> {
    fn new(
        cat: &'static str,
        name: &'static str,
        detail: Option<Box<str>>,
        sink: Option<&'a AtomicU64>,
    ) -> SpanGuard<'a> {
        let recorded = events_enabled().then(|| open_span(cat, name, detail));
        SpanGuard {
            start: Instant::now(),
            cat,
            name,
            recorded,
            sink,
        }
    }

    /// Wall time since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(sink) = self.sink {
            sink.fetch_add(duration_to_ns(self.start.elapsed()), Relaxed);
        }
        if let Some(rec) = self.recorded.take() {
            SPAN_STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                // Guards are strictly nested per thread (RAII), so the top is ours.
                if stack.last() == Some(&rec.id) {
                    stack.pop();
                } else {
                    // Out-of-order drop (e.g. mem::forget games): drop the id
                    // wherever it is rather than corrupting the stack.
                    stack.retain(|&id| id != rec.id);
                }
            });
            push_event(Event {
                ts_ns: now_ns(),
                tid: rec.tid,
                phase: Phase::End,
                cat: self.cat,
                name: self.name,
                id: rec.id,
                parent: 0,
                detail: None,
            });
        }
    }
}

/// Opens a span; close it by dropping the guard.
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard<'static> {
    SpanGuard::new(cat, name, None, None)
}

/// Opens a span that additionally adds its elapsed nanoseconds to `sink` on drop —
/// the bridge between spans and the derived phase profiles ([`SynthProfile`]-style
/// accumulators are plain `AtomicU64` nanosecond cells).
///
/// [`SynthProfile`]: https://docs.rs/mitra-synth
pub fn span_acc<'a>(cat: &'static str, name: &'static str, sink: &'a AtomicU64) -> SpanGuard<'a> {
    SpanGuard::new(cat, name, None, Some(sink))
}

/// Opens a span with a lazily computed detail string (evaluated only when events
/// are being recorded, so the allocation never lands on the summary/off paths).
pub fn span_detail<F>(cat: &'static str, name: &'static str, detail: F) -> SpanGuard<'static>
where
    F: FnOnce() -> String,
{
    let detail = events_enabled().then(|| detail().into_boxed_str());
    SpanGuard::new(cat, name, detail, None)
}

/// Takes every buffered event out of all thread shards, ordered by timestamp
/// (stable, so each thread's own order is preserved).
pub fn take_events() -> Vec<Event> {
    collect_events(true)
}

/// Copies every buffered event without clearing the buffers.
pub fn events_snapshot() -> Vec<Event> {
    collect_events(false)
}

/// Clears all buffered events.
pub fn clear_events() {
    let _ = collect_events(true);
}

fn collect_events(drain: bool) -> Vec<Event> {
    let shards = shards().lock().unwrap_or_else(PoisonError::into_inner);
    let mut all = Vec::new();
    for shard in shards.iter() {
        let mut buf = shard.lock().unwrap_or_else(PoisonError::into_inner);
        if drain {
            all.append(&mut buf);
        } else {
            all.extend(buf.iter().cloned());
        }
    }
    drop(shards);
    all.sort_by_key(|e| e.ts_ns);
    all
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::{set_mode, TraceMode};

    /// The crate's tests share one process-global mode; serialize the ones that
    /// flip it.
    pub(crate) fn mode_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn spans_record_balanced_events_in_full_mode() {
        let _guard = mode_lock();
        set_mode(TraceMode::Full);
        clear_events();
        {
            let _outer = span("test", "outer");
            let _inner = span("test", "inner");
        }
        let events = take_events();
        set_mode(TraceMode::Summary);
        let ours: Vec<&Event> = events.iter().filter(|e| e.cat == "test").collect();
        assert_eq!(ours.len(), 4);
        assert_eq!(ours[0].phase, Phase::Begin);
        assert_eq!(ours[0].name, "outer");
        assert_eq!(ours[1].name, "inner");
        // inner's parent is outer; outer is a root span.
        assert_eq!(ours[1].parent, ours[0].id);
        assert_eq!(ours[0].parent, 0);
        // Ends close in reverse order with matching ids.
        assert_eq!(ours[2].phase, Phase::End);
        assert_eq!(ours[2].id, ours[1].id);
        assert_eq!(ours[3].id, ours[0].id);
        // Timestamps are monotone within the thread.
        for w in ours.windows(2) {
            assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }

    #[test]
    fn off_and_summary_modes_record_no_events() {
        let _guard = mode_lock();
        for m in [TraceMode::Off, TraceMode::Summary] {
            set_mode(m);
            clear_events();
            let g = span("quiet", "nothing");
            drop(g);
            assert!(
                take_events().iter().all(|e| e.cat != "quiet"),
                "events recorded in mode {m:?}"
            );
        }
        set_mode(TraceMode::Summary);
    }

    #[test]
    fn span_acc_accumulates_regardless_of_mode() {
        let _guard = mode_lock();
        set_mode(TraceMode::Off);
        let sink = AtomicU64::new(0);
        {
            let _s = span_acc("test", "timed", &sink);
            std::thread::sleep(Duration::from_millis(2));
        }
        set_mode(TraceMode::Summary);
        assert!(sink.load(Relaxed) >= 1_000_000, "sink not fed in Off mode");
    }

    #[test]
    fn detail_is_lazy() {
        let _guard = mode_lock();
        set_mode(TraceMode::Summary);
        let mut called = false;
        {
            let _s = span_detail("test", "lazy", || {
                called = true;
                String::from("never")
            });
        }
        assert!(!called, "detail closure ran outside Full mode");
    }

    #[test]
    fn worker_thread_events_are_collected() {
        let _guard = mode_lock();
        set_mode(TraceMode::Full);
        clear_events();
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _s = span("test-worker", "on-worker");
            });
        });
        let events = take_events();
        set_mode(TraceMode::Summary);
        let ours: Vec<&Event> = events.iter().filter(|e| e.cat == "test-worker").collect();
        assert_eq!(ours.len(), 2, "worker events lost after thread exit");
        assert_eq!(ours[0].tid, ours[1].tid);
    }
}
