//! Deterministic fault injection and panic capture for robustness testing.
//!
//! The fuzz harness and the robustness suite need to kill one specific unit of
//! work — one pool slot, one candidate validation, one table synthesis — and then
//! assert that the rest of the pipeline degrades *identically* at every thread
//! count.  A wall-clock or arrival-order trigger would fire on a
//! scheduling-dependent victim, so injection here is **index-keyed**: every
//! instrumented site passes the canonical index of its unit of work (slot index,
//! candidate pop index, table task index), and the fault fires iff that index
//! matches the configured one.  Which logical unit dies is therefore a pure
//! function of the fault spec, never of scheduling.
//!
//! The spec comes from the `MITRA_FAULT` environment variable
//! (`panic:<site>:<nth>`, e.g. `panic:synth.validate:3`) resolved on first use,
//! or programmatically via [`set_fault`] (tests).  Instrumented sites:
//!
//! | site             | index                                            |
//! |------------------|--------------------------------------------------|
//! | `pool.slot`      | item index inside one `parallel_map` call        |
//! | `synth.validate` | global candidate pop index of the table search   |
//! | `migrate.table`  | task index inside one `MigrationPlan::run`       |
//! | `corpus.shard`   | shard index of one corpus-service run            |
//! | `corpus.doc`     | document index within the corpus                 |
//!
//! Panic capture: when `mitra-pool` catches a worker panic it calls
//! [`record_panic`]; the payload message and a backtrace captured at the unwind
//! boundary are kept in a bounded in-process log readable via [`take_panics`] /
//! [`panics_snapshot`], alongside the `pool.panics_caught` counter.
//!
//! This module is compiled unconditionally (it is behaviour under test, not
//! telemetry), and the unarmed fast path is one relaxed atomic load.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Mutex, Once, PoisonError};

/// A parsed `MITRA_FAULT` specification: panic at the `nth` canonical unit of
/// work of `site`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultSpec {
    /// Instrumented site name (e.g. `synth.validate`).
    pub site: String,
    /// Canonical index at which the fault fires.
    pub nth: u64,
}

impl FaultSpec {
    /// Parses `panic:<site>:<nth>`; `None` on anything else.
    pub fn parse(text: &str) -> Option<FaultSpec> {
        let rest = text.trim().strip_prefix("panic:")?;
        let (site, nth) = rest.rsplit_once(':')?;
        if site.is_empty() {
            return None;
        }
        Some(FaultSpec {
            site: site.to_string(),
            nth: nth.trim().parse().ok()?,
        })
    }
}

/// Fast-path arm flag: false ⇒ no fault installed, [`hit`] returns immediately.
static ARMED: AtomicBool = AtomicBool::new(false);
static SPEC: Mutex<Option<FaultSpec>> = Mutex::new(None);
static ENV_INIT: Once = Once::new();

fn install(spec: Option<FaultSpec>) {
    let armed = spec.is_some();
    *SPEC.lock().unwrap_or_else(PoisonError::into_inner) = spec;
    ARMED.store(armed, Relaxed);
}

fn init_from_env() {
    ENV_INIT.call_once(|| {
        if let Some(spec) = std::env::var("MITRA_FAULT")
            .ok()
            .and_then(|v| FaultSpec::parse(&v))
        {
            install(Some(spec));
        }
    });
}

/// Installs (or with `None` clears) the process-global fault, overriding any
/// `MITRA_FAULT` environment setting.  Tests that inject faults in-process must
/// serialize on their own lock: the spec is global.
pub fn set_fault(spec: Option<FaultSpec>) {
    // Mark the environment as consumed so a later `hit` cannot re-arm from it.
    ENV_INIT.call_once(|| {});
    install(spec);
}

/// The currently installed fault, if any (resolving `MITRA_FAULT` on first use).
pub fn current_fault() -> Option<FaultSpec> {
    init_from_env();
    SPEC.lock().unwrap_or_else(PoisonError::into_inner).clone()
}

/// Fault check for one canonical unit of work: panics iff a fault is installed
/// for `site` with `nth == index`.  The panic message is
/// `injected fault: <site>#<index>`.
#[inline]
pub fn hit(site: &str, index: u64) {
    if !ARMED.load(Relaxed) {
        init_from_env();
        if !ARMED.load(Relaxed) {
            return;
        }
    }
    let matched = {
        let guard = SPEC.lock().unwrap_or_else(PoisonError::into_inner);
        matches!(guard.as_ref(), Some(spec) if spec.site == site && spec.nth == index)
    };
    if matched {
        panic!("injected fault: {site}#{index}");
    }
}

/// One caught panic: where it was caught, what the payload said, and a backtrace
/// captured at the unwind boundary (honours `RUST_BACKTRACE`).
#[derive(Debug, Clone)]
pub struct PanicRecord {
    /// Catch-site context (e.g. `pool.slot` plus the slot index).
    pub context: String,
    /// Stringified panic payload.
    pub message: String,
    /// Backtrace captured where the panic was caught.
    pub backtrace: String,
}

/// Bounded log of caught panics (oldest dropped past [`MAX_PANIC_RECORDS`]).
static PANICS: Mutex<Vec<PanicRecord>> = Mutex::new(Vec::new());

/// Upper bound on retained panic records.
pub const MAX_PANIC_RECORDS: usize = 128;

/// Records one caught panic into the bounded in-process log.
pub fn record_panic(context: String, message: String) {
    let backtrace = std::backtrace::Backtrace::capture().to_string();
    let mut log = PANICS.lock().unwrap_or_else(PoisonError::into_inner);
    if log.len() >= MAX_PANIC_RECORDS {
        log.remove(0);
    }
    log.push(PanicRecord {
        context,
        message,
        backtrace,
    });
}

/// Drains and returns every recorded panic.
pub fn take_panics() -> Vec<PanicRecord> {
    std::mem::take(&mut PANICS.lock().unwrap_or_else(PoisonError::into_inner))
}

/// A copy of the recorded panics, leaving the log in place.
pub fn panics_snapshot() -> Vec<PanicRecord> {
    PANICS
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parsing() {
        assert_eq!(
            FaultSpec::parse("panic:pool.slot:7"),
            Some(FaultSpec {
                site: "pool.slot".into(),
                nth: 7
            })
        );
        assert_eq!(
            FaultSpec::parse(" panic:synth.validate:0 "),
            Some(FaultSpec {
                site: "synth.validate".into(),
                nth: 0
            })
        );
        assert_eq!(FaultSpec::parse("panic::3"), None);
        assert_eq!(FaultSpec::parse("panic:site:"), None);
        assert_eq!(FaultSpec::parse("abort:site:1"), None);
        assert_eq!(FaultSpec::parse(""), None);
    }

    #[test]
    fn hit_fires_only_on_matching_site_and_index() {
        // The spec is process-global; this test owns it for its duration because
        // the trace crate's own tests are the only in-crate users.
        set_fault(Some(FaultSpec {
            site: "test.site".into(),
            nth: 2,
        }));
        hit("test.site", 0);
        hit("test.site", 1);
        hit("other.site", 2);
        let caught = std::panic::catch_unwind(|| hit("test.site", 2));
        set_fault(None);
        let payload = caught.expect_err("index 2 must fire");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "injected fault: test.site#2");
        // Cleared: nothing fires any more.
        hit("test.site", 2);
    }

    #[test]
    fn panic_log_is_bounded_and_drainable() {
        let _ = take_panics();
        record_panic("ctx".into(), "boom".into());
        let snap = panics_snapshot();
        assert!(snap
            .iter()
            .any(|p| p.message == "boom" && p.context == "ctx"));
        let drained = take_panics();
        assert!(drained.iter().any(|p| p.message == "boom"));
        assert!(take_panics().is_empty());
    }
}
