//! No-op mirror of the tracing API, compiled when the `trace` cargo feature is
//! disabled.
//!
//! Every public item keeps its signature so instrumented crates build unchanged;
//! metrics and events vanish, the exporters return empty documents.  Span guards
//! still measure elapsed wall time and feed their accumulator — phase profiles
//! ([`SynthProfile`]-style) are functional outputs, not telemetry, and must stay
//! populated even in a trace-less build.
//!
//! [`SynthProfile`]: https://docs.rs/mitra-synth

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::{Duration, Instant};

/// Whether an event opens or closes a span (never constructed without `trace`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span begin.
    Begin,
    /// Span end.
    End,
}

/// One buffered span event (never constructed without `trace`).
#[derive(Debug, Clone)]
pub struct Event {
    /// Nanoseconds since the process-wide trace epoch.
    pub ts_ns: u64,
    /// Ordinal of the recording thread.
    pub tid: u32,
    /// Begin or end.
    pub phase: Phase,
    /// Span category.
    pub cat: &'static str,
    /// Span name.
    pub name: &'static str,
    /// Hierarchical span id.
    pub id: u64,
    /// Enclosing span id (0 for roots).
    pub parent: u64,
    /// Optional free-form detail.
    pub detail: Option<Box<str>>,
}

/// RAII guard for one span: measures elapsed time, records nothing.
pub struct SpanGuard<'a> {
    start: Instant,
    sink: Option<&'a AtomicU64>,
}

impl SpanGuard<'_> {
    /// Wall time since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some(sink) = self.sink {
            sink.fetch_add(crate::duration_to_ns(self.start.elapsed()), Relaxed);
        }
    }
}

/// Opens a (non-recording) span.
pub fn span(_cat: &'static str, _name: &'static str) -> SpanGuard<'static> {
    SpanGuard {
        start: Instant::now(),
        sink: None,
    }
}

/// Opens a span that adds its elapsed nanoseconds to `sink` on drop.
pub fn span_acc<'a>(_cat: &'static str, _name: &'static str, sink: &'a AtomicU64) -> SpanGuard<'a> {
    SpanGuard {
        start: Instant::now(),
        sink: Some(sink),
    }
}

/// Opens a (non-recording) span; the detail closure is never evaluated.
pub fn span_detail<F>(_cat: &'static str, _name: &'static str, _detail: F) -> SpanGuard<'static>
where
    F: FnOnce() -> String,
{
    SpanGuard {
        start: Instant::now(),
        sink: None,
    }
}

/// Always empty.
pub fn take_events() -> Vec<Event> {
    Vec::new()
}

/// Always empty.
pub fn events_snapshot() -> Vec<Event> {
    Vec::new()
}

/// No-op.
pub fn clear_events() {}

/// A counter whose increments vanish.
#[derive(Debug, Default)]
pub struct Counter;

impl Counter {
    /// No-op.
    #[inline]
    pub fn add(&self, _n: u64) {}

    /// Always 0.
    pub fn get(&self) -> u64 {
        0
    }
}

/// A histogram whose observations vanish.
#[derive(Debug, Default)]
pub struct Histogram;

impl Histogram {
    /// No-op.
    #[inline]
    pub fn observe(&self, _v: u64) {}

    /// Always empty.
    pub fn get(&self) -> HistogramSnapshot {
        HistogramSnapshot::default()
    }
}

/// Point-in-time view of one histogram.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value.
    pub min: u64,
    /// Largest observed value.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Returns the shared no-op counter.
pub fn counter(_name: &'static str) -> &'static Counter {
    static NOOP: Counter = Counter;
    &NOOP
}

/// Returns the shared no-op histogram.
pub fn histogram(_name: &'static str) -> &'static Histogram {
    static NOOP: Histogram = Histogram;
    &NOOP
}

/// Upper bound on tracked pool worker slots (mirrors the real value).
pub const MAX_WORKER_SLOTS: usize = 64;

/// No-op.
pub fn record_worker(_slot: usize, _busy_ns: u64, _idle_ns: u64, _pulls: u64) {}

/// Point-in-time view of one pool worker slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Worker slot index.
    pub slot: usize,
    /// Cumulative busy nanoseconds.
    pub busy_ns: u64,
    /// Cumulative idle nanoseconds.
    pub idle_ns: u64,
    /// Number of queue pulls.
    pub pulls: u64,
}

/// Point-in-time view of the (always empty) metrics registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value.
    pub counters: Vec<(&'static str, u64)>,
    /// Histogram name → state.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
    /// Pool worker slots.
    pub workers: Vec<WorkerSnapshot>,
}

impl MetricsSnapshot {
    /// Always empty.
    pub fn delta(&self, _earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot::default()
    }

    /// Always 0.
    pub fn counter(&self, _name: &str) -> u64 {
        0
    }

    /// Always `None`.
    pub fn histogram(&self, _name: &str) -> Option<HistogramSnapshot> {
        None
    }
}

/// Always empty.
pub fn snapshot() -> MetricsSnapshot {
    MetricsSnapshot::default()
}

/// Exporters over the (always empty) event buffer.
pub mod export {
    use super::Event;

    /// An empty but valid Chrome trace document.
    pub fn chrome_trace(_events: &[Event]) -> String {
        String::from("{\"traceEvents\":[]}")
    }

    /// An empty folded-stack document.
    pub fn folded_stacks(_events: &[Event]) -> String {
        String::new()
    }
}
