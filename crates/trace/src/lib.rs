//! # mitra-trace — structured spans, metrics and trace export for the Mitra pipeline
//!
//! A dependency-free observability layer (the build environment is offline, so this
//! is hand-rolled in the spirit of `shims/`, not a wrapper over the `tracing` or
//! `metrics` crates).  Three pieces:
//!
//! * **Spans** ([`span`], [`span_acc`], [`span_detail`]) — RAII guards with
//!   thread-aware hierarchical ids.  Every guard measures its elapsed time
//!   unconditionally (the synthesis profile is a functional output built from these
//!   durations); in [`TraceMode::Full`] it additionally records begin/end events
//!   into a lock-sharded per-thread buffer for the exporters.
//! * **Metrics** ([`counter`], [`histogram`], [`record_worker`]) — a process-global
//!   registry of named counters and histograms plus fixed per-worker slots for the
//!   `mitra-pool` busy/idle/pull statistics.  Increments are relaxed atomics behind
//!   a single mode check, cheap enough to leave on; [`snapshot`] reads everything,
//!   and [`MetricsSnapshot::delta`] isolates one measured region.
//! * **Exporters** ([`export::chrome_trace`], [`export::folded_stacks`]) — Chrome
//!   trace-event JSON loadable in Perfetto / `chrome://tracing`, and folded stacks
//!   for flamegraph tooling.
//!
//! The runtime switch is [`TraceMode`], resolved from the `MITRA_TRACE` environment
//! variable (`off` | `summary` | `full`, default `summary`) on first use and
//! overridable with [`set_mode`].  `off` disables metric recording and event
//! collection; `summary` records metrics only; `full` additionally buffers span
//! events.  Tracing never influences results — only the `off`/`summary`/`full`
//! distinction of *what gets recorded* changes.
//!
//! The whole layer compiles out behind the `trace` cargo feature (on by default):
//! with `--no-default-features`, metrics and events become no-ops and the exporters
//! return empty documents, while span guards keep measuring elapsed time so profile
//! outputs stay populated.

use std::sync::atomic::{AtomicU8, Ordering::Relaxed};
use std::time::{Duration, Instant};

#[cfg(feature = "trace")]
pub mod export;
pub mod fault;
#[cfg(feature = "trace")]
mod metrics;
#[cfg(feature = "trace")]
mod span;

#[cfg(feature = "trace")]
pub use metrics::{
    counter, histogram, record_worker, snapshot, Counter, Histogram, HistogramSnapshot,
    MetricsSnapshot, WorkerSnapshot, MAX_WORKER_SLOTS,
};
#[cfg(feature = "trace")]
pub use span::{
    clear_events, events_snapshot, span, span_acc, span_detail, take_events, Event, Phase,
    SpanGuard,
};

#[cfg(not(feature = "trace"))]
mod noop;
#[cfg(not(feature = "trace"))]
pub use noop::*;

/// How much the tracing layer records at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing: metrics do not count, spans do not buffer events.
    Off,
    /// Record metrics (counters, histograms, pool worker stats) but no span events.
    Summary,
    /// Record metrics *and* buffer span begin/end events for the exporters.
    Full,
}

impl TraceMode {
    /// Parses a `MITRA_TRACE` value (case-insensitive); `None` on anything else.
    pub fn parse(text: &str) -> Option<TraceMode> {
        match text.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "none" => Some(TraceMode::Off),
            "summary" | "1" | "on" => Some(TraceMode::Summary),
            "full" | "2" => Some(TraceMode::Full),
            _ => None,
        }
    }
}

/// Mode cell: 255 = uninitialized (resolve from the environment on first read).
static MODE: AtomicU8 = AtomicU8::new(255);

fn mode_to_u8(m: TraceMode) -> u8 {
    match m {
        TraceMode::Off => 0,
        TraceMode::Summary => 1,
        TraceMode::Full => 2,
    }
}

/// The current trace mode, resolving `MITRA_TRACE` (default [`TraceMode::Summary`])
/// on first use.
pub fn mode() -> TraceMode {
    match MODE.load(Relaxed) {
        0 => TraceMode::Off,
        1 => TraceMode::Summary,
        2 => TraceMode::Full,
        _ => {
            let resolved = std::env::var("MITRA_TRACE")
                .ok()
                .and_then(|v| TraceMode::parse(&v))
                .unwrap_or(TraceMode::Summary);
            MODE.store(mode_to_u8(resolved), Relaxed);
            resolved
        }
    }
}

/// Overrides the trace mode for the whole process (e.g. from `--trace-out`, or from
/// tests that must not depend on the environment).
pub fn set_mode(m: TraceMode) {
    MODE.store(mode_to_u8(m), Relaxed);
}

/// True when metrics should be recorded (mode is `summary` or `full`).
#[inline]
pub fn enabled() -> bool {
    mode() != TraceMode::Off
}

/// True when span events should be buffered (mode is `full`).
#[inline]
pub fn events_enabled() -> bool {
    mode() == TraceMode::Full
}

/// Shared monotonic epoch: every event timestamp is nanoseconds since the first
/// call, so timestamps are monotone across the whole process.
fn epoch() -> &'static Instant {
    static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process-wide trace epoch.
pub fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Saturating conversion from a [`Duration`] to whole nanoseconds.
pub fn duration_to_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Increments a named counter by `n` through a per-call-site cached handle.
///
/// Expands to a relaxed atomic add behind one mode check; the registry lookup runs
/// once per call site.
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $n:expr) => {{
        static __MITRA_TRACE_C: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        __MITRA_TRACE_C
            .get_or_init(|| $crate::counter($name))
            .add($n as u64);
    }};
}

/// Records one observation into a named histogram through a per-call-site cached
/// handle.
#[macro_export]
macro_rules! hist_observe {
    ($name:expr, $v:expr) => {{
        static __MITRA_TRACE_H: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        __MITRA_TRACE_H
            .get_or_init(|| $crate::histogram($name))
            .observe($v as u64);
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parsing() {
        assert_eq!(TraceMode::parse("off"), Some(TraceMode::Off));
        assert_eq!(TraceMode::parse("SUMMARY"), Some(TraceMode::Summary));
        assert_eq!(TraceMode::parse(" full "), Some(TraceMode::Full));
        assert_eq!(TraceMode::parse("verbose"), None);
    }

    #[test]
    fn set_mode_round_trips() {
        let before = mode();
        for m in [TraceMode::Off, TraceMode::Full, TraceMode::Summary] {
            set_mode(m);
            assert_eq!(mode(), m);
        }
        set_mode(before);
    }

    #[test]
    fn epoch_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
