//! The metrics registry: named counters, named histograms, and fixed per-worker
//! slots for the `mitra-pool` busy/idle statistics.
//!
//! Counters and histograms are registered lazily by name and leaked (`&'static`),
//! so hot paths hold a raw handle and pay only a relaxed atomic add behind one
//! mode check.  Names are `&'static str` dot-paths (`cache.column_nodes.hit`,
//! `synth.frontier_depth`, …) — the full taxonomy is documented in DESIGN.md §9.
//!
//! [`snapshot`] reads the whole registry into a [`MetricsSnapshot`];
//! [`MetricsSnapshot::delta`] subtracts an earlier snapshot so a caller can
//! attribute metrics to one measured region (e.g. one bench dataset) even though
//! the registry is process-global and cumulative.

use crate::enabled;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, OnceLock, PoisonError};

/// A monotonically increasing named counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Adds `n`; a no-op when the trace mode is `off`.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A named histogram tracking count / sum / min / max of `u64` observations.
///
/// Full percentile sketches are overkill for the quantities we watch (frontier
/// depth, batch sizes); count+sum+extrema answer the "how deep does the heap get,
/// on average and at worst" questions the ISSUE asks for, with four relaxed
/// atomics and no locking.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation; a no-op when the trace mode is `off`.
    #[inline]
    pub fn observe(&self, v: u64) {
        if !enabled() {
            return;
        }
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.min.fetch_min(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Reads the current state.
    pub fn get(&self) -> HistogramSnapshot {
        let count = self.count.load(Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Relaxed)
            },
            max: self.max.load(Relaxed),
        }
    }
}

/// Point-in-time view of one [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value (0 when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Registries: name → leaked metric.  `BTreeMap` keeps snapshots deterministically
/// ordered, which keeps `--json` output byte-stable run to run.
///
/// Lock poisoning is recovered (`PoisonError::into_inner`) rather than propagated:
/// the maps are append-only and each entry is inserted with one `entry().or_insert`
/// call, so a panic elsewhere while the guard was held cannot expose a half-written
/// entry — and metrics must keep working while a caught worker panic is reported.
static COUNTERS: OnceLock<Mutex<BTreeMap<&'static str, &'static Counter>>> = OnceLock::new();
static HISTOGRAMS: OnceLock<Mutex<BTreeMap<&'static str, &'static Histogram>>> = OnceLock::new();

/// Returns (registering on first use) the counter named `name`.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut map = COUNTERS
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::default())))
}

/// Returns (registering on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut map = HISTOGRAMS
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    map.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::default())))
}

/// Upper bound on tracked pool worker slots.  `mitra-pool` clamps thread counts
/// well below this; slots beyond the bound fold into the last slot rather than
/// being dropped.
pub const MAX_WORKER_SLOTS: usize = 64;

/// One pool worker slot: cumulative busy/idle nanoseconds and queue pulls.
#[derive(Debug)]
struct WorkerSlot {
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
    pulls: AtomicU64,
}

static WORKERS: [WorkerSlot; MAX_WORKER_SLOTS] = {
    #[allow(clippy::declare_interior_mutable_const)]
    const SLOT: WorkerSlot = WorkerSlot {
        busy_ns: AtomicU64::new(0),
        idle_ns: AtomicU64::new(0),
        pulls: AtomicU64::new(0),
    };
    [SLOT; MAX_WORKER_SLOTS]
};

/// Accumulates pool worker statistics into `slot` (clamped to
/// [`MAX_WORKER_SLOTS`]`- 1`).  A no-op when the trace mode is `off`.
///
/// The inline (non-spawning) `parallel_map` path reports under slot 0, so
/// single-threaded runs still show utilization.
pub fn record_worker(slot: usize, busy_ns: u64, idle_ns: u64, pulls: u64) {
    if !enabled() {
        return;
    }
    let w = &WORKERS[slot.min(MAX_WORKER_SLOTS - 1)];
    w.busy_ns.fetch_add(busy_ns, Relaxed);
    w.idle_ns.fetch_add(idle_ns, Relaxed);
    w.pulls.fetch_add(pulls, Relaxed);
}

/// Point-in-time view of one pool worker slot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSnapshot {
    /// Worker slot index.
    pub slot: usize,
    /// Cumulative nanoseconds spent executing items.
    pub busy_ns: u64,
    /// Cumulative nanoseconds spent waiting between items.
    pub idle_ns: u64,
    /// Number of queue pulls (items claimed).
    pub pulls: u64,
}

/// Point-in-time view of the whole metrics registry.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value, sorted by name.
    pub counters: Vec<(&'static str, u64)>,
    /// Histogram name → state, sorted by name.
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
    /// Pool worker slots with any activity, sorted by slot.
    pub workers: Vec<WorkerSnapshot>,
}

/// Reads every counter, histogram and worker slot.
pub fn snapshot() -> MetricsSnapshot {
    let counters = COUNTERS
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(&name, c)| (name, c.get()))
        .collect();
    let histograms = HISTOGRAMS
        .get_or_init(|| Mutex::new(BTreeMap::new()))
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .iter()
        .map(|(&name, h)| (name, h.get()))
        .collect();
    let workers = WORKERS
        .iter()
        .enumerate()
        .map(|(slot, w)| WorkerSnapshot {
            slot,
            busy_ns: w.busy_ns.load(Relaxed),
            idle_ns: w.idle_ns.load(Relaxed),
            pulls: w.pulls.load(Relaxed),
        })
        .filter(|w| w.busy_ns > 0 || w.idle_ns > 0 || w.pulls > 0)
        .collect();
    MetricsSnapshot {
        counters,
        histograms,
        workers,
    }
}

impl MetricsSnapshot {
    /// Subtracts `earlier` from `self`, attributing cumulative metrics to the
    /// region between the two snapshots.  Histogram min/max cannot be subtracted,
    /// so the delta keeps the later extrema (they still bound the region).
    /// Entries whose delta is entirely zero are dropped.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let prior_c: BTreeMap<&'static str, u64> = earlier.counters.iter().copied().collect();
        let counters = self
            .counters
            .iter()
            .map(|&(name, v)| (name, v - prior_c.get(name).copied().unwrap_or(0)))
            .filter(|&(_, v)| v > 0)
            .collect();
        let prior_h: BTreeMap<&'static str, HistogramSnapshot> =
            earlier.histograms.iter().copied().collect();
        let histograms = self
            .histograms
            .iter()
            .map(|&(name, h)| {
                let p = prior_h.get(name).copied().unwrap_or_default();
                (
                    name,
                    HistogramSnapshot {
                        count: h.count - p.count,
                        sum: h.sum - p.sum,
                        min: h.min,
                        max: h.max,
                    },
                )
            })
            .filter(|(_, h)| h.count > 0)
            .collect();
        let prior_w: BTreeMap<usize, WorkerSnapshot> =
            earlier.workers.iter().map(|w| (w.slot, *w)).collect();
        let workers = self
            .workers
            .iter()
            .map(|w| {
                let p = prior_w.get(&w.slot).copied().unwrap_or_default();
                WorkerSnapshot {
                    slot: w.slot,
                    busy_ns: w.busy_ns - p.busy_ns,
                    idle_ns: w.idle_ns - p.idle_ns,
                    pulls: w.pulls - p.pulls,
                }
            })
            .filter(|w| w.busy_ns > 0 || w.idle_ns > 0 || w.pulls > 0)
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
            workers,
        }
    }

    /// Looks up a counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, v)| v)
            .unwrap_or(0)
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|&(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{set_mode, TraceMode};

    #[test]
    fn counters_register_once_and_accumulate() {
        let _guard = crate::span::tests::mode_lock();
        set_mode(TraceMode::Summary);
        let a = counter("test.metrics.counter_a");
        let b = counter("test.metrics.counter_a");
        assert!(std::ptr::eq(a, b), "same name must yield same handle");
        let before = a.get();
        a.add(3);
        b.add(2);
        assert_eq!(a.get(), before + 5);
    }

    #[test]
    fn histogram_tracks_extrema_and_mean() {
        let _guard = crate::span::tests::mode_lock();
        set_mode(TraceMode::Summary);
        let h = histogram("test.metrics.hist");
        h.observe(10);
        h.observe(2);
        h.observe(6);
        let snap = h.get();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 18);
        assert_eq!(snap.min, 2);
        assert_eq!(snap.max, 10);
        assert!((snap.mean() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn off_mode_records_nothing() {
        let _guard = crate::span::tests::mode_lock();
        set_mode(TraceMode::Off);
        let c = counter("test.metrics.off_counter");
        let before = c.get();
        c.add(100);
        assert_eq!(c.get(), before);
        let h = histogram("test.metrics.off_hist");
        let count_before = h.get().count;
        h.observe(7);
        assert_eq!(h.get().count, count_before);
        set_mode(TraceMode::Summary);
    }

    #[test]
    fn worker_slots_clamp_and_accumulate() {
        let _guard = crate::span::tests::mode_lock();
        set_mode(TraceMode::Summary);
        let before = snapshot();
        record_worker(1, 500, 100, 2);
        record_worker(1, 500, 100, 1);
        record_worker(MAX_WORKER_SLOTS + 10, 1, 1, 1); // folds into last slot
        let delta = snapshot().delta(&before);
        let w1 = delta.workers.iter().find(|w| w.slot == 1).unwrap();
        assert_eq!(w1.busy_ns, 1000);
        assert_eq!(w1.idle_ns, 200);
        assert_eq!(w1.pulls, 3);
        assert!(delta.workers.iter().any(|w| w.slot == MAX_WORKER_SLOTS - 1));
    }

    #[test]
    fn delta_isolates_a_region() {
        let _guard = crate::span::tests::mode_lock();
        set_mode(TraceMode::Summary);
        let c = counter("test.metrics.delta_counter");
        c.add(5);
        let earlier = snapshot();
        c.add(7);
        let delta = snapshot().delta(&earlier);
        assert_eq!(delta.counter("test.metrics.delta_counter"), 7);
    }

    #[test]
    fn macros_cache_handles() {
        let _guard = crate::span::tests::mode_lock();
        set_mode(TraceMode::Summary);
        let before = snapshot();
        for _ in 0..4 {
            crate::counter_add!("test.metrics.macro_counter", 2);
            crate::hist_observe!("test.metrics.macro_hist", 3);
        }
        let delta = snapshot().delta(&before);
        assert_eq!(delta.counter("test.metrics.macro_counter"), 8);
        assert_eq!(delta.histogram("test.metrics.macro_hist").unwrap().count, 4);
    }
}
