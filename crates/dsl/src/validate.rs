//! Static well-formedness checks for DSL programs.
//!
//! Programs produced by the synthesizer are correct by construction, but programs can
//! also be written by hand or loaded from text (see [`crate::parse`]) — for example by
//! the command-line front end before running a user-supplied program over a large
//! document.  This module checks such programs *before* evaluation and reports
//! problems as structured diagnostics instead of silently producing empty tables:
//!
//! * **errors** — the program is structurally broken (no columns, tuple indices out of
//!   range, a mismatched number of column names);
//! * **warnings** — the program is well-formed but suspicious against a given input
//!   tree (it references tags that never occur, or positions larger than any sibling
//!   group in the document), which almost always means an empty result.

use crate::ast::{ColumnExtractor, NodeExtractor, Operand, Predicate, Program};
use mitra_hdt::{Hdt, TagId};
use std::collections::HashSet;
use std::fmt;

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The program is well-formed but unlikely to do what the author intends.
    Warning,
    /// The program cannot be evaluated meaningfully.
    Error,
}

/// One finding of the validator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable description of the problem.
    pub message: String,
}

impl Diagnostic {
    fn error(message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
        }
    }

    fn warning(message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{kind}: {}", self.message)
    }
}

/// The result of validating a program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Validation {
    /// All findings, errors first.
    pub diagnostics: Vec<Diagnostic>,
}

impl Validation {
    /// True when no error-severity diagnostics were produced.
    pub fn is_valid(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The error-severity findings.
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    /// The warning-severity findings.
    pub fn warnings(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .collect()
    }

    fn push(&mut self, diagnostic: Diagnostic) {
        self.diagnostics.push(diagnostic);
    }

    fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| b.severity.cmp(&a.severity).then(a.message.cmp(&b.message)));
    }
}

/// Checks the purely structural properties of a program (no input tree required).
pub fn validate(program: &Program) -> Validation {
    let mut v = Validation::default();
    let arity = program.arity();

    if arity == 0 {
        v.push(Diagnostic::error("the table extractor has no columns"));
    }
    if let Some(names) = non_empty(&program.column_names) {
        if names.len() != arity {
            v.push(Diagnostic::error(format!(
                "{} column names are declared but the table extractor has {arity} columns",
                names.len()
            )));
        }
        let mut seen = HashSet::new();
        for name in names {
            if !seen.insert(name) {
                v.push(Diagnostic::warning(format!(
                    "duplicate column name `{name}`"
                )));
            }
        }
    }

    check_predicate_indices(&program.predicate, arity, &mut v);
    v.sort();
    v
}

/// Checks a program against a concrete input tree: structural checks plus
/// tag-alphabet and position plausibility checks.
pub fn validate_against(program: &Program, tree: &Hdt) -> Validation {
    let mut v = validate(program);
    let alphabet: HashSet<TagId> = tree.ids().map(|id| tree.tag(id)).collect();
    let max_pos = tree.positions().into_iter().max().unwrap_or(0);

    for (i, column) in program.extractor.columns.iter().enumerate() {
        check_column_tags(column, i, &alphabet, max_pos, &mut v);
    }
    for atom in program.predicate.atoms() {
        if let Predicate::Compare { extractor, rhs, .. } = &atom {
            check_node_extractor_tags(extractor, &alphabet, max_pos, &mut v);
            if let Operand::Column { extractor, .. } = rhs {
                check_node_extractor_tags(extractor, &alphabet, max_pos, &mut v);
            }
        }
    }
    v.sort();
    v.diagnostics.dedup();
    v
}

fn non_empty(names: &[String]) -> Option<&[String]> {
    if names.is_empty() {
        None
    } else {
        Some(names)
    }
}

fn check_predicate_indices(predicate: &Predicate, arity: usize, v: &mut Validation) {
    match predicate {
        Predicate::True | Predicate::False => {}
        Predicate::Compare { index, rhs, .. } => {
            if *index >= arity {
                v.push(Diagnostic::error(format!(
                    "predicate refers to tuple component t[{index}] but the tuple has {arity} components"
                )));
            }
            if let Operand::Column { index, .. } = rhs {
                if *index >= arity {
                    v.push(Diagnostic::error(format!(
                        "predicate refers to tuple component t[{index}] but the tuple has {arity} components"
                    )));
                }
            }
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            check_predicate_indices(a, arity, v);
            check_predicate_indices(b, arity, v);
        }
        Predicate::Not(inner) => check_predicate_indices(inner, arity, v),
    }
}

fn check_column_tags(
    column: &ColumnExtractor,
    column_index: usize,
    alphabet: &HashSet<TagId>,
    max_pos: usize,
    v: &mut Validation,
) {
    match column {
        ColumnExtractor::Input => {}
        ColumnExtractor::Children { inner, tag } | ColumnExtractor::Descendants { inner, tag } => {
            warn_unknown_tag(*tag, column_index, alphabet, v);
            check_column_tags(inner, column_index, alphabet, max_pos, v);
        }
        ColumnExtractor::PChildren { inner, tag, pos } => {
            warn_unknown_tag(*tag, column_index, alphabet, v);
            if *pos > max_pos {
                v.push(Diagnostic::warning(format!(
                    "column {column_index} selects position {pos} of `{tag}`, but no node in the \
                     document has a sibling position greater than {max_pos}"
                )));
            }
            check_column_tags(inner, column_index, alphabet, max_pos, v);
        }
    }
}

fn warn_unknown_tag(
    tag: TagId,
    column_index: usize,
    alphabet: &HashSet<TagId>,
    v: &mut Validation,
) {
    if !alphabet.contains(&tag) {
        v.push(Diagnostic::warning(format!(
            "column {column_index} selects tag `{tag}`, which does not occur in the document"
        )));
    }
}

fn check_node_extractor_tags(
    extractor: &NodeExtractor,
    alphabet: &HashSet<TagId>,
    max_pos: usize,
    v: &mut Validation,
) {
    match extractor {
        NodeExtractor::Id => {}
        NodeExtractor::Parent(inner) => check_node_extractor_tags(inner, alphabet, max_pos, v),
        NodeExtractor::Child { inner, tag, pos } => {
            if !alphabet.contains(tag) {
                v.push(Diagnostic::warning(format!(
                    "predicate follows child tag `{tag}`, which does not occur in the document"
                )));
            }
            if *pos > max_pos {
                v.push(Diagnostic::warning(format!(
                    "predicate selects child position {pos} of `{tag}`, larger than any sibling \
                     position in the document ({max_pos})"
                )));
            }
            check_node_extractor_tags(inner, alphabet, max_pos, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{CompareOp, TableExtractor};
    use crate::Value;
    use mitra_hdt::generate::social_network;

    fn person_name_program() -> Program {
        let pi = ColumnExtractor::pchildren(
            ColumnExtractor::children(ColumnExtractor::Input, "Person"),
            "name",
            0,
        );
        let mut program = Program::new(TableExtractor::new(vec![pi]), Predicate::True);
        program.column_names = vec!["name".to_string()];
        program
    }

    #[test]
    fn well_formed_program_is_valid() {
        let program = person_name_program();
        let v = validate(&program);
        assert!(v.is_valid());
        assert!(v.diagnostics.is_empty());
        let v = validate_against(&program, &social_network(3, 1));
        assert!(v.is_valid());
        assert!(v.warnings().is_empty());
    }

    #[test]
    fn zero_columns_is_an_error() {
        let program = Program::new(TableExtractor::new(vec![]), Predicate::True);
        let v = validate(&program);
        assert!(!v.is_valid());
        assert_eq!(v.errors().len(), 1);
    }

    #[test]
    fn column_name_count_mismatch_is_an_error() {
        let mut program = person_name_program();
        program.column_names = vec!["a".to_string(), "b".to_string()];
        assert!(!validate(&program).is_valid());
    }

    #[test]
    fn duplicate_column_names_are_a_warning() {
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "Person");
        let mut program = Program::new(TableExtractor::new(vec![pi.clone(), pi]), Predicate::True);
        program.column_names = vec!["x".to_string(), "x".to_string()];
        let v = validate(&program);
        assert!(v.is_valid());
        assert_eq!(v.warnings().len(), 1);
    }

    #[test]
    fn out_of_range_tuple_index_is_an_error() {
        let mut program = person_name_program();
        program.predicate = Predicate::Compare {
            extractor: NodeExtractor::Id,
            index: 3,
            op: CompareOp::Eq,
            rhs: Operand::Const(Value::int(1)),
        };
        let v = validate(&program);
        assert!(!v.is_valid());
        assert!(v.errors()[0].message.contains("t[3]"));
    }

    #[test]
    fn out_of_range_index_in_rhs_is_detected() {
        let mut program = person_name_program();
        program.predicate = Predicate::Compare {
            extractor: NodeExtractor::Id,
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::Id,
                index: 7,
            },
        };
        assert!(!validate(&program).is_valid());
    }

    #[test]
    fn unknown_tags_are_warnings_against_a_tree() {
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "NoSuchTag");
        let program = Program::new(TableExtractor::new(vec![pi]), Predicate::True);
        let v = validate_against(&program, &social_network(2, 1));
        assert!(v.is_valid());
        assert_eq!(v.warnings().len(), 1);
        assert!(v.warnings()[0].message.contains("NoSuchTag"));
    }

    #[test]
    fn implausible_positions_are_warnings() {
        let pi = ColumnExtractor::pchildren(
            ColumnExtractor::children(ColumnExtractor::Input, "Person"),
            "name",
            99,
        );
        let program = Program::new(TableExtractor::new(vec![pi]), Predicate::True);
        let v = validate_against(&program, &social_network(2, 1));
        assert!(v.is_valid());
        assert!(v
            .warnings()
            .iter()
            .any(|d| d.message.contains("position 99")));
    }

    #[test]
    fn predicate_tags_are_checked_against_the_tree() {
        let mut program = person_name_program();
        program.predicate = Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::parent(NodeExtractor::Id), "ghost", 0),
            index: 0,
            op: CompareOp::Ne,
            rhs: Operand::Const(Value::str("x")),
        };
        let v = validate_against(&program, &social_network(2, 1));
        assert!(v.is_valid());
        assert!(v.warnings().iter().any(|d| d.message.contains("ghost")));
    }

    #[test]
    fn diagnostics_render_with_severity_prefix() {
        let d = Diagnostic::error("boom");
        assert_eq!(d.to_string(), "error: boom");
        let w = Diagnostic::warning("hmm");
        assert_eq!(w.to_string(), "warning: hmm");
    }

    #[test]
    fn errors_sort_before_warnings() {
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "NoSuchTag");
        let mut program = Program::new(TableExtractor::new(vec![pi]), Predicate::True);
        program.column_names = vec!["a".to_string(), "b".to_string()];
        let v = validate_against(&program, &social_network(2, 1));
        assert!(!v.is_valid());
        assert_eq!(v.diagnostics[0].severity, Severity::Error);
        assert_eq!(
            *v.diagnostics.last().unwrap(),
            *v.warnings()[v.warnings().len() - 1]
        );
    }
}
