//! Bag-semantics relational tables.
//!
//! Per Section 4 of the paper, relational tables are bags (multisets) of tuples.  The
//! synthesizer compares an extracted table with the user-supplied output example under
//! bag semantics, so [`Table::same_bag`] counts multiplicities.

use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// A single row (tuple) of a relational table.
pub type Row = Vec<Value>;

/// A relational table: an optional list of column names plus a bag of rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    /// Column names; empty when the table is anonymous (e.g. intermediate tables).
    pub columns: Vec<String>,
    /// The rows, in insertion order.
    pub rows: Vec<Row>,
}

impl Table {
    /// Creates an empty table with the given column names.
    pub fn new(columns: Vec<String>) -> Self {
        Table {
            columns,
            rows: Vec::new(),
        }
    }

    /// Creates an anonymous table with `arity` unnamed columns.
    pub fn anonymous(arity: usize) -> Self {
        Table {
            columns: (0..arity).map(|i| format!("c{i}")).collect(),
            rows: Vec::new(),
        }
    }

    /// Builds a table from string literals; each inner slice is one row.
    ///
    /// Convenient for writing output examples in tests:
    /// `Table::from_rows(&["Person","Years"], &[&["Alice","3"]])`.
    pub fn from_rows(columns: &[&str], rows: &[&[&str]]) -> Self {
        Table {
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: rows
                .iter()
                .map(|r| r.iter().map(|c| Value::from_data(c)).collect())
                .collect(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        if self.columns.is_empty() {
            self.rows.first().map(Vec::len).unwrap_or(0)
        } else {
            self.columns.len()
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics in debug builds if the row arity does not match the table arity.
    pub fn push(&mut self, row: Row) {
        debug_assert!(
            self.rows.is_empty() && self.columns.is_empty() || row.len() == self.arity(),
            "row arity {} does not match table arity {}",
            row.len(),
            self.arity()
        );
        self.rows.push(row);
    }

    /// The `i`'th column as a vector of values (the `column(R, i)` notation).
    pub fn column(&self, i: usize) -> Vec<Value> {
        self.rows.iter().map(|r| r[i].clone()).collect()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// True when `row` occurs in this table at least once (bag membership).
    pub fn contains_row(&self, row: &[Value]) -> bool {
        self.rows.iter().any(|r| r.as_slice() == row)
    }

    /// Multiplicity map of the rows (for bag-equality checks).
    fn counts(&self) -> HashMap<Vec<String>, usize> {
        let mut m: HashMap<Vec<String>, usize> = HashMap::with_capacity(self.rows.len());
        for r in &self.rows {
            let key: Vec<String> = r.iter().map(Value::render).collect();
            *m.entry(key).or_insert(0) += 1;
        }
        m
    }

    /// Bag equality: same rows with the same multiplicities, ignoring row order and
    /// column names.
    pub fn same_bag(&self, other: &Table) -> bool {
        self.rows.len() == other.rows.len() && self.counts() == other.counts()
    }

    /// Set containment: every row of `self` (ignoring multiplicity) appears in `other`.
    pub fn subset_of(&self, other: &Table) -> bool {
        let other_counts = other.counts();
        self.rows
            .iter()
            .all(|r| other_counts.contains_key(&r.iter().map(Value::render).collect::<Vec<_>>()))
    }

    /// Removes duplicate rows (set projection), keeping first occurrences.
    pub fn dedup(&mut self) {
        let mut seen: HashMap<Vec<String>, ()> = HashMap::new();
        self.rows.retain(|r| {
            let key: Vec<String> = r.iter().map(Value::render).collect();
            seen.insert(key, ()).is_none()
        });
    }

    /// Renders the table as CSV (columns header first when present).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        if !self.columns.is_empty() {
            out.push_str(&self.columns.join(","));
            out.push('\n');
        }
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|v| csv_escape(&v.render())).collect();
            out.push_str(&cells.join(","));
            out.push('\n');
        }
        out
    }
}

fn csv_escape(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        Table::from_rows(
            &["Person", "Friend-with", "years"],
            &[
                &["Alice", "Bob", "3"],
                &["Bob", "Alice", "3"],
                &["Alice", "Bob", "3"],
            ],
        )
    }

    #[test]
    fn arity_and_len() {
        let t = sample();
        assert_eq!(t.arity(), 3);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn column_extraction() {
        let t = sample();
        let col = t.column(0);
        assert_eq!(col.len(), 3);
        assert_eq!(col[0], Value::str("Alice"));
        assert_eq!(t.column_index("years"), Some(2));
        assert_eq!(t.column_index("nope"), None);
    }

    #[test]
    fn bag_equality_respects_multiplicity() {
        let a = sample();
        let mut b = sample();
        assert!(a.same_bag(&b));
        b.rows.pop();
        assert!(!a.same_bag(&b));
        // order does not matter
        let mut c = sample();
        c.rows.reverse();
        assert!(a.same_bag(&c));
    }

    #[test]
    fn bag_equality_uses_typed_values() {
        let a = Table::from_rows(&["x"], &[&["3"]]);
        let b = Table::from_rows(&["x"], &[&["3"]]);
        assert!(a.same_bag(&b));
    }

    #[test]
    fn subset_and_contains() {
        let a = Table::from_rows(&["x", "y"], &[&["1", "2"]]);
        let b = Table::from_rows(&["x", "y"], &[&["1", "2"], &["3", "4"]]);
        assert!(a.subset_of(&b));
        assert!(!b.subset_of(&a));
        assert!(b.contains_row(&[Value::int(3), Value::int(4)]));
        assert!(!b.contains_row(&[Value::int(3), Value::int(5)]));
    }

    #[test]
    fn dedup_removes_duplicates_only() {
        let mut t = sample();
        t.dedup();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn csv_rendering_escapes() {
        let t = Table::from_rows(&["a"], &[&["x,y"], &["say \"hi\""]]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn anonymous_table_names_columns() {
        let t = Table::anonymous(2);
        assert_eq!(t.columns, vec!["c0", "c1"]);
    }
}
