//! Human-readable rendering of DSL programs in the paper's surface syntax
//! (the style of Figure 3 and Figure 8c).

use crate::ast::{ColumnExtractor, NodeExtractor, Operand, Predicate, Program, TableExtractor};

/// Renders a column extractor, using `s` for the input set.
pub fn column_extractor(pi: &ColumnExtractor) -> String {
    match pi {
        ColumnExtractor::Input => "s".to_string(),
        ColumnExtractor::Children { inner, tag } => {
            format!("children({}, {})", column_extractor(inner), tag)
        }
        ColumnExtractor::PChildren { inner, tag, pos } => {
            format!("pchildren({}, {}, {})", column_extractor(inner), tag, pos)
        }
        ColumnExtractor::Descendants { inner, tag } => {
            format!("descendants({}, {})", column_extractor(inner), tag)
        }
    }
}

/// Renders a node extractor, using `n` for the input node.
pub fn node_extractor(phi: &NodeExtractor) -> String {
    match phi {
        NodeExtractor::Id => "n".to_string(),
        NodeExtractor::Parent(inner) => format!("parent({})", node_extractor(inner)),
        NodeExtractor::Child { inner, tag, pos } => {
            format!("child({}, {}, {})", node_extractor(inner), tag, pos)
        }
    }
}

/// Renders a table extractor as a × of per-column lambdas.
pub fn table_extractor(psi: &TableExtractor) -> String {
    psi.columns
        .iter()
        .map(|pi| format!("(\\s.{}){{root(tau)}}", column_extractor(pi)))
        .collect::<Vec<_>>()
        .join(" x ")
}

/// Renders a predicate.
pub fn predicate(p: &Predicate) -> String {
    predicate_prec(p, 0)
}

fn predicate_prec(p: &Predicate, prec: u8) -> String {
    match p {
        Predicate::True => "true".to_string(),
        Predicate::False => "false".to_string(),
        Predicate::Compare {
            extractor,
            index,
            op,
            rhs,
        } => {
            let lhs = format!("((\\n.{}) t[{}])", node_extractor(extractor), index);
            let rhs_s = match rhs {
                Operand::Const(c) => format!("{:?}", c.render()),
                Operand::Column { extractor, index } => {
                    format!("((\\n.{}) t[{}])", node_extractor(extractor), index)
                }
            };
            format!("{lhs} {} {rhs_s}", op.symbol())
        }
        Predicate::And(a, b) => {
            let s = format!("{} && {}", predicate_prec(a, 2), predicate_prec(b, 2));
            if prec > 2 {
                format!("({s})")
            } else {
                s
            }
        }
        Predicate::Or(a, b) => {
            let s = format!("{} || {}", predicate_prec(a, 1), predicate_prec(b, 1));
            if prec > 1 {
                format!("({s})")
            } else {
                s
            }
        }
        Predicate::Not(a) => format!("!{}", predicate_prec(a, 3)),
    }
}

/// Renders a full program in the `λτ. filter(ψ, λt. φ)` shape of the paper.
pub fn program(p: &Program) -> String {
    format!(
        "\\tau. filter({}, \\t. {})",
        table_extractor(&p.extractor),
        predicate(&p.predicate)
    )
}

/// A short multi-line summary of a program: one line per column extractor plus the
/// predicate.  Used by examples and the benchmark report printer.
pub fn program_summary(p: &Program) -> String {
    let mut out = String::new();
    for (i, pi) in p.extractor.columns.iter().enumerate() {
        let name = p
            .column_names
            .get(i)
            .cloned()
            .unwrap_or_else(|| format!("col{i}"));
        out.push_str(&format!("  pi_{i} ({name}): {}\n", column_extractor(pi)));
    }
    out.push_str(&format!("  phi: {}\n", predicate(&p.predicate)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CompareOp;
    use crate::value::Value;

    #[test]
    fn renders_figure3_style_column_extractor() {
        let pi = ColumnExtractor::pchildren(
            ColumnExtractor::children(ColumnExtractor::Input, "Person"),
            "name",
            0,
        );
        assert_eq!(
            column_extractor(&pi),
            "pchildren(children(s, Person), name, 0)"
        );
    }

    #[test]
    fn renders_node_extractor() {
        let phi = NodeExtractor::child(NodeExtractor::parent(NodeExtractor::Id), "id", 0);
        assert_eq!(node_extractor(&phi), "child(parent(n), id, 0)");
    }

    #[test]
    fn renders_predicates_with_connectives() {
        let a = Predicate::Compare {
            extractor: NodeExtractor::Id,
            index: 0,
            op: CompareOp::Lt,
            rhs: Operand::Const(Value::int(20)),
        };
        let b = Predicate::Compare {
            extractor: NodeExtractor::parent(NodeExtractor::Id),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::parent(NodeExtractor::parent(NodeExtractor::Id)),
                index: 1,
            },
        };
        let s = predicate(&Predicate::and(a, Predicate::not(b)));
        assert!(s.contains("t[0]) < \"20\""));
        assert!(s.contains("&& !"));
        assert!(s.contains("parent(parent(n))"));
    }

    #[test]
    fn program_rendering_mentions_filter_and_root() {
        let psi = TableExtractor::new(vec![ColumnExtractor::children(ColumnExtractor::Input, "a")]);
        let prog = Program::new(psi, Predicate::True);
        let s = program(&prog);
        assert!(s.starts_with("\\tau. filter("));
        assert!(s.contains("{root(tau)}"));
    }

    #[test]
    fn summary_lists_each_column() {
        let psi = TableExtractor::new(vec![ColumnExtractor::Input, ColumnExtractor::Input]);
        let mut prog = Program::new(psi, Predicate::True);
        prog.column_names = vec!["a".into(), "b".into()];
        let s = program_summary(&prog);
        assert!(s.contains("pi_0 (a)"));
        assert!(s.contains("pi_1 (b)"));
    }
}
