//! Denotational semantics of the DSL (Figure 7).
//!
//! This module implements the *naive* semantics: column extractors are evaluated
//! against the tree, the table extractor materializes the full cross product, and the
//! predicate filters rows.  This is exactly the meaning the synthesizer reasons about.
//! The optimized execution engine that avoids materializing the cross product lives in
//! `mitra-synth::exec` (Appendix C of the paper).

use crate::ast::{ColumnExtractor, NodeExtractor, Operand, Predicate, Program, TableExtractor};
use crate::table::Table;
use crate::value::Value;
use mitra_hdt::{Hdt, NodeId};
use std::fmt;

/// Default cap on the number of rows the naive cross product may materialize.
///
/// The limit exists to turn a hopeless `children(s,a) × children(s,b) × …` blow-up
/// into a reported error instead of an out-of-memory abort; the optimized executor in
/// `mitra-synth::exec` is the right tool for large documents.
pub const DEFAULT_MAX_ROWS: usize = 4_000_000;

/// Resource limits applied by the naive evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalLimits {
    /// Maximum number of rows a materialized cross product may contain.
    pub max_rows: usize,
}

impl Default for EvalLimits {
    fn default() -> Self {
        EvalLimits {
            max_rows: DEFAULT_MAX_ROWS,
        }
    }
}

impl EvalLimits {
    /// Limits with a specific row cap.
    pub fn with_max_rows(max_rows: usize) -> Self {
        EvalLimits { max_rows }
    }
}

/// Errors raised by the naive evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The product of the per-column set sizes overflowed `usize`.
    ProductOverflow {
        /// Number of columns in the offending table extractor.
        arity: usize,
    },
    /// The cross product would materialize more rows than the configured cap.
    TooManyRows {
        /// The number of rows the cross product would produce.
        rows: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::ProductOverflow { arity } => write!(
                f,
                "cross product of {arity} columns overflows the row counter"
            ),
            EvalError::TooManyRows { rows, cap } => write!(
                f,
                "cross product would materialize {rows} rows, above the cap of {cap}"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// Evaluates a column extractor on a set of starting nodes, returning the extracted
/// node set in document order (duplicates possible, as in the paper's set-of-nodes with
/// multiplicity given by the traversal).
pub fn eval_column_from(tree: &Hdt, start: &[NodeId], pi: &ColumnExtractor) -> Vec<NodeId> {
    match pi {
        ColumnExtractor::Input => start.to_vec(),
        ColumnExtractor::Children { inner, tag } => {
            let base = eval_column_from(tree, start, inner);
            base.iter()
                .flat_map(|n| tree.children_with_tag(*n, *tag).iter().copied())
                .collect()
        }
        ColumnExtractor::PChildren { inner, tag, pos } => {
            let base = eval_column_from(tree, start, inner);
            base.iter()
                .flat_map(|n| tree.children_with_tag_pos(*n, *tag, *pos))
                .collect()
        }
        ColumnExtractor::Descendants { inner, tag } => {
            let base = eval_column_from(tree, start, inner);
            base.iter()
                .flat_map(|n| tree.descendants_with_tag(*n, *tag).iter().copied())
                .collect()
        }
    }
}

/// Evaluates a column extractor starting from `{root(τ)}` (the `(λs.π){root(τ)}` form).
pub fn eval_column(tree: &Hdt, pi: &ColumnExtractor) -> Vec<NodeId> {
    eval_column_from(tree, &[tree.root()], pi)
}

/// Evaluates a table extractor: the cross product of its columns.  Entries are node
/// ids, matching the paper's intermediate tables whose cells are "pointers" to nodes.
pub fn eval_table_extractor(
    tree: &Hdt,
    psi: &TableExtractor,
) -> Result<Vec<Vec<NodeId>>, EvalError> {
    eval_table_extractor_with(tree, psi, &EvalLimits::default())
}

/// Like [`eval_table_extractor`], with an explicit row cap.
pub fn eval_table_extractor_with(
    tree: &Hdt,
    psi: &TableExtractor,
    limits: &EvalLimits,
) -> Result<Vec<Vec<NodeId>>, EvalError> {
    let columns: Vec<Vec<NodeId>> = psi.columns.iter().map(|pi| eval_column(tree, pi)).collect();
    cross_product_with(&columns, limits)
}

/// Cross product of the per-column node lists, under the default row cap.
pub fn cross_product(columns: &[Vec<NodeId>]) -> Result<Vec<Vec<NodeId>>, EvalError> {
    cross_product_with(columns, &EvalLimits::default())
}

/// Cross product of the per-column node lists.
///
/// The row count is computed with checked multiplication *before* anything is
/// materialized, so an oversized product is rejected as an [`EvalError`] instead of
/// allocating.
pub fn cross_product_with(
    columns: &[Vec<NodeId>],
    limits: &EvalLimits,
) -> Result<Vec<Vec<NodeId>>, EvalError> {
    let slices: Vec<&[NodeId]> = columns.iter().map(Vec::as_slice).collect();
    cross_product_slices(&slices, limits)
}

/// Cross product over borrowed per-column slices.
///
/// This is the allocation-free entry point used by the synthesizer's shared
/// column-evaluation cache: workers hold `Arc`ed node lists and pass slices here
/// without cloning a `Vec<Vec<NodeId>>` per candidate.
pub fn cross_product_slices(
    columns: &[&[NodeId]],
    limits: &EvalLimits,
) -> Result<Vec<Vec<NodeId>>, EvalError> {
    if columns.is_empty() {
        return Ok(vec![]);
    }
    if columns.iter().any(|c| c.is_empty()) {
        return Ok(vec![]);
    }
    let total = columns
        .iter()
        .map(|c| c.len())
        .try_fold(1usize, |acc, len| acc.checked_mul(len))
        .ok_or(EvalError::ProductOverflow {
            arity: columns.len(),
        })?;
    if total > limits.max_rows {
        return Err(EvalError::TooManyRows {
            rows: total,
            cap: limits.max_rows,
        });
    }
    let mut out = Vec::with_capacity(total);
    let mut idx = vec![0usize; columns.len()];
    loop {
        out.push(idx.iter().zip(columns).map(|(i, c)| c[*i]).collect());
        // Increment the mixed-radix counter.
        let mut k = columns.len();
        loop {
            if k == 0 {
                return Ok(out);
            }
            k -= 1;
            idx[k] += 1;
            if idx[k] < columns[k].len() {
                break;
            }
            idx[k] = 0;
        }
    }
}

/// Evaluates a node extractor on a node.  Returns `None` when the extractor "throws"
/// (⊥): a missing parent or a missing child.
pub fn eval_node_extractor(tree: &Hdt, node: NodeId, phi: &NodeExtractor) -> Option<NodeId> {
    match phi {
        NodeExtractor::Id => Some(node),
        NodeExtractor::Parent(inner) => {
            let n = eval_node_extractor(tree, node, inner)?;
            tree.parent(n)
        }
        NodeExtractor::Child { inner, tag, pos } => {
            let n = eval_node_extractor(tree, node, inner)?;
            tree.child(n, *tag, *pos)
        }
    }
}

/// The data value stored at a node, as a typed [`Value`] (NULL for internal nodes).
pub fn node_value(tree: &Hdt, node: NodeId) -> Value {
    match tree.data(node) {
        Some(d) => Value::from_data(d),
        None => Value::Null,
    }
}

/// Evaluates a predicate on a tuple of nodes (Figure 7, bottom half).
pub fn eval_predicate(tree: &Hdt, tuple: &[NodeId], phi: &Predicate) -> bool {
    match phi {
        Predicate::True => true,
        Predicate::False => false,
        Predicate::Not(p) => !eval_predicate(tree, tuple, p),
        Predicate::And(a, b) => eval_predicate(tree, tuple, a) && eval_predicate(tree, tuple, b),
        Predicate::Or(a, b) => eval_predicate(tree, tuple, a) || eval_predicate(tree, tuple, b),
        Predicate::Compare {
            extractor,
            index,
            op,
            rhs,
        } => {
            let Some(&ni) = tuple.get(*index) else {
                return false;
            };
            let Some(left) = eval_node_extractor(tree, ni, extractor) else {
                return false;
            };
            match rhs {
                Operand::Const(c) => {
                    let lv = node_value(tree, left);
                    match lv.compare(c) {
                        Some(ord) => op.test(ord),
                        None => false,
                    }
                }
                Operand::Column {
                    extractor: ext2,
                    index: j,
                } => {
                    let Some(&nj) = tuple.get(*j) else {
                        return false;
                    };
                    let Some(right) = eval_node_extractor(tree, nj, ext2) else {
                        return false;
                    };
                    let left_leaf = tree.is_leaf(left);
                    let right_leaf = tree.is_leaf(right);
                    if left_leaf && right_leaf {
                        let lv = node_value(tree, left);
                        let rv = node_value(tree, right);
                        match lv.compare(&rv) {
                            Some(ord) => op.test(ord),
                            None => false,
                        }
                    } else if !left_leaf && !right_leaf {
                        // Only identity comparison is defined on internal nodes.
                        match op {
                            crate::ast::CompareOp::Eq => left == right,
                            crate::ast::CompareOp::Ne => left != right,
                            _ => false,
                        }
                    } else {
                        false
                    }
                }
            }
        }
    }
}

/// Evaluates a full program on a tree, producing the relational output table
/// (`filter(ψ, λt.φ)` of Figure 7): tuples of node *data* for the rows that satisfy φ.
pub fn eval_program(tree: &Hdt, program: &Program) -> Result<Table, EvalError> {
    eval_program_with(tree, program, &EvalLimits::default())
}

/// Like [`eval_program`], with an explicit row cap for the intermediate product.
pub fn eval_program_with(
    tree: &Hdt,
    program: &Program,
    limits: &EvalLimits,
) -> Result<Table, EvalError> {
    let mut table = if program.column_names.is_empty() {
        Table::anonymous(program.arity())
    } else {
        Table::new(program.column_names.clone())
    };
    for tuple in eval_table_extractor_with(tree, &program.extractor, limits)? {
        if eval_predicate(tree, &tuple, &program.predicate) {
            table.push(tuple.iter().map(|n| node_value(tree, *n)).collect());
        }
    }
    Ok(table)
}

/// Evaluates a program but keeps node ids instead of projecting to data values.
/// Useful for key generation during full-database migration (Section 6).
pub fn eval_program_nodes(tree: &Hdt, program: &Program) -> Result<Vec<Vec<NodeId>>, EvalError> {
    Ok(eval_table_extractor(tree, &program.extractor)?
        .into_iter()
        .filter(|tuple| eval_predicate(tree, tuple, &program.predicate))
        .collect())
}

/// Compile-time guarantee that everything a synthesis worker context needs — the
/// program under evaluation, the resource limits threaded into it, and the produced
/// table — can cross thread boundaries.  Parallel candidate validation shares
/// `&Program`/`EvalLimits` across scoped workers and sends `Table`s back.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Program>();
    assert_send_sync::<EvalLimits>();
    assert_send_sync::<EvalError>();
    assert_send_sync::<Table>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CompareOp;
    use mitra_hdt::generate::social_network;
    use mitra_hdt::HdtBuilder;

    /// The synthesized program of Figure 3, built by hand.
    fn figure3_program() -> Program {
        use ColumnExtractor as CE;
        let pi11 = CE::pchildren(CE::children(CE::Input, "Person"), "name", 0);
        let pi21 = pi11.clone();
        let pi_f = CE::pchildren(CE::children(CE::Input, "Person"), "Friendship", 0);
        let pi31 = CE::pchildren(CE::children(pi_f, "Friend"), "years", 0);
        let psi = TableExtractor::new(vec![pi11, pi21, pi31]);

        // φ1: parent(t[0]) = parent(parent(parent(t[2])))
        let phi1 = Predicate::Compare {
            extractor: NodeExtractor::parent(NodeExtractor::Id),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::parent(NodeExtractor::parent(NodeExtractor::parent(
                    NodeExtractor::Id,
                ))),
                index: 2,
            },
        };
        // φ2: child(parent(t[1]), id, 0) = child(parent(t[2]), fid, 0)
        let phi2 = Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::parent(NodeExtractor::Id), "id", 0),
            index: 1,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::child(NodeExtractor::parent(NodeExtractor::Id), "fid", 0),
                index: 2,
            },
        };
        Program::new(psi, Predicate::and(phi1, phi2))
    }

    #[test]
    fn column_extractor_semantics() {
        let t = social_network(2, 1);
        let pi = ColumnExtractor::pchildren(
            ColumnExtractor::children(ColumnExtractor::Input, "Person"),
            "name",
            0,
        );
        let nodes = eval_column(&t, &pi);
        assert_eq!(nodes.len(), 2);
        assert_eq!(node_value(&t, nodes[0]), Value::str("Alice"));
    }

    #[test]
    fn descendants_extractor_reaches_deep_nodes() {
        let t = social_network(2, 1);
        let pi = ColumnExtractor::descendants(ColumnExtractor::Input, "years");
        assert_eq!(eval_column(&t, &pi).len(), 2);
    }

    #[test]
    fn cross_product_sizes_multiply() {
        let cols = vec![
            vec![NodeId(1), NodeId(2)],
            vec![NodeId(3)],
            vec![NodeId(4), NodeId(5), NodeId(6)],
        ];
        assert_eq!(cross_product(&cols).unwrap().len(), 6);
        assert!(cross_product(&[vec![], vec![NodeId(1)]])
            .unwrap()
            .is_empty());
        assert!(cross_product(&[]).unwrap().is_empty());
    }

    #[test]
    fn cross_product_slices_agrees_with_owned_columns() {
        let cols = vec![
            vec![NodeId(1), NodeId(2)],
            vec![NodeId(3), NodeId(4), NodeId(5)],
        ];
        let slices: Vec<&[NodeId]> = cols.iter().map(Vec::as_slice).collect();
        let limits = EvalLimits::default();
        assert_eq!(
            cross_product_with(&cols, &limits).unwrap(),
            cross_product_slices(&slices, &limits).unwrap()
        );
        assert!(cross_product_slices(&[], &limits).unwrap().is_empty());
        assert!(cross_product_slices(&[&[], &[NodeId(1)]], &limits)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn cross_product_row_cap_is_enforced_before_allocation() {
        let cols = vec![vec![NodeId(0); 100], vec![NodeId(1); 100]];
        let limits = EvalLimits::with_max_rows(5_000);
        assert_eq!(
            cross_product_with(&cols, &limits),
            Err(EvalError::TooManyRows {
                rows: 10_000,
                cap: 5_000
            })
        );
        // Under the cap the product materializes normally.
        assert_eq!(
            cross_product_with(&cols, &EvalLimits::with_max_rows(10_000))
                .unwrap()
                .len(),
            10_000
        );
    }

    #[test]
    fn cross_product_overflow_is_reported_not_wrapped() {
        // Column sizes whose product overflows usize must be rejected via checked
        // multiplication, not wrap around to a small allocation.
        let big = vec![NodeId(0); 1 << 20];
        let cols: Vec<Vec<NodeId>> = (0..4).map(|_| big.clone()).collect();
        assert_eq!(
            cross_product(&cols),
            Err(EvalError::ProductOverflow { arity: 4 })
        );
    }

    #[test]
    fn eval_program_surfaces_row_cap_errors() {
        let t = social_network(40, 1);
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "Person");
        let psi = TableExtractor::new(vec![pi.clone(), pi.clone(), pi]);
        let prog = Program::new(psi, Predicate::True);
        let limits = EvalLimits::with_max_rows(100);
        assert!(matches!(
            eval_program_with(&t, &prog, &limits),
            Err(EvalError::TooManyRows { .. })
        ));
    }

    #[test]
    fn node_extractor_parent_child_and_bottom() {
        let t = HdtBuilder::new("r")
            .open("a")
            .leaf("b", "1")
            .close()
            .build();
        let a = t.children_with_tag(t.root(), "a")[0];
        let b = t.child(a, "b", 0).unwrap();
        assert_eq!(
            eval_node_extractor(&t, b, &NodeExtractor::parent(NodeExtractor::Id)),
            Some(a)
        );
        assert_eq!(
            eval_node_extractor(&t, a, &NodeExtractor::child(NodeExtractor::Id, "b", 0)),
            Some(b)
        );
        // root has no parent -> ⊥
        assert_eq!(
            eval_node_extractor(&t, t.root(), &NodeExtractor::parent(NodeExtractor::Id)),
            None
        );
        // missing child -> ⊥
        assert_eq!(
            eval_node_extractor(&t, a, &NodeExtractor::child(NodeExtractor::Id, "zz", 0)),
            None
        );
    }

    #[test]
    fn figure3_program_produces_expected_table() {
        let t = social_network(2, 1);
        let program = figure3_program();
        let out = eval_program(&t, &program).unwrap();
        // Alice(1) friends Bob(2) for (1+2)%10+1=4 years; Bob friends Alice for 4 years.
        let expected = Table::from_rows(
            &["c0", "c1", "c2"],
            &[&["Alice", "Bob", "12"], &["Bob", "Alice", "21"]],
        );
        assert!(out.same_bag(&expected), "got {out}");
    }

    #[test]
    fn predicate_bottom_filters_row_out() {
        let t = social_network(2, 1);
        // Compare against a child that does not exist: must evaluate to false, not panic.
        let p = Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::Id, "missing", 0),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Const(Value::int(1)),
        };
        let psi = TableExtractor::new(vec![ColumnExtractor::children(
            ColumnExtractor::Input,
            "Person",
        )]);
        let prog = Program::new(psi, p);
        assert!(eval_program(&t, &prog).unwrap().is_empty());
    }

    #[test]
    fn internal_node_equality_compares_identity() {
        let t = social_network(2, 1);
        let persons = t.children_with_tag(t.root(), "Person");
        // t[0] = t[1] where both are internal Person nodes.
        let p = Predicate::Compare {
            extractor: NodeExtractor::Id,
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::Id,
                index: 1,
            },
        };
        assert!(eval_predicate(&t, &[persons[0], persons[0]], &p));
        assert!(!eval_predicate(&t, &[persons[0], persons[1]], &p));
        // Ordering comparison on internal nodes is always false.
        let p_lt = Predicate::Compare {
            extractor: NodeExtractor::Id,
            index: 0,
            op: CompareOp::Lt,
            rhs: Operand::Column {
                extractor: NodeExtractor::Id,
                index: 1,
            },
        };
        assert!(!eval_predicate(&t, &[persons[0], persons[1]], &p_lt));
    }

    #[test]
    fn constant_comparison_with_numbers() {
        let t = social_network(4, 1);
        // Keep persons whose id < 3.
        let pi = ColumnExtractor::children(ColumnExtractor::Input, "Person");
        let p = Predicate::Compare {
            extractor: NodeExtractor::child(NodeExtractor::Id, "id", 0),
            index: 0,
            op: CompareOp::Lt,
            rhs: Operand::Const(Value::int(3)),
        };
        let prog = Program::new(TableExtractor::new(vec![pi]), p);
        let out = eval_program_nodes(&t, &prog).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn eval_program_uses_column_names_when_given() {
        let t = social_network(2, 1);
        let mut prog = figure3_program();
        prog.column_names = vec!["Person".into(), "Friend-with".into(), "years".into()];
        let out = eval_program(&t, &prog).unwrap();
        assert_eq!(out.columns, vec!["Person", "Friend-with", "years"]);
    }
}
