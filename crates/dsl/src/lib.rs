//! # mitra-dsl — the tree-to-table transformation DSL
//!
//! This crate implements the domain-specific language of Figure 6 of the paper and its
//! denotational semantics (Figure 7).  A program has the shape
//!
//! ```text
//! P  ::=  λτ. filter(ψ, λt. φ)
//! ψ  ::=  (λs.π){root(τ)}  |  ψ1 × ψ2            -- table extractor
//! π  ::=  s | children(π, tag) | pchildren(π, tag, pos) | descendants(π, tag)
//! φ  ::=  (λn.ϕ) t[i] ⊙ c | (λn.ϕ1) t[i] ⊙ (λn.ϕ2) t[j] | φ∧φ | φ∨φ | ¬φ
//! ϕ  ::=  n | parent(ϕ) | child(ϕ, tag, pos)      -- node extractor
//! ```
//!
//! Modules:
//! * [`value`] — typed relational cell values with the comparison semantics the
//!   predicates need (numeric when both sides parse as numbers, lexicographic
//!   otherwise);
//! * [`table`] — bag-semantics relational tables with named columns;
//! * [`ast`] — the DSL abstract syntax;
//! * [`eval`] — the naive denotational evaluator of Figure 7 (cross product + filter);
//! * [`cost`] — the Occam's-razor cost function θ of Section 6;
//! * [`pretty`] — the human-readable syntax used in the paper's figures;
//! * [`parse`] — a parser for that textual syntax (round-trips with [`pretty`]);
//! * [`validate`] — static well-formedness checks for hand-written or loaded programs.

// This crate is part of the hardened fault-tolerance surface: panicking
// shortcuts are lint-rejected outside tests (see clippy.toml for the list).
#![cfg_attr(not(test), warn(clippy::disallowed_methods))]

pub mod ast;
pub mod cost;
pub mod eval;
pub mod parse;
pub mod pretty;
pub mod table;
pub mod validate;
pub mod value;

pub use ast::{
    ColumnExtractor, CompareOp, NodeExtractor, Operand, Predicate, Program, TableExtractor,
};
pub use cost::{cost, Cost};
pub use eval::{
    eval_column, eval_node_extractor, eval_predicate, eval_program, eval_program_with,
    eval_table_extractor, EvalError, EvalLimits,
};
pub use table::{Row, Table};
pub use validate::{validate, validate_against, Diagnostic, Severity, Validation};
pub use value::Value;
