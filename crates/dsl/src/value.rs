//! Typed relational cell values.
//!
//! HDT node data is stored as strings, but the relational tables Mitra produces (and
//! the constants that appear in predicates) behave like typed values: `3` and `03`
//! compare equal numerically, `"10" < "9"` is false when both parse as numbers, and so
//! on.  [`Value`] captures this: it keeps the original text but compares numerically
//! whenever both operands are numeric.

use std::cmp::Ordering;
use std::fmt;

/// A relational cell value.
#[derive(Debug, Clone)]
pub enum Value {
    /// Missing value (SQL NULL).
    Null,
    /// Integer value.
    Int(i64),
    /// Floating point value.
    Float(f64),
    /// Boolean value.
    Bool(bool),
    /// Arbitrary text.
    Str(String),
}

impl Value {
    /// Parses a raw data string into the most specific value type.
    ///
    /// Integers parse to [`Value::Int`], other numbers to [`Value::Float`],
    /// `true`/`false` to [`Value::Bool`], `null` / empty to [`Value::Null`], everything
    /// else stays a string.
    pub fn from_data(s: &str) -> Value {
        let t = s.trim();
        if t.is_empty() || t == "null" {
            return Value::Null;
        }
        if t == "true" {
            return Value::Bool(true);
        }
        if t == "false" {
            return Value::Bool(false);
        }
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            return Value::Float(f);
        }
        Value::Str(s.to_string())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// Numeric view of the value, if it has one.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            Value::Str(s) => s.trim().parse::<f64>().ok(),
            Value::Null => None,
        }
    }

    /// True when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Canonical textual rendering (what would be written into a CSV cell).
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{}", *f as i64)
                } else {
                    format!("{f}")
                }
            }
            Value::Bool(b) => b.to_string(),
            Value::Str(s) => s.clone(),
        }
    }

    /// Comparison used by the DSL predicates: numeric when both sides are numeric,
    /// textual otherwise.  NULL compares equal only to NULL and is unordered otherwise.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, Value::Null) => Some(Ordering::Equal),
            (Value::Null, _) | (_, Value::Null) => None,
            _ => {
                if let (Some(a), Some(b)) = (self.as_number(), other.as_number()) {
                    a.partial_cmp(&b)
                } else {
                    Some(self.render().cmp(&other.render()))
                }
            }
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Hash consistently with `eq`: numeric values hash by their canonical numeric
        // rendering, everything else by its text.
        if let Some(n) = self.as_number() {
            if n.fract() == 0.0 && n.abs() < 1e15 {
                (n as i64).hash(state);
            } else {
                n.to_bits().hash(state);
            }
        } else {
            self.render().hash(state);
        }
        self.is_null().hash(state);
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.compare(other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::from_data(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::from_data(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parsing_detects_types() {
        assert_eq!(Value::from_data("42"), Value::Int(42));
        assert_eq!(Value::from_data("4.5"), Value::Float(4.5));
        assert_eq!(Value::from_data("true"), Value::Bool(true));
        assert_eq!(Value::from_data(""), Value::Null);
        assert_eq!(Value::from_data("abc"), Value::Str("abc".into()));
    }

    #[test]
    fn numeric_comparison_beats_lexicographic() {
        let a = Value::from_data("10");
        let b = Value::from_data("9");
        assert_eq!(a.compare(&b), Some(Ordering::Greater));
        // As raw strings "10" < "9" lexicographically; typed comparison must not do that.
        assert_ne!(a.render().cmp(&b.render()), Ordering::Greater);
    }

    #[test]
    fn string_and_number_equality_is_numeric_when_possible() {
        assert_eq!(Value::Str("3".into()), Value::Int(3));
        assert_ne!(Value::Str("3a".into()), Value::Int(3));
    }

    #[test]
    fn null_semantics() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Null.compare(&Value::Int(1)), None);
    }

    #[test]
    fn render_roundtrips_ints_and_floats() {
        assert_eq!(Value::Int(7).render(), "7");
        assert_eq!(Value::Float(7.0).render(), "7");
        assert_eq!(Value::Float(7.25).render(), "7.25");
        assert_eq!(Value::Bool(false).render(), "false");
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::Int(3));
        assert!(set.contains(&Value::Str("3".into())));
        assert!(set.contains(&Value::Float(3.0)));
        assert!(!set.contains(&Value::Int(4)));
    }

    #[test]
    fn ordering_of_strings_is_lexicographic() {
        assert_eq!(
            Value::str("apple").compare(&Value::str("banana")),
            Some(Ordering::Less)
        );
    }
}
