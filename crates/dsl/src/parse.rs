//! Parser for the textual DSL syntax produced by [`crate::pretty`].
//!
//! This is not required by the synthesis algorithm itself; it exists so that programs
//! can be stored in files, round-tripped in tests, and written by hand in examples.
//! The grammar accepted is exactly the output of the pretty printer:
//!
//! ```text
//! program   := "\tau." "filter(" table "," "\t." pred ")"
//! table     := lambda ("x" lambda)*
//! lambda    := "(\s." column "){root(tau)}"
//! column    := "s" | ident "(" column "," ident ["," int] ")"
//! pred      := or
//! or        := and ("||" and)*
//! and       := unary ("&&" unary)*
//! unary     := "!" unary | "(" pred ")" | atom | "true" | "false"
//! atom      := "((\n." node ") t[" int "])" cmp rhs
//! node      := "n" | "parent(" node ")" | "child(" node "," ident "," int ")"
//! rhs       := quoted-string | "((\n." node ") t[" int "])"
//! ```

use crate::ast::{
    ColumnExtractor, CompareOp, NodeExtractor, Operand, Predicate, Program, TableExtractor,
};
use crate::value::Value;

/// Maximum nesting depth of the recursive-descent productions (`children(…)`,
/// `parent(…)`, `!…`, parenthesized predicates).  Synthesized programs are a few
/// levels deep; adversarial text like `!!!!…true` would otherwise overflow the
/// parser's call stack (an abort, not a catchable panic).
pub const MAX_PARSE_DEPTH: usize = 10_000;

/// Error type for DSL text parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the failure.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DSL parse error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a full program from its textual form.
pub fn parse_program(input: &str) -> Result<Program, ParseError> {
    let mut p = P::new(input);
    p.ws();
    p.expect("\\tau.")?;
    p.ws();
    p.expect("filter(")?;
    let table = p.parse_table()?;
    p.ws();
    p.expect(",")?;
    p.ws();
    p.expect("\\t.")?;
    let pred = p.parse_pred()?;
    p.ws();
    p.expect(")")?;
    p.ws();
    if !p.done() {
        return Err(p.err("trailing input after program"));
    }
    Ok(Program::new(table, pred))
}

/// Parses a column extractor written in the `children(s, tag)` style.
pub fn parse_column_extractor(input: &str) -> Result<ColumnExtractor, ParseError> {
    let mut p = P::new(input);
    p.ws();
    let c = p.parse_column()?;
    p.ws();
    if !p.done() {
        return Err(p.err("trailing input after column extractor"));
    }
    Ok(c)
}

/// Parses a predicate written in the pretty-printer syntax.
pub fn parse_predicate(input: &str) -> Result<Predicate, ParseError> {
    let mut p = P::new(input);
    let pred = p.parse_pred()?;
    p.ws();
    if !p.done() {
        return Err(p.err("trailing input after predicate"));
    }
    Ok(pred)
}

struct P<'a> {
    input: &'a str,
    pos: usize,
    /// Current recursion depth across extractor/predicate nesting.
    depth: usize,
}

impl<'a> P<'a> {
    fn new(input: &'a str) -> Self {
        P {
            input,
            pos: 0,
            depth: 0,
        }
    }

    /// Charges one level of nesting; typed error past [`MAX_PARSE_DEPTH`].
    fn enter(&mut self) -> Result<(), ParseError> {
        if self.depth >= MAX_PARSE_DEPTH {
            return Err(self.err(format!("nesting depth limit ({MAX_PARSE_DEPTH}) exceeded")));
        }
        self.depth += 1;
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn done(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            message: msg.into(),
            offset: self.pos,
        }
    }

    fn ws(&mut self) {
        while self.rest().starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.rest().starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{s}'")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while self.rest().starts_with(|c: char| {
            c.is_alphanumeric() || c == '_' || c == '-' || c == ':' || c == '.'
        }) {
            // `starts_with` just matched, so a character is there; default to a
            // 1-byte step rather than panic if that ever stops holding.
            self.pos += self.rest().chars().next().map_or(1, char::len_utf8);
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn integer(&mut self) -> Result<usize, ParseError> {
        let start = self.pos;
        while self.rest().starts_with(|c: char| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected integer"));
        }
        self.input[start..self.pos]
            .parse()
            .map_err(|_| self.err("integer out of range"))
    }

    fn parse_table(&mut self) -> Result<TableExtractor, ParseError> {
        let mut cols = vec![self.parse_lambda()?];
        loop {
            self.ws();
            let save = self.pos;
            if self.eat("x") {
                self.ws();
                if self.rest().starts_with("(\\s.") {
                    cols.push(self.parse_lambda()?);
                    continue;
                }
                self.pos = save;
            }
            break;
        }
        Ok(TableExtractor::new(cols))
    }

    fn parse_lambda(&mut self) -> Result<ColumnExtractor, ParseError> {
        self.ws();
        self.expect("(\\s.")?;
        let c = self.parse_column()?;
        self.expect("){root(tau)}")?;
        Ok(c)
    }

    fn parse_column(&mut self) -> Result<ColumnExtractor, ParseError> {
        self.enter()?;
        let column = self.parse_column_inner();
        self.leave();
        column
    }

    fn parse_column_inner(&mut self) -> Result<ColumnExtractor, ParseError> {
        self.ws();
        if self.eat("children(") {
            let inner = self.parse_column()?;
            self.expect(",")?;
            self.ws();
            let tag = self.ident()?;
            self.expect(")")?;
            return Ok(ColumnExtractor::children(inner, tag));
        }
        if self.eat("pchildren(") {
            let inner = self.parse_column()?;
            self.expect(",")?;
            self.ws();
            let tag = self.ident()?;
            self.expect(",")?;
            self.ws();
            let pos = self.integer()?;
            self.expect(")")?;
            return Ok(ColumnExtractor::pchildren(inner, tag, pos));
        }
        if self.eat("descendants(") {
            let inner = self.parse_column()?;
            self.expect(",")?;
            self.ws();
            let tag = self.ident()?;
            self.expect(")")?;
            return Ok(ColumnExtractor::descendants(inner, tag));
        }
        if self.eat("s") {
            return Ok(ColumnExtractor::Input);
        }
        Err(self.err("expected column extractor"))
    }

    fn parse_node(&mut self) -> Result<NodeExtractor, ParseError> {
        self.enter()?;
        let node = self.parse_node_inner();
        self.leave();
        node
    }

    fn parse_node_inner(&mut self) -> Result<NodeExtractor, ParseError> {
        self.ws();
        if self.eat("parent(") {
            let inner = self.parse_node()?;
            self.expect(")")?;
            return Ok(NodeExtractor::parent(inner));
        }
        if self.eat("child(") {
            let inner = self.parse_node()?;
            self.expect(",")?;
            self.ws();
            let tag = self.ident()?;
            self.expect(",")?;
            self.ws();
            let pos = self.integer()?;
            self.expect(")")?;
            return Ok(NodeExtractor::child(inner, tag, pos));
        }
        if self.eat("n") {
            return Ok(NodeExtractor::Id);
        }
        Err(self.err("expected node extractor"))
    }

    fn parse_pred(&mut self) -> Result<Predicate, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.parse_and()?;
        loop {
            self.ws();
            if self.eat("||") {
                let right = self.parse_and()?;
                left = Predicate::Or(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_and(&mut self) -> Result<Predicate, ParseError> {
        let mut left = self.parse_unary()?;
        loop {
            self.ws();
            if self.eat("&&") {
                let right = self.parse_unary()?;
                left = Predicate::And(Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn parse_unary(&mut self) -> Result<Predicate, ParseError> {
        self.enter()?;
        let pred = self.parse_unary_inner();
        self.leave();
        pred
    }

    fn parse_unary_inner(&mut self) -> Result<Predicate, ParseError> {
        self.ws();
        if self.eat("!") {
            let inner = self.parse_unary()?;
            return Ok(Predicate::Not(Box::new(inner)));
        }
        if self.eat("true") {
            return Ok(Predicate::True);
        }
        if self.eat("false") {
            return Ok(Predicate::False);
        }
        if self.rest().starts_with("((\\n.") {
            return self.parse_atom();
        }
        if self.eat("(") {
            let inner = self.parse_pred()?;
            self.ws();
            self.expect(")")?;
            return Ok(inner);
        }
        Err(self.err("expected predicate"))
    }

    fn parse_accessor(&mut self) -> Result<(NodeExtractor, usize), ParseError> {
        self.expect("((\\n.")?;
        let node = self.parse_node()?;
        self.expect(") t[")?;
        let idx = self.integer()?;
        self.expect("])")?;
        Ok((node, idx))
    }

    fn parse_atom(&mut self) -> Result<Predicate, ParseError> {
        let (extractor, index) = self.parse_accessor()?;
        self.ws();
        let op = self.parse_op()?;
        self.ws();
        let rhs = if self.rest().starts_with("((\\n.") {
            let (e2, j) = self.parse_accessor()?;
            Operand::Column {
                extractor: e2,
                index: j,
            }
        } else if self.rest().starts_with('"') {
            Operand::Const(Value::from_data(&self.quoted_string()?))
        } else {
            return Err(self.err("expected constant or tuple accessor on the right-hand side"));
        };
        Ok(Predicate::Compare {
            extractor,
            index,
            op,
            rhs,
        })
    }

    fn parse_op(&mut self) -> Result<CompareOp, ParseError> {
        for (sym, op) in [
            ("!=", CompareOp::Ne),
            ("<=", CompareOp::Le),
            (">=", CompareOp::Ge),
            ("=", CompareOp::Eq),
            ("<", CompareOp::Lt),
            (">", CompareOp::Gt),
        ] {
            if self.eat(sym) {
                return Ok(op);
            }
        }
        Err(self.err("expected comparison operator"))
    }

    fn quoted_string(&mut self) -> Result<String, ParseError> {
        self.expect("\"")?;
        let mut out = String::new();
        loop {
            let Some(c) = self.rest().chars().next() else {
                return Err(self.err("unterminated string constant"));
            };
            self.pos += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let Some(esc) = self.rest().chars().next() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += esc.len_utf8();
                    out.push(esc);
                }
                c => out.push(c),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pretty;

    #[test]
    fn parses_column_extractors() {
        let c = parse_column_extractor("pchildren(children(s, Person), name, 0)").unwrap();
        assert_eq!(
            pretty::column_extractor(&c),
            "pchildren(children(s, Person), name, 0)"
        );
        assert!(parse_column_extractor("nonsense(s)").is_err());
    }

    #[test]
    fn parses_predicates_and_respects_precedence() {
        let p = parse_predicate(
            "((\\n.parent(n)) t[0]) = ((\\n.parent(parent(n))) t[1]) || ((\\n.n) t[0]) < \"20\" && !false",
        )
        .unwrap();
        // && binds tighter than ||
        match p {
            Predicate::Or(_, rhs) => match *rhs {
                Predicate::And(_, _) => {}
                other => panic!("expected And on the rhs, got {other:?}"),
            },
            other => panic!("expected Or at the top, got {other:?}"),
        }
    }

    #[test]
    fn program_roundtrips_through_pretty_printer() {
        let text = "\\tau. filter((\\s.pchildren(children(s, Person), name, 0)){root(tau)} x (\\s.children(s, Person)){root(tau)}, \\t. ((\\n.child(parent(n), id, 0)) t[0]) = ((\\n.n) t[1]))";
        let prog = parse_program(text).unwrap();
        let printed = pretty::program(&prog);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(prog, reparsed);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_predicate("true extra").is_err());
        assert!(parse_program("\\tau. filter((\\s.s){root(tau)}, \\t. true) junk").is_err());
    }

    #[test]
    fn depth_limit_is_a_typed_error_not_a_crash() {
        // Recursing to the 10k bound needs more stack than the default 2 MiB
        // test thread; the production guard exists precisely so callers never
        // reach the overflow.
        std::thread::Builder::new()
            .stack_size(64 * 1024 * 1024)
            .spawn(|| {
                let deep = format!("{}true", "!".repeat(MAX_PARSE_DEPTH + 1));
                let err = parse_predicate(&deep).expect_err("must hit the depth limit");
                assert!(err.message.contains("depth limit"), "{}", err.message);
                let ok = format!("{}true", "!".repeat(64));
                assert!(parse_predicate(&ok).is_ok());
            })
            .expect("spawn big-stack thread")
            .join()
            .expect("no panic");
    }

    #[test]
    fn parses_constants_with_escapes() {
        let p = parse_predicate("((\\n.n) t[0]) = \"a\\\"b\"").unwrap();
        match p {
            Predicate::Compare {
                rhs: Operand::Const(v),
                ..
            } => {
                assert_eq!(v.render(), "a\"b");
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
