//! The heuristic cost function θ (Section 6, Occam's razor ranking).
//!
//! Given two candidate programs, the one with fewer atomic predicates wins; ties are
//! broken by the number of constructs used in the column extractors, then by the total
//! size of node extractors inside predicates (a refinement that keeps ranking
//! deterministic).

use crate::ast::{Operand, Predicate, Program};

/// A program cost.  Lower is simpler/better.  Ordering is lexicographic over
/// `(atomic predicates, column-extractor constructs, node-extractor steps)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Cost {
    /// Number of atomic predicate occurrences in φ (primary criterion).
    pub atoms: usize,
    /// Total number of constructs in the column extractors (secondary criterion).
    pub extractor_constructs: usize,
    /// Total number of parent/child steps inside predicate node extractors (tie break).
    pub node_extractor_steps: usize,
}

impl Cost {
    /// The maximum possible cost; useful as the initial value of a running minimum
    /// (plays the role of θ(⊥) = ∞ in Algorithm 1).
    pub const MAX: Cost = Cost {
        atoms: usize::MAX,
        extractor_constructs: usize::MAX,
        node_extractor_steps: usize::MAX,
    };

    /// An admissible lower bound on the cost of any program whose predicate has at
    /// least `atoms` atoms and whose table extractor has at least
    /// `extractor_constructs` constructs: the best-first search compares incumbents
    /// against these bounds to prune combos and to prove minimality at termination.
    ///
    /// Admissibility rests on θ being lexicographic with non-negative components —
    /// zeroing the `node_extractor_steps` tie-break can only under-estimate.
    pub const fn lower_bound(atoms: usize, extractor_constructs: usize) -> Cost {
        Cost {
            atoms,
            extractor_constructs,
            node_extractor_steps: 0,
        }
    }
}

/// Computes θ(P).
pub fn cost(program: &Program) -> Cost {
    Cost {
        atoms: program.predicate.atom_count(),
        extractor_constructs: program.extractor.size(),
        node_extractor_steps: predicate_extractor_steps(&program.predicate),
    }
}

fn predicate_extractor_steps(p: &Predicate) -> usize {
    match p {
        Predicate::True | Predicate::False => 0,
        Predicate::Compare { extractor, rhs, .. } => {
            extractor.size()
                + match rhs {
                    Operand::Const(_) => 0,
                    Operand::Column { extractor, .. } => extractor.size(),
                }
        }
        Predicate::And(a, b) | Predicate::Or(a, b) => {
            predicate_extractor_steps(a) + predicate_extractor_steps(b)
        }
        Predicate::Not(a) => predicate_extractor_steps(a),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{ColumnExtractor, CompareOp, NodeExtractor, TableExtractor};
    use crate::value::Value;

    fn simple_program(n_atoms: usize, extractor_depth: usize) -> Program {
        let mut pi = ColumnExtractor::Input;
        for i in 0..extractor_depth {
            pi = ColumnExtractor::children(pi, format!("t{i}"));
        }
        let atom = Predicate::Compare {
            extractor: NodeExtractor::Id,
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Const(Value::int(1)),
        };
        let mut pred = Predicate::True;
        for _ in 0..n_atoms {
            pred = Predicate::and(pred, atom.clone());
        }
        Program::new(TableExtractor::new(vec![pi]), pred)
    }

    #[test]
    fn fewer_atoms_always_wins() {
        let p1 = simple_program(1, 10);
        let p2 = simple_program(2, 1);
        assert!(cost(&p1) < cost(&p2));
    }

    #[test]
    fn ties_broken_by_extractor_size() {
        let p1 = simple_program(2, 1);
        let p2 = simple_program(2, 3);
        assert!(cost(&p1) < cost(&p2));
    }

    #[test]
    fn max_cost_is_greater_than_any_real_cost() {
        let p = simple_program(5, 5);
        assert!(cost(&p) < Cost::MAX);
    }

    #[test]
    fn node_extractor_steps_counted() {
        let deep = Predicate::Compare {
            extractor: NodeExtractor::parent(NodeExtractor::parent(NodeExtractor::Id)),
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::child(NodeExtractor::Id, "x", 0),
                index: 1,
            },
        };
        let shallow = Predicate::Compare {
            extractor: NodeExtractor::Id,
            index: 0,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::Id,
                index: 1,
            },
        };
        let psi = TableExtractor::new(vec![ColumnExtractor::Input, ColumnExtractor::Input]);
        let c_deep = cost(&Program::new(psi.clone(), deep));
        let c_shallow = cost(&Program::new(psi, shallow));
        assert!(c_shallow < c_deep);
    }
}
