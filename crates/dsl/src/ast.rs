//! Abstract syntax of the tree-to-table DSL (Figure 6).
//!
//! Tags inside extractors are interned [`TagId`]s, so comparing or hashing AST nodes
//! (in particular [`ExtractorStep`], the DFA alphabet of Figure 9) operates on `u32`s.
//! The constructors accept anything convertible into a `TagId` (including `&str`,
//! which interns through the global interner), and tag *names* are resolved back to
//! strings only at the string boundary (pretty-printing, parsing, code generation).

use crate::value::Value;
use mitra_hdt::TagId;

/// Comparison operators usable in predicates (the ⊙ of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Strictly less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Strictly greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CompareOp {
    /// All operators, in a stable order (used by predicate-universe enumeration).
    pub const ALL: [CompareOp; 6] = [
        CompareOp::Eq,
        CompareOp::Ne,
        CompareOp::Lt,
        CompareOp::Le,
        CompareOp::Gt,
        CompareOp::Ge,
    ];

    /// Applies the operator to an `Ordering`-like comparison result.
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CompareOp::Eq => ord == Equal,
            CompareOp::Ne => ord != Equal,
            CompareOp::Lt => ord == Less,
            CompareOp::Le => ord != Greater,
            CompareOp::Gt => ord == Greater,
            CompareOp::Ge => ord != Less,
        }
    }

    /// The textual symbol used by the pretty printer.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

/// Column extractor π: maps a set of nodes to a set of nodes by walking the tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ColumnExtractor {
    /// The identity extractor `s` (returns the input node set).
    Input,
    /// `children(π, tag)` — all children with the given tag.
    Children {
        /// Inner extractor applied first.
        inner: Box<ColumnExtractor>,
        /// Tag to select.
        tag: TagId,
    },
    /// `pchildren(π, tag, pos)` — children with the given tag *and* position.
    PChildren {
        /// Inner extractor applied first.
        inner: Box<ColumnExtractor>,
        /// Tag to select.
        tag: TagId,
        /// Position among same-tag siblings.
        pos: usize,
    },
    /// `descendants(π, tag)` — all descendants with the given tag.
    Descendants {
        /// Inner extractor applied first.
        inner: Box<ColumnExtractor>,
        /// Tag to select.
        tag: TagId,
    },
}

impl ColumnExtractor {
    /// Convenience constructor for `children(inner, tag)`.
    pub fn children(inner: ColumnExtractor, tag: impl Into<TagId>) -> Self {
        ColumnExtractor::Children {
            inner: Box::new(inner),
            tag: tag.into(),
        }
    }

    /// Convenience constructor for `pchildren(inner, tag, pos)`.
    pub fn pchildren(inner: ColumnExtractor, tag: impl Into<TagId>, pos: usize) -> Self {
        ColumnExtractor::PChildren {
            inner: Box::new(inner),
            tag: tag.into(),
            pos,
        }
    }

    /// Convenience constructor for `descendants(inner, tag)`.
    pub fn descendants(inner: ColumnExtractor, tag: impl Into<TagId>) -> Self {
        ColumnExtractor::Descendants {
            inner: Box::new(inner),
            tag: tag.into(),
        }
    }

    /// Builds an extractor from a sequence of [`ExtractorStep`]s applied to the input.
    pub fn from_steps(steps: &[ExtractorStep]) -> Self {
        let mut cur = ColumnExtractor::Input;
        for s in steps {
            cur = match s {
                ExtractorStep::Children(tag) => ColumnExtractor::children(cur, *tag),
                ExtractorStep::PChildren(tag, pos) => ColumnExtractor::pchildren(cur, *tag, *pos),
                ExtractorStep::Descendants(tag) => ColumnExtractor::descendants(cur, *tag),
            };
        }
        cur
    }

    /// Flattens the extractor into the sequence of steps applied to the input set.
    pub fn steps(&self) -> Vec<ExtractorStep> {
        let mut out = Vec::new();
        self.collect_steps(&mut out);
        out
    }

    fn collect_steps(&self, out: &mut Vec<ExtractorStep>) {
        match self {
            ColumnExtractor::Input => {}
            ColumnExtractor::Children { inner, tag } => {
                inner.collect_steps(out);
                out.push(ExtractorStep::Children(*tag));
            }
            ColumnExtractor::PChildren { inner, tag, pos } => {
                inner.collect_steps(out);
                out.push(ExtractorStep::PChildren(*tag, *pos));
            }
            ColumnExtractor::Descendants { inner, tag } => {
                inner.collect_steps(out);
                out.push(ExtractorStep::Descendants(*tag));
            }
        }
    }

    /// Number of constructs (operators) used — the secondary component of the cost θ.
    pub fn size(&self) -> usize {
        match self {
            ColumnExtractor::Input => 0,
            ColumnExtractor::Children { inner, .. }
            | ColumnExtractor::PChildren { inner, .. }
            | ColumnExtractor::Descendants { inner, .. } => 1 + inner.size(),
        }
    }

    /// Tag selected by the *last* step of the extractor (`None` for the identity).
    /// Every node the extractor can produce carries this tag, so the tag's
    /// occurrence-list length bounds the column cardinality — the basis of the query
    /// planner's cost estimates.
    pub fn last_tag(&self) -> Option<TagId> {
        match self {
            ColumnExtractor::Input => None,
            ColumnExtractor::Children { tag, .. }
            | ColumnExtractor::PChildren { tag, .. }
            | ColumnExtractor::Descendants { tag, .. } => Some(*tag),
        }
    }
}

/// One step of a column extractor, i.e. one letter of the DFA alphabet (Figure 9).
///
/// Letters hold interned [`TagId`]s, so hashing a letter (and therefore hashing DFA
/// transition maps and product states) hashes `u32`s, never strings.  The derived
/// `Ord` follows interning order; alphabet construction sorts by tag *name* where
/// deterministic lexicographic enumeration matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExtractorStep {
    /// `children_tag`
    Children(TagId),
    /// `pchildren_{tag,pos}`
    PChildren(TagId, usize),
    /// `descendants_tag`
    Descendants(TagId),
}

/// Table extractor ψ: the cross product of column extractors, each applied to
/// `{root(τ)}`.
///
/// The paper's grammar allows arbitrary nesting `ψ1 × ψ2`; since × is associative we
/// normalize to a flat list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableExtractor {
    /// One column extractor per output column, in column order.
    pub columns: Vec<ColumnExtractor>,
}

impl TableExtractor {
    /// Creates a table extractor from its per-column extractors.
    pub fn new(columns: Vec<ColumnExtractor>) -> Self {
        TableExtractor { columns }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Total construct count across all column extractors.
    pub fn size(&self) -> usize {
        self.columns.iter().map(ColumnExtractor::size).sum()
    }
}

/// Node extractor ϕ: maps one node to another by following parent/child edges.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeExtractor {
    /// The identity extractor `n`.
    Id,
    /// `parent(ϕ)`.
    Parent(Box<NodeExtractor>),
    /// `child(ϕ, tag, pos)`.
    Child {
        /// Inner extractor applied first.
        inner: Box<NodeExtractor>,
        /// Tag of the child to follow.
        tag: TagId,
        /// Position of the child to follow.
        pos: usize,
    },
}

impl NodeExtractor {
    /// Convenience constructor for `parent(inner)`.
    pub fn parent(inner: NodeExtractor) -> Self {
        NodeExtractor::Parent(Box::new(inner))
    }

    /// Convenience constructor for `child(inner, tag, pos)`.
    pub fn child(inner: NodeExtractor, tag: impl Into<TagId>, pos: usize) -> Self {
        NodeExtractor::Child {
            inner: Box::new(inner),
            tag: tag.into(),
            pos,
        }
    }

    /// Number of parent/child steps.
    pub fn size(&self) -> usize {
        match self {
            NodeExtractor::Id => 0,
            NodeExtractor::Parent(inner) => 1 + inner.size(),
            NodeExtractor::Child { inner, .. } => 1 + inner.size(),
        }
    }

    /// If the extractor is a pure parent chain `parent^q(n)`, returns `q` (`Some(0)`
    /// for the identity).  Returns `None` as soon as a `child` step appears.  The
    /// query planner uses this to recognize join constraints that are really
    /// ancestor/descendant relations and compile them to pre-order interval joins.
    pub fn parent_chain_depth(&self) -> Option<usize> {
        match self {
            NodeExtractor::Id => Some(0),
            NodeExtractor::Parent(inner) => inner.parent_chain_depth().map(|q| q + 1),
            NodeExtractor::Child { .. } => None,
        }
    }
}

/// The right-hand side of an atomic predicate comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A constant value `c`.
    Const(Value),
    /// Another tuple component `(λn.ϕ) t[j]`.
    Column {
        /// Node extractor applied to the tuple component.
        extractor: NodeExtractor,
        /// Index of the tuple component.
        index: usize,
    },
}

/// Predicates φ used by the top-level `filter`.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Constantly true (the neutral element for ∧; `filter(ψ, true)` keeps all rows).
    True,
    /// Constantly false.
    False,
    /// Atomic comparison `((λn.ϕ) t[i]) ⊙ rhs`.
    Compare {
        /// Node extractor applied to tuple component `index`.
        extractor: NodeExtractor,
        /// Index `i` of the tuple component on the left-hand side.
        index: usize,
        /// The comparison operator ⊙.
        op: CompareOp,
        /// The right-hand side (constant or another extracted node).
        rhs: Operand,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Builds `a ∧ b`, simplifying `True` operands away.
    pub fn and(a: Predicate, b: Predicate) -> Predicate {
        match (a, b) {
            (Predicate::True, x) | (x, Predicate::True) => x,
            (Predicate::False, _) | (_, Predicate::False) => Predicate::False,
            (x, y) => Predicate::And(Box::new(x), Box::new(y)),
        }
    }

    /// Builds `a ∨ b`, simplifying `False` operands away.
    pub fn or(a: Predicate, b: Predicate) -> Predicate {
        match (a, b) {
            (Predicate::False, x) | (x, Predicate::False) => x,
            (Predicate::True, _) | (_, Predicate::True) => Predicate::True,
            (x, y) => Predicate::Or(Box::new(x), Box::new(y)),
        }
    }

    /// Builds `¬a`, collapsing double negation and constants.
    // Not the `Not` trait: this is an associated constructor taking the operand by
    // value, part of the `and`/`or`/`not` smart-constructor family.
    #[allow(clippy::should_implement_trait)]
    pub fn not(a: Predicate) -> Predicate {
        match a {
            Predicate::True => Predicate::False,
            Predicate::False => Predicate::True,
            Predicate::Not(inner) => *inner,
            x => Predicate::Not(Box::new(x)),
        }
    }

    /// Conjunction over an iterator of predicates (`True` for an empty iterator).
    pub fn conjunction(preds: impl IntoIterator<Item = Predicate>) -> Predicate {
        preds.into_iter().fold(Predicate::True, Predicate::and)
    }

    /// Disjunction over an iterator of predicates (`False` for an empty iterator).
    pub fn disjunction(preds: impl IntoIterator<Item = Predicate>) -> Predicate {
        preds.into_iter().fold(Predicate::False, Predicate::or)
    }

    /// Number of atomic comparisons in the predicate — the primary component of the
    /// cost θ (Section 6).
    pub fn atom_count(&self) -> usize {
        match self {
            Predicate::True | Predicate::False => 0,
            Predicate::Compare { .. } => 1,
            Predicate::And(a, b) | Predicate::Or(a, b) => a.atom_count() + b.atom_count(),
            Predicate::Not(a) => a.atom_count(),
        }
    }

    /// Largest tuple-component index referenced anywhere in the predicate (`None`
    /// when no comparison references a component).  Code generators use this to hoist
    /// a guard to the shallowest loop depth at which all its components are bound.
    pub fn max_column_index(&self) -> Option<usize> {
        match self {
            Predicate::True | Predicate::False => None,
            Predicate::Compare { index, rhs, .. } => {
                let mut max = *index;
                if let Operand::Column { index: j, .. } = rhs {
                    max = max.max(*j);
                }
                Some(max)
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                match (a.max_column_index(), b.max_column_index()) {
                    (Some(x), Some(y)) => Some(x.max(y)),
                    (x, y) => x.or(y),
                }
            }
            Predicate::Not(a) => a.max_column_index(),
        }
    }

    /// Collects the distinct atomic comparisons appearing in the predicate.
    pub fn atoms(&self) -> Vec<Predicate> {
        let mut out = Vec::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms(&self, out: &mut Vec<Predicate>) {
        match self {
            Predicate::True | Predicate::False => {}
            Predicate::Compare { .. } => {
                if !out.contains(self) {
                    out.push(self.clone());
                }
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.collect_atoms(out);
                b.collect_atoms(out);
            }
            Predicate::Not(a) => a.collect_atoms(out),
        }
    }

    /// Converts the predicate to conjunctive normal form (list of clauses, each clause
    /// a list of literals).  Used by the Appendix C optimizer.
    pub fn to_cnf(&self) -> Vec<Vec<Predicate>> {
        match self {
            Predicate::True => vec![],
            Predicate::False => vec![vec![]],
            Predicate::Compare { .. } => vec![vec![self.clone()]],
            Predicate::Not(inner) => match inner.as_ref() {
                Predicate::Compare { .. } => vec![vec![self.clone()]],
                Predicate::True => vec![vec![]],
                Predicate::False => vec![],
                Predicate::Not(x) => x.to_cnf(),
                Predicate::And(a, b) => {
                    Predicate::or(Predicate::not(*a.clone()), Predicate::not(*b.clone())).to_cnf()
                }
                Predicate::Or(a, b) => {
                    Predicate::and(Predicate::not(*a.clone()), Predicate::not(*b.clone())).to_cnf()
                }
            },
            Predicate::And(a, b) => {
                let mut out = a.to_cnf();
                out.extend(b.to_cnf());
                out
            }
            Predicate::Or(a, b) => {
                // Distribute: (A1∧…∧An) ∨ (B1∧…∧Bm) = ∧_{i,j} (Ai ∨ Bj)
                let ca = a.to_cnf();
                let cb = b.to_cnf();
                if ca.is_empty() {
                    return vec![];
                }
                if cb.is_empty() {
                    return vec![];
                }
                let mut out = Vec::with_capacity(ca.len() * cb.len());
                for x in &ca {
                    for y in &cb {
                        let mut clause = x.clone();
                        clause.extend(y.clone());
                        out.push(clause);
                    }
                }
                out
            }
        }
    }
}

/// A complete DSL program `λτ. filter(ψ, λt. φ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The table extractor whose cross product overapproximates the output table.
    pub extractor: TableExtractor,
    /// The row-filtering predicate.
    pub predicate: Predicate,
    /// Optional column names for the produced table.
    pub column_names: Vec<String>,
}

impl Program {
    /// Creates a program with anonymous output columns.
    pub fn new(extractor: TableExtractor, predicate: Predicate) -> Self {
        Program {
            extractor,
            predicate,
            column_names: Vec::new(),
        }
    }

    /// Output arity of the program.
    pub fn arity(&self) -> usize {
        self.extractor.arity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(i: usize) -> Predicate {
        Predicate::Compare {
            extractor: NodeExtractor::Id,
            index: i,
            op: CompareOp::Eq,
            rhs: Operand::Const(Value::int(1)),
        }
    }

    #[test]
    fn compare_op_test_table() {
        use std::cmp::Ordering::*;
        assert!(CompareOp::Eq.test(Equal));
        assert!(!CompareOp::Eq.test(Less));
        assert!(CompareOp::Ne.test(Greater));
        assert!(CompareOp::Lt.test(Less));
        assert!(CompareOp::Le.test(Equal));
        assert!(CompareOp::Gt.test(Greater));
        assert!(CompareOp::Ge.test(Equal));
        assert!(!CompareOp::Ge.test(Less));
    }

    #[test]
    fn extractor_steps_roundtrip() {
        let pi = ColumnExtractor::pchildren(
            ColumnExtractor::children(ColumnExtractor::Input, "Person"),
            "name",
            0,
        );
        let steps = pi.steps();
        assert_eq!(steps.len(), 2);
        assert_eq!(ColumnExtractor::from_steps(&steps), pi);
        assert_eq!(pi.size(), 2);
    }

    #[test]
    fn predicate_smart_constructors_simplify() {
        assert_eq!(Predicate::and(Predicate::True, atom(0)), atom(0));
        assert_eq!(Predicate::and(Predicate::False, atom(0)), Predicate::False);
        assert_eq!(Predicate::or(Predicate::False, atom(0)), atom(0));
        assert_eq!(Predicate::or(Predicate::True, atom(0)), Predicate::True);
        assert_eq!(Predicate::not(Predicate::not(atom(0))), atom(0));
    }

    #[test]
    fn atom_counting_and_collection() {
        let p = Predicate::and(atom(0), Predicate::or(atom(1), Predicate::not(atom(0))));
        assert_eq!(p.atom_count(), 3);
        assert_eq!(p.atoms().len(), 2); // distinct atoms
    }

    #[test]
    fn cnf_of_conjunction_is_clause_list() {
        let p = Predicate::and(atom(0), atom(1));
        let cnf = p.to_cnf();
        assert_eq!(cnf.len(), 2);
        assert_eq!(cnf[0].len(), 1);
    }

    #[test]
    fn cnf_distributes_or_over_and() {
        // a ∨ (b ∧ c)  =>  (a∨b) ∧ (a∨c)
        let p = Predicate::or(atom(0), Predicate::and(atom(1), atom(2)));
        let cnf = p.to_cnf();
        assert_eq!(cnf.len(), 2);
        assert!(cnf.iter().all(|clause| clause.len() == 2));
    }

    #[test]
    fn conjunction_disjunction_helpers() {
        assert_eq!(Predicate::conjunction(vec![]), Predicate::True);
        assert_eq!(Predicate::disjunction(vec![]), Predicate::False);
        let c = Predicate::conjunction(vec![atom(0), atom(1)]);
        assert_eq!(c.atom_count(), 2);
    }

    #[test]
    fn table_extractor_size_sums_columns() {
        let pi1 = ColumnExtractor::children(ColumnExtractor::Input, "a");
        let pi2 = ColumnExtractor::descendants(
            ColumnExtractor::children(ColumnExtractor::Input, "b"),
            "c",
        );
        let psi = TableExtractor::new(vec![pi1, pi2]);
        assert_eq!(psi.arity(), 2);
        assert_eq!(psi.size(), 3);
    }

    #[test]
    fn node_extractor_size() {
        let phi = NodeExtractor::child(NodeExtractor::parent(NodeExtractor::Id), "id", 0);
        assert_eq!(phi.size(), 2);
    }

    #[test]
    fn parent_chain_depth_recognizes_pure_chains() {
        assert_eq!(NodeExtractor::Id.parent_chain_depth(), Some(0));
        assert_eq!(
            NodeExtractor::parent(NodeExtractor::Id).parent_chain_depth(),
            Some(1)
        );
        assert_eq!(
            NodeExtractor::parent(NodeExtractor::parent(NodeExtractor::parent(
                NodeExtractor::Id
            )))
            .parent_chain_depth(),
            Some(3)
        );
        assert_eq!(
            NodeExtractor::child(NodeExtractor::Id, "id", 0).parent_chain_depth(),
            None
        );
        assert_eq!(
            NodeExtractor::parent(NodeExtractor::child(NodeExtractor::Id, "id", 0))
                .parent_chain_depth(),
            None
        );
    }

    #[test]
    fn last_tag_is_final_step_tag() {
        assert_eq!(ColumnExtractor::Input.last_tag(), None);
        let pi = ColumnExtractor::pchildren(
            ColumnExtractor::children(ColumnExtractor::Input, "Person"),
            "name",
            0,
        );
        assert_eq!(pi.last_tag(), Some(TagId::from("name")));
    }

    #[test]
    fn max_column_index_spans_both_sides() {
        assert_eq!(Predicate::True.max_column_index(), None);
        assert_eq!(atom(2).max_column_index(), Some(2));
        let join = Predicate::Compare {
            extractor: NodeExtractor::Id,
            index: 1,
            op: CompareOp::Eq,
            rhs: Operand::Column {
                extractor: NodeExtractor::Id,
                index: 3,
            },
        };
        assert_eq!(join.max_column_index(), Some(3));
        assert_eq!(
            Predicate::or(atom(0), Predicate::not(join)).max_column_index(),
            Some(3)
        );
    }
}
