//! Tag interning: [`Symbol`]/[`TagId`] and the [`Interner`].
//!
//! Every tag in the Mitra stack — XML element and attribute names, JSON keys, HTML
//! element names, synthetic generator tags — is interned into a small copyable
//! [`Symbol`] the moment it enters an [`crate::Hdt`] arena.  From that point on the
//! entire stack (the DSL AST, the evaluator, the synthesizer's DFA alphabet, the
//! predicate universe, the optimized executor) compares and hashes `u32`s instead of
//! heap-allocated strings; tag *names* reappear only at the string boundary (the DSL
//! parser/pretty-printer, code generation, and SQL emission).
//!
//! The stack uses one process-wide interner (see [`global`]), so `Symbol`s are
//! consistent across trees: a program synthesized against one document evaluates
//! against any other document without tag remapping.  The tag universe of real
//! documents is tiny compared to the documents themselves, so interned strings are
//! deliberately leaked (`Box::leak`) to hand out `&'static str` names without
//! lifetime plumbing.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, PoisonError, RwLock};

/// An interned string: a dense `u32` handle into the global [`Interner`].
///
/// Equality, ordering and hashing all operate on the handle.  Ordering follows
/// interning order (first-seen first), *not* lexicographic order of the names; code
/// that needs name order (e.g. deterministic alphabet enumeration) must sort by
/// [`Symbol::as_str`] explicitly.
///
/// [`Symbol::as_str`], `Display` and the `From<&str>` conversions all go through the
/// **global** interner.  A `Symbol` produced by a standalone [`Interner`] instance is
/// only meaningful to that instance and must be resolved with its
/// [`Interner::resolve`]; resolving it globally returns whatever string happens to
/// occupy the same slot there.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

/// The role `Symbol` plays throughout the tree layer: a node tag.
pub type TagId = Symbol;

impl Symbol {
    /// The raw interner handle.
    #[inline]
    pub fn id(self) -> u32 {
        self.0
    }

    /// Resolves the symbol to its string through the global interner.
    #[inline]
    pub fn as_str(self) -> &'static str {
        global().resolve(self)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({} {:?})", self.0, self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        global().intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Self {
        global().intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        global().intern(&s)
    }
}

#[derive(Default)]
struct InternerInner {
    /// `Symbol(i)` resolves to `strings[i]`.
    strings: Vec<&'static str>,
    /// Reverse map for interning.
    map: HashMap<&'static str, u32>,
}

/// A thread-safe append-only string interner.
///
/// Reads (the common case: a string that is already interned, or resolving a symbol)
/// take a shared lock; only the first interning of a new string takes the exclusive
/// lock.  Interned strings are leaked so that [`Interner::resolve`] can return
/// `&'static str`.
///
/// The whole Mitra stack uses the [`global`] instance, which is what makes `TagId`s
/// comparable across trees and programs.  Standalone instances exist for isolation
/// (tests, tools): their symbols are scoped to the instance that minted them —
/// resolve those through [`Interner::resolve`] on the same instance, never through
/// [`Symbol::as_str`]/`Display` (which consult the global table).
#[derive(Default)]
pub struct Interner {
    inner: RwLock<InternerInner>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Interner::default()
    }

    /// Interns a string, returning its symbol (idempotent).
    ///
    /// Lock poisoning is recovered rather than propagated: the table is
    /// append-only and both `strings` and `map` are pushed in a fixed order, so
    /// a panic elsewhere while a guard was held cannot leave a half-written
    /// entry visible (the worst case is re-interning an in-flight string, which
    /// the double-check below resolves).
    pub fn intern(&self, s: &str) -> Symbol {
        if let Some(&id) = self
            .inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .get(s)
        {
            return Symbol(id);
        }
        let mut inner = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        // Double-check: another thread may have interned `s` between the locks.
        if let Some(&id) = inner.map.get(s) {
            return Symbol(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = match u32::try_from(inner.strings.len()) {
            Ok(id) => id,
            Err(_) => panic!("interner overflow: more than u32::MAX distinct tags"),
        };
        inner.strings.push(leaked);
        inner.map.insert(leaked, id);
        Symbol(id)
    }

    /// Resolves a symbol to its string.  Unknown handles (symbols minted by a
    /// different interner) resolve to a sentinel instead of panicking.
    pub fn resolve(&self, sym: Symbol) -> &'static str {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .strings
            .get(sym.0 as usize)
            .copied()
            .unwrap_or("<unknown-symbol>")
    }

    /// Looks a string up without interning it.
    pub fn lookup(&self, s: &str) -> Option<Symbol> {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .map
            .get(s)
            .map(|&id| Symbol(id))
    }

    /// Number of distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.inner
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .strings
            .len()
    }

    /// True when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interner({} symbols)", self.len())
    }
}

static GLOBAL: OnceLock<Interner> = OnceLock::new();

/// The process-wide interner used by the whole Mitra stack.
pub fn global() -> &'static Interner {
    GLOBAL.get_or_init(Interner::new)
}

/// Interns a string in the global interner.
#[inline]
pub fn intern(s: &str) -> Symbol {
    global().intern(s)
}

/// Resolves a symbol through the global interner.
#[inline]
pub fn resolve(sym: Symbol) -> &'static str {
    global().resolve(sym)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_roundtrips() {
        let a = intern("Person");
        let b = intern("Person");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "Person");
        assert_eq!(resolve(a), "Person");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = intern("alpha-tag");
        let b = intern("beta-tag");
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn from_impls_intern_globally() {
        let a: Symbol = "gamma-tag".into();
        let b: Symbol = String::from("gamma-tag").into();
        let owned = String::from("gamma-tag");
        let c: Symbol = (&owned).into();
        assert_eq!(a, b);
        assert_eq!(b, c);
    }

    #[test]
    fn local_interner_is_independent() {
        let local = Interner::new();
        assert!(local.is_empty());
        let s = local.intern("only-local");
        assert_eq!(local.resolve(s), "only-local");
        assert_eq!(local.lookup("only-local"), Some(s));
        assert_eq!(local.lookup("never-seen"), None);
        assert_eq!(local.len(), 1);
    }

    #[test]
    fn unknown_symbols_resolve_to_sentinel() {
        let local = Interner::new();
        assert_eq!(local.resolve(Symbol(999_999)), "<unknown-symbol>");
    }

    #[test]
    fn display_and_debug_show_the_name() {
        let s = intern("display-me");
        assert_eq!(format!("{s}"), "display-me");
        assert!(format!("{s:?}").contains("display-me"));
    }
}
