//! From-scratch lenient HTML parsing and the HTML→HDT mapping.
//!
//! Section 6 of the paper notes that Mitra "can be easily extended to handle other
//! forms of hierarchical documents (e.g., HTML and HDF) by implementing suitable
//! plug-ins".  This module is that HTML plug-in.  Unlike the [`crate::xml`] parser it
//! is deliberately forgiving, because real-world HTML rarely satisfies XML's
//! well-formedness rules:
//!
//! * tag names and attribute names are case-insensitive (normalized to lowercase);
//! * void elements (`<br>`, `<img>`, `<meta>`, ...) never take a closing tag;
//! * attributes may be unquoted (`width=80`) or value-less (`disabled`);
//! * a mismatched closing tag closes every open element up to the matching one, and a
//!   closing tag with no matching open element is ignored;
//! * `<li>`, `<p>`, `<td>`, `<tr>`, ... are implicitly closed by a new sibling, as in
//!   the HTML5 "optional tags" rules (a pragmatic subset, not the full algorithm);
//! * `<script>` and `<style>` contents are treated as raw text;
//! * comments and the doctype are skipped.
//!
//! The HDT mapping is the same as the XML one (Section 3): each element becomes an
//! internal node, each attribute becomes a leaf child tagged with the attribute name,
//! and text content becomes a leaf child tagged `text`.

use crate::error::{HdtError, Result, MAX_PARSE_DEPTH};
use crate::tree::Hdt;
use crate::NodeId;

/// A parsed HTML element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HtmlElement {
    /// Lowercased element name.
    pub name: String,
    /// Attributes in document order, names lowercased.  Value-less attributes get an
    /// empty-string value.
    pub attributes: Vec<(String, String)>,
    /// Child elements in document order.
    pub children: Vec<HtmlElement>,
    /// Concatenated, whitespace-trimmed text directly inside this element.
    pub text: Option<String>,
}

impl HtmlElement {
    /// Creates an element with the given (already lowercased) name and no content.
    pub fn new(name: impl Into<String>) -> Self {
        HtmlElement {
            name: name.into(),
            attributes: Vec::new(),
            children: Vec::new(),
            text: None,
        }
    }

    /// Returns the value of the named attribute, if present.
    pub fn attribute(&self, name: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Total number of elements in this subtree (including `self`).
    pub fn element_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(HtmlElement::element_count)
            .sum::<usize>()
    }
}

/// A parsed HTML document.
///
/// If the input has a single top-level element (usually `<html>`), that element is the
/// root; otherwise a synthetic `html` root wraps the top-level elements, so that a
/// fragment like `<table>...</table>` still maps to a single HDT.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HtmlDocument {
    /// The root element.
    pub root: HtmlElement,
}

impl HtmlDocument {
    /// Converts the document into a hierarchical data tree (Section 3 mapping).
    pub fn to_hdt(&self) -> Hdt {
        let mut tree = Hdt::with_root(&self.root.name);
        let root = tree.root();
        Self::fill(&mut tree, root, &self.root);
        tree
    }

    fn fill(tree: &mut Hdt, id: NodeId, elem: &HtmlElement) {
        // Same interning funnel as the XML plug-in: every tag goes through
        // `add_child` and the shared global interner.
        for (k, v) in &elem.attributes {
            tree.add_child(id, k, Some(v.clone()));
        }
        if let Some(t) = &elem.text {
            if !t.is_empty() {
                tree.add_child(id, "text", Some(t.clone()));
            }
        }
        for c in &elem.children {
            let cid = tree.add_child(id, &c.name, None);
            Self::fill(tree, cid, c);
        }
    }
}

/// Parses an HTML document or fragment.
pub fn parse_html(input: &str) -> Result<HtmlDocument> {
    let mut parser = Parser::new(input);
    let mut top = parser.parse_nodes()?;
    let root = match top.pop() {
        // `parse_nodes` never returns an empty list, but degrade to a typed
        // error rather than panic if that invariant ever breaks.
        None => {
            return Err(HdtError::Structure(
                "no elements found in HTML input".into(),
            ))
        }
        Some(only) if top.is_empty() => only,
        Some(last) => {
            top.push(last);
            let mut synthetic = HtmlElement::new("html");
            synthetic.children = top;
            synthetic
        }
    };
    Ok(HtmlDocument { root })
}

/// Parses an HTML document and immediately converts it to an HDT.
pub fn html_to_hdt(input: &str) -> Result<Hdt> {
    let _span = mitra_trace::span("ingest", "html_to_hdt");
    let tree = parse_html(input)?.to_hdt();
    mitra_trace::counter_add!("ingest.html.docs", 1);
    mitra_trace::counter_add!("ingest.html.nodes", tree.len() as u64);
    Ok(tree)
}

/// Elements that never have content or a closing tag.
const VOID_ELEMENTS: [&str; 14] = [
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Elements whose contents are raw text up to the matching closing tag.
const RAW_TEXT_ELEMENTS: [&str; 2] = ["script", "style"];

fn is_void(name: &str) -> bool {
    VOID_ELEMENTS.contains(&name)
}

fn is_raw_text(name: &str) -> bool {
    RAW_TEXT_ELEMENTS.contains(&name)
}

/// Returns true if opening `incoming` implicitly closes an open `open` element, per a
/// pragmatic subset of the HTML5 optional-tag rules.
fn implicitly_closes(open: &str, incoming: &str) -> bool {
    match open {
        "li" => incoming == "li",
        "p" => matches!(
            incoming,
            "p" | "div"
                | "ul"
                | "ol"
                | "table"
                | "section"
                | "article"
                | "h1"
                | "h2"
                | "h3"
                | "h4"
                | "h5"
                | "h6"
                | "blockquote"
                | "pre"
                | "form"
        ),
        "td" | "th" => matches!(incoming, "td" | "th" | "tr"),
        "tr" => incoming == "tr",
        "dt" | "dd" => matches!(incoming, "dt" | "dd"),
        "option" => matches!(incoming, "option" | "optgroup"),
        "thead" | "tbody" | "tfoot" => matches!(incoming, "tbody" | "tfoot"),
        _ => false,
    }
}

/// An open element on the parse stack.
struct OpenElement {
    element: HtmlElement,
    text: String,
}

impl OpenElement {
    fn new(element: HtmlElement) -> Self {
        OpenElement {
            element,
            text: String::new(),
        }
    }

    fn finish(mut self) -> HtmlElement {
        let trimmed = collapse_whitespace(&self.text);
        if !trimmed.is_empty() {
            self.element.text = Some(trimmed);
        }
        self.element
    }
}

/// Collapses runs of whitespace to single spaces and trims the ends, the usual HTML
/// rendering treatment of inter-element whitespace.
fn collapse_whitespace(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_was_space = true;
    for ch in s.chars() {
        if ch.is_whitespace() {
            if !last_was_space {
                out.push(' ');
            }
            last_was_space = true;
        } else {
            out.push(ch);
            last_was_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// Decodes the common named entities plus numeric character references.
fn decode_entities(s: &str) -> String {
    if !s.contains('&') {
        return s.to_string();
    }
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some(rel_end) = s[i..].find(';').filter(|&e| e <= 12) {
                let entity = &s[i + 1..i + rel_end];
                let decoded = match entity {
                    "lt" => Some('<'),
                    "gt" => Some('>'),
                    "amp" => Some('&'),
                    "quot" => Some('"'),
                    "apos" => Some('\''),
                    "nbsp" => Some(' '),
                    _ => entity
                        .strip_prefix('#')
                        .and_then(|num| {
                            if let Some(hex) =
                                num.strip_prefix('x').or_else(|| num.strip_prefix('X'))
                            {
                                u32::from_str_radix(hex, 16).ok()
                            } else {
                                num.parse::<u32>().ok()
                            }
                        })
                        .and_then(char::from_u32),
                };
                if let Some(c) = decoded {
                    out.push(c);
                    i += rel_end + 1;
                    continue;
                }
            }
            // Not a recognized entity: keep the ampersand literally (lenient).
            out.push('&');
            i += 1;
        } else {
            let ch_len = s[i..].chars().next().map_or(1, char::len_utf8);
            out.push_str(&s[i..i + ch_len]);
            i += ch_len;
        }
    }
    out
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser { input, pos: 0 }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.input.len()
    }

    fn rest(&self) -> &str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<u8> {
        self.input.as_bytes().get(self.pos).copied()
    }

    fn bump(&mut self, n: usize) {
        self.pos += n;
    }

    fn starts_with_ci(&self, s: &str) -> bool {
        // Byte-wise: a `str` slice of the first `s.len()` bytes panics when that
        // offset lands inside a multi-byte character (e.g. U+FFFD from lossy
        // recovery of corrupted input).
        let rest = &self.input.as_bytes()[self.pos..];
        rest.len() >= s.len() && rest[..s.len()].eq_ignore_ascii_case(s.as_bytes())
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    /// Parses all top-level elements, driving the lenient stack machine.
    fn parse_nodes(&mut self) -> Result<Vec<HtmlElement>> {
        let mut finished: Vec<HtmlElement> = Vec::new();
        let mut stack: Vec<OpenElement> = Vec::new();

        while !self.at_end() {
            if self.starts_with_ci("<!--") {
                self.skip_comment();
            } else if self.starts_with_ci("<!doctype") || self.rest().starts_with("<!") {
                self.skip_until('>');
            } else if self.rest().starts_with("</") {
                self.handle_closing_tag(&mut stack, &mut finished)?;
            } else if self.peek() == Some(b'<')
                && self
                    .input
                    .as_bytes()
                    .get(self.pos + 1)
                    .is_some_and(|b| b.is_ascii_alphabetic())
            {
                self.handle_opening_tag(&mut stack, &mut finished)?;
            } else {
                // Text (or a stray '<' that does not start a tag — taken literally).
                let text = self.take_text();
                if let Some(open) = stack.last_mut() {
                    open.text.push_str(&text);
                    open.text.push(' ');
                }
            }
        }

        // Any elements still open at end-of-input are closed implicitly.
        while let Some(open) = stack.pop() {
            let element = open.finish();
            match stack.last_mut() {
                Some(parent) => parent.element.children.push(element),
                None => finished.push(element),
            }
        }
        if finished.is_empty() {
            return Err(HdtError::parse("no elements found in HTML input", 0));
        }
        Ok(finished)
    }

    fn skip_comment(&mut self) {
        match self.rest().find("-->") {
            Some(rel) => self.bump(rel + 3),
            None => self.pos = self.input.len(),
        }
    }

    fn skip_until(&mut self, terminator: char) {
        match self.rest().find(terminator) {
            Some(rel) => self.bump(rel + terminator.len_utf8()),
            None => self.pos = self.input.len(),
        }
    }

    fn take_text(&mut self) -> String {
        let start = self.pos;
        // A '<' only starts markup if followed by a letter, '/', '!' or '?'.
        loop {
            match self.rest().find('<') {
                None => {
                    self.pos = self.input.len();
                    break;
                }
                Some(rel) => {
                    let candidate = self.pos + rel;
                    let next = self.input.as_bytes().get(candidate + 1).copied();
                    if next.is_some_and(|b| {
                        b.is_ascii_alphabetic() || b == b'/' || b == b'!' || b == b'?'
                    }) {
                        self.pos = candidate;
                        break;
                    }
                    self.pos = candidate + 1;
                }
            }
        }
        decode_entities(&self.input[start..self.pos])
    }

    fn parse_name(&mut self) -> Result<String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b':')
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(HdtError::parse("expected a tag name", self.pos));
        }
        Ok(self.input[start..self.pos].to_ascii_lowercase())
    }

    fn handle_closing_tag(
        &mut self,
        stack: &mut Vec<OpenElement>,
        finished: &mut Vec<HtmlElement>,
    ) -> Result<()> {
        self.bump(2); // "</"
                      // A closing tag with no name (`</ >`, `</>`) is bogus markup; browsers drop it,
                      // and so do we.
        let Ok(name) = self.parse_name() else {
            self.skip_until('>');
            return Ok(());
        };
        self.skip_until('>');
        // Ignore a closing tag that matches nothing currently open (lenient).
        if !stack.iter().any(|open| open.element.name == name) {
            return Ok(());
        }
        // Pop (and implicitly close) everything up to and including the match.
        while let Some(open) = stack.pop() {
            let was_match = open.element.name == name;
            let element = open.finish();
            match stack.last_mut() {
                Some(parent) => parent.element.children.push(element),
                None => finished.push(element),
            }
            if was_match {
                break;
            }
        }
        Ok(())
    }

    fn handle_opening_tag(
        &mut self,
        stack: &mut Vec<OpenElement>,
        finished: &mut Vec<HtmlElement>,
    ) -> Result<()> {
        self.bump(1); // '<'
        let name = self.parse_name()?;
        let mut element = HtmlElement::new(name.clone());
        let self_closing = self.parse_attributes(&mut element)?;

        // Optional-tag rules: the incoming element may implicitly close open ones.
        while stack
            .last()
            .is_some_and(|open| implicitly_closes(&open.element.name, &name))
        {
            let Some(open) = stack.pop() else { break };
            let closed = open.finish();
            match stack.last_mut() {
                Some(parent) => parent.element.children.push(closed),
                None => finished.push(closed),
            }
        }

        if is_void(&name) || self_closing {
            match stack.last_mut() {
                Some(parent) => parent.element.children.push(element),
                None => finished.push(element),
            }
            return Ok(());
        }

        if is_raw_text(&name) {
            let raw = self.take_raw_text(&name);
            let trimmed = raw.trim();
            if !trimmed.is_empty() {
                element.text = Some(trimmed.to_string());
            }
            match stack.last_mut() {
                Some(parent) => parent.element.children.push(element),
                None => finished.push(element),
            }
            return Ok(());
        }

        // The parse itself is iterative, but the recursive HDT fill (and the
        // recursive drop of the element tree) below would overflow on
        // adversarially deep nesting — bound it here, where depth accumulates.
        if stack.len() >= MAX_PARSE_DEPTH {
            return Err(HdtError::DepthLimit {
                limit: MAX_PARSE_DEPTH,
                offset: self.pos,
            });
        }
        stack.push(OpenElement::new(element));
        Ok(())
    }

    /// Consumes the contents of a raw-text element up to (and including) its closing
    /// tag; returns the raw contents.
    fn take_raw_text(&mut self, name: &str) -> String {
        let closer = format!("</{name}");
        let rest = self.rest();
        let lower = rest.to_ascii_lowercase();
        match lower.find(&closer) {
            Some(rel) => {
                let raw = rest[..rel].to_string();
                self.bump(rel);
                self.skip_until('>');
                raw
            }
            None => {
                let raw = rest.to_string();
                self.pos = self.input.len();
                raw
            }
        }
    }

    /// Parses attributes up to the closing `>`; returns whether the tag ended in `/>`.
    fn parse_attributes(&mut self, element: &mut HtmlElement) -> Result<bool> {
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Ok(false), // unterminated tag: treat as closed (lenient)
                Some(b'>') => {
                    self.bump(1);
                    return Ok(false);
                }
                Some(b'/') => {
                    self.bump(1);
                    self.skip_ws();
                    if self.peek() == Some(b'>') {
                        self.bump(1);
                    }
                    return Ok(true);
                }
                Some(_) => {
                    let key = match self.parse_name() {
                        Ok(k) => k,
                        Err(_) => {
                            // Garbage inside the tag: skip one byte and carry on.
                            self.bump(1);
                            continue;
                        }
                    };
                    self.skip_ws();
                    if self.peek() == Some(b'=') {
                        self.bump(1);
                        self.skip_ws();
                        let value = self.parse_attribute_value();
                        element.attributes.push((key, decode_entities(&value)));
                    } else {
                        element.attributes.push((key, String::new()));
                    }
                }
            }
        }
    }

    fn parse_attribute_value(&mut self) -> String {
        match self.peek() {
            Some(q @ (b'"' | b'\'')) => {
                self.bump(1);
                let start = self.pos;
                while self.peek().is_some_and(|b| b != q) {
                    self.pos += 1;
                }
                let value = self.input[start..self.pos].to_string();
                if !self.at_end() {
                    self.bump(1);
                }
                value
            }
            _ => {
                let start = self.pos;
                while self
                    .peek()
                    .is_some_and(|b| !b.is_ascii_whitespace() && b != b'>' && b != b'/')
                {
                    self.pos += 1;
                }
                self.input[start..self.pos].to_string()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_table() {
        let html = r#"<html><body>
            <table id="people">
              <tr><td>Ada</td><td>1815</td></tr>
              <tr><td>Grace</td><td>1906</td></tr>
            </table>
        </body></html>"#;
        let doc = parse_html(html).unwrap();
        assert_eq!(doc.root.name, "html");
        let body = &doc.root.children[0];
        let table = &body.children[0];
        assert_eq!(table.attribute("id"), Some("people"));
        assert_eq!(table.children.len(), 2);
        assert_eq!(table.children[0].children[0].text.as_deref(), Some("Ada"));
    }

    #[test]
    fn void_elements_and_unclosed_tags_are_tolerated() {
        let html = "<div><p>first<br>second<p>third<img src=pic.png></div>";
        let doc = parse_html(html).unwrap();
        let div = &doc.root;
        assert_eq!(div.name, "div");
        // Two paragraphs: the second <p> implicitly closes the first.
        let paragraphs: Vec<_> = div.children.iter().filter(|c| c.name == "p").collect();
        assert_eq!(paragraphs.len(), 2);
        assert_eq!(paragraphs[0].children[0].name, "br");
        assert_eq!(paragraphs[1].children[0].attribute("src"), Some("pic.png"));
    }

    #[test]
    fn implicit_closing_of_list_items_and_cells() {
        let html = "<ul><li>one<li>two<li>three</ul>";
        let doc = parse_html(html).unwrap();
        assert_eq!(doc.root.name, "ul");
        assert_eq!(doc.root.children.len(), 3);
        let texts: Vec<_> = doc
            .root
            .children
            .iter()
            .map(|li| li.text.as_deref().unwrap_or(""))
            .collect();
        assert_eq!(texts, vec!["one", "two", "three"]);
    }

    #[test]
    fn attributes_without_values_and_unquoted_values() {
        let html = "<input type=checkbox checked name=\"agree\">";
        let doc = parse_html(html).unwrap();
        assert_eq!(doc.root.name, "input");
        assert_eq!(doc.root.attribute("type"), Some("checkbox"));
        assert_eq!(doc.root.attribute("checked"), Some(""));
        assert_eq!(doc.root.attribute("name"), Some("agree"));
    }

    #[test]
    fn case_is_normalized_and_doctype_comments_skipped() {
        let html = "<!DOCTYPE html><!-- greeting --><DIV Class=\"Box\">Hi</DIV>";
        let doc = parse_html(html).unwrap();
        assert_eq!(doc.root.name, "div");
        assert_eq!(doc.root.attribute("class"), Some("Box"));
        assert_eq!(doc.root.text.as_deref(), Some("Hi"));
    }

    #[test]
    fn script_contents_are_raw_text() {
        let html =
            "<body><script>if (a < b && c > d) { render('<td>'); }</script><p>after</p></body>";
        let doc = parse_html(html).unwrap();
        let script = &doc.root.children[0];
        assert_eq!(script.name, "script");
        assert!(script.text.as_deref().unwrap().contains("a < b"));
        assert_eq!(doc.root.children[1].text.as_deref(), Some("after"));
    }

    #[test]
    fn entities_are_decoded_in_text_and_attributes() {
        let html = "<p title=\"Tom &amp; Jerry\">1 &lt; 2 &#65;&#x42;</p>";
        let doc = parse_html(html).unwrap();
        assert_eq!(doc.root.attribute("title"), Some("Tom & Jerry"));
        assert_eq!(doc.root.text.as_deref(), Some("1 < 2 AB"));
    }

    #[test]
    fn mismatched_closing_tag_closes_up_to_match() {
        let html = "<div><span><b>bold</div>";
        let doc = parse_html(html).unwrap();
        assert_eq!(doc.root.name, "div");
        assert_eq!(doc.root.children[0].name, "span");
        assert_eq!(doc.root.children[0].children[0].name, "b");
    }

    #[test]
    fn bogus_closing_tags_never_panic() {
        // `</` followed by a non-name is bogus markup; it is skipped up to the next
        // `>`, which may swallow following text exactly as browsers' bogus-comment
        // state does.  The important property is that parsing stays total.
        assert!(parse_html("</<a>").is_err() || parse_html("</<a>").is_ok());
        assert!(parse_html("</ ><p>ok</p>").unwrap().root.name == "p");
        assert!(parse_html("<div></ ></div>").unwrap().root.name == "div");
    }

    #[test]
    fn stray_closing_tag_is_ignored() {
        let html = "<div></table><p>ok</p></div>";
        let doc = parse_html(html).unwrap();
        assert_eq!(doc.root.name, "div");
        assert_eq!(doc.root.children.len(), 1);
        assert_eq!(doc.root.children[0].text.as_deref(), Some("ok"));
    }

    #[test]
    fn fragment_with_multiple_roots_gets_synthetic_html_root() {
        let html = "<h1>Title</h1><p>Body</p>";
        let doc = parse_html(html).unwrap();
        assert_eq!(doc.root.name, "html");
        assert_eq!(doc.root.children.len(), 2);
    }

    #[test]
    fn hdt_mapping_matches_xml_conventions() {
        let html = "<table><tr><td class=\"name\">Ada</td></tr></table>";
        let tree = html_to_hdt(html).unwrap();
        let root = tree.root();
        assert_eq!(tree.tag_name(root), "table");
        let tr = tree.children_with_tag(root, "tr")[0];
        let td = tree.children_with_tag(tr, "td")[0];
        // Attribute and text content both become leaf children.
        let class = tree.children_with_tag(td, "class")[0];
        assert_eq!(tree.data(class), Some("name"));
        let text = tree.children_with_tag(td, "text")[0];
        assert_eq!(tree.data(text), Some("Ada"));
    }

    #[test]
    fn empty_input_is_an_error() {
        assert!(parse_html("").is_err());
        assert!(parse_html("   \n  ").is_err());
        assert!(parse_html("just text, no markup").is_err());
    }

    #[test]
    fn depth_limit_is_a_typed_error_not_a_crash() {
        // The HTML parse itself is iterative, so no big-stack thread is needed:
        // the guard fires while the open-element stack grows.
        let limit = crate::error::MAX_PARSE_DEPTH;
        let deep = "<div>".repeat(limit + 1);
        match parse_html(&deep) {
            Err(HdtError::DepthLimit { limit: l, .. }) => assert_eq!(l, limit),
            Err(other) => panic!("expected depth-limit error, got {other:?}"),
            Ok(_) => panic!("expected depth-limit error, got a parsed document"),
        }
    }

    #[test]
    fn whitespace_inside_text_is_collapsed() {
        let html = "<p>  spread \n  over   lines  </p>";
        let doc = parse_html(html).unwrap();
        assert_eq!(doc.root.text.as_deref(), Some("spread over lines"));
    }

    #[test]
    fn multi_byte_text_at_a_prefix_probe_offset_does_not_panic() {
        // Fixed fuzz regression (seeded suite, scenario 195): lossy recovery of
        // corrupted bytes puts U+FFFD in text content so that the 4-byte `<!--`
        // prefix probe lands inside the character; `starts_with_ci` used to slice
        // the `str` at that offset and panic on the char boundary.
        let html = "n-\u{fffd}0</td><td>545</td><tr><td>n-1</td></table>";
        assert!(parse_html(html).is_ok(), "lenient parse must not panic");
    }
}
