//! The hierarchical data tree (HDT) arena.
//!
//! [`Hdt`] owns all nodes of one document in a flat vector and exposes the traversal
//! primitives that the DSL semantics (Figure 7) need: children lookup by tag, children
//! lookup by tag *and* position, descendant search by tag, and parent lookup.
//!
//! Tags are interned [`TagId`]s (see [`crate::intern`]), so every lookup compares and
//! hashes `u32`s.  On top of the arena the tree maintains a lazily built
//! [`TreeIndex`]:
//!
//! * a **pre-order numbering** — `preorder(n)` and an exclusive `subtree_end(n)` — so
//!   that "is `d` a descendant of `n`" becomes an interval test;
//! * a **per-tag occurrence list** sorted by pre-order number, making
//!   [`Hdt::descendants_with_tag`] a binary-search range scan (`O(log n + k)`) that
//!   returns a contiguous slice, instead of a full subtree walk;
//! * a **children-grouped-by-tag map**, making [`Hdt::children_with_tag`] a single
//!   hash lookup returning a slice.
//!
//! The index is built on first query and invalidated by mutation (`add_child*`), so
//! construction stays cheap and read-heavy workloads (synthesis, evaluation) pay the
//! build cost exactly once per tree.

use crate::error::{HdtError, Result};
use crate::intern::TagId;
use crate::node::{Node, NodeId};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Derived navigation indexes over one [`Hdt`] arena (see the module docs).
#[derive(Debug, Clone)]
struct TreeIndex {
    /// Pre-order number of each node, indexed by arena position.
    pre: Vec<u32>,
    /// Exclusive end of each node's subtree in pre-order numbering: every strict
    /// descendant `d` of `n` satisfies `pre[n] < pre[d] < end[n]`.
    end: Vec<u32>,
    /// Depth of each node (root is 0), indexed by arena position.  Cached so the
    /// executor's structural interval joins can compare ancestor distances in O(1)
    /// instead of walking parent chains.
    depth: Vec<u32>,
    /// Per-tag occurrence lists, both vectors sorted by pre-order number in lockstep.
    occurrences: HashMap<TagId, TagOccurrences>,
    /// Children of a node holding a given tag, in document order.
    children_by_tag: HashMap<(NodeId, TagId), Vec<NodeId>>,
}

/// All nodes carrying one tag, sorted by pre-order number.  `pre` and `nodes` are
/// parallel: `nodes[i]` has pre-order number `pre[i]`.  Keeping them parallel lets
/// range queries return a borrowed `&[NodeId]` slice with no per-query allocation.
#[derive(Debug, Clone, Default)]
struct TagOccurrences {
    pre: Vec<u32>,
    nodes: Vec<NodeId>,
}

impl TreeIndex {
    fn build(tree: &Hdt) -> TreeIndex {
        let n = tree.nodes.len();
        let mut pre = vec![0u32; n];
        let mut end = vec![0u32; n];
        let mut depth = vec![0u32; n];
        let mut order: Vec<NodeId> = Vec::with_capacity(n);

        // Iterative pre-order numbering with explicit enter/exit frames so arbitrarily
        // deep documents cannot overflow the call stack.
        enum Frame {
            Enter(NodeId),
            Exit(NodeId),
        }
        let mut counter = 0u32;
        let mut stack = vec![Frame::Enter(tree.root())];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Enter(id) => {
                    pre[id.index()] = counter;
                    counter += 1;
                    order.push(id);
                    stack.push(Frame::Exit(id));
                    for c in tree.node(id).children.iter().rev() {
                        depth[c.index()] = depth[id.index()] + 1;
                        stack.push(Frame::Enter(*c));
                    }
                }
                Frame::Exit(id) => end[id.index()] = counter,
            }
        }

        // Occurrence lists: pushing in pre-order keeps each tag's vectors sorted.
        let mut occurrences: HashMap<TagId, TagOccurrences> = HashMap::new();
        for id in &order {
            let node = tree.node(*id);
            let occ = occurrences.entry(node.tag).or_default();
            occ.pre.push(pre[id.index()]);
            occ.nodes.push(*id);
        }

        // Children grouped by tag, preserving document order within each group.
        let mut children_by_tag: HashMap<(NodeId, TagId), Vec<NodeId>> = HashMap::new();
        for id in tree.ids() {
            for c in &tree.node(id).children {
                children_by_tag
                    .entry((id, tree.node(*c).tag))
                    .or_default()
                    .push(*c);
            }
        }

        TreeIndex {
            pre,
            end,
            depth,
            occurrences,
            children_by_tag,
        }
    }
}

/// A hierarchical data tree: a rooted, ordered tree of `(tag, pos, data)` nodes.
///
/// Nodes are stored in an arena; [`NodeId`]s index into it.  The root always has id 0.
#[derive(Debug)]
pub struct Hdt {
    nodes: Vec<Node>,
    /// Number of children with a given tag already inserted under a parent; makes
    /// automatic `pos` assignment in [`Hdt::add_child`] O(1) instead of a scan over
    /// the parent's children (quadratic ingestion for wide nodes).
    child_tag_counts: HashMap<(NodeId, TagId), usize>,
    /// Lazily built navigation index; cleared by every mutation.
    index: OnceLock<TreeIndex>,
}

/// Cloning copies the tree structure and construction bookkeeping but *not* the
/// derived index: a clone starts cold and rebuilds on its first indexed query.  This
/// keeps clones cheap and gives benchmarks a way to measure the index build.
impl Clone for Hdt {
    fn clone(&self) -> Self {
        Hdt {
            nodes: self.nodes.clone(),
            child_tag_counts: self.child_tag_counts.clone(),
            index: OnceLock::new(),
        }
    }
}

/// Equality considers only the tree structure; the derived index and construction
/// bookkeeping are ignored (they are functions of the nodes).
impl PartialEq for Hdt {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes
    }
}

impl Eq for Hdt {}

impl Hdt {
    /// Creates a tree consisting only of a root node with the given tag.
    pub fn with_root(tag: impl Into<TagId>) -> Self {
        Hdt {
            nodes: vec![Node::new(tag, 0, None)],
            child_tag_counts: HashMap::new(),
            index: OnceLock::new(),
        }
    }

    /// Id of the root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId::ROOT
    }

    /// Total number of nodes in the tree.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the tree has only its root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this tree.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Checked access to a node.
    pub fn try_node(&self, id: NodeId) -> Result<&Node> {
        self.nodes.get(id.index()).ok_or_else(|| {
            HdtError::InvalidNode(format!("{id} out of range ({} nodes)", self.len()))
        })
    }

    /// Interned tag of a node.
    #[inline]
    pub fn tag(&self, id: NodeId) -> TagId {
        self.node(id).tag
    }

    /// Tag of a node, resolved to its name (string boundary only — rendering,
    /// diagnostics, SQL/codegen emission).
    #[inline]
    pub fn tag_name(&self, id: NodeId) -> &'static str {
        self.node(id).tag.as_str()
    }

    /// Position of a node among same-tag siblings.
    #[inline]
    pub fn pos(&self, id: NodeId) -> usize {
        self.node(id).pos
    }

    /// Data stored at a node (only leaves carry data).
    #[inline]
    pub fn data(&self, id: NodeId) -> Option<&str> {
        self.node(id).data.as_deref()
    }

    /// True if the node has no children.
    #[inline]
    pub fn is_leaf(&self, id: NodeId) -> bool {
        self.node(id).children.is_empty()
    }

    /// Parent of a node (`None` for the root).
    #[inline]
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Children of a node in document order.
    #[inline]
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.node(id).children
    }

    /// The navigation index, building it on first use.
    #[inline]
    fn index(&self) -> &TreeIndex {
        self.index.get_or_init(|| TreeIndex::build(self))
    }

    /// Eagerly builds the navigation index if it does not exist yet.
    ///
    /// Parallel synthesis shares one tree across many workers; without this, the
    /// first indexed query from each worker funnels through the `OnceLock`
    /// initialization, serializing every thread behind one index build at the worst
    /// possible moment.  Calling `ensure_index` once before fanning out moves the
    /// build to the coordinating thread so workers only ever take the fast
    /// read-only path.
    pub fn ensure_index(&self) {
        let _ = self.index();
    }

    /// Adds a child node under `parent`.  The `pos` field is computed automatically as
    /// the number of existing children of `parent` with the same tag (O(1) via the
    /// per-parent tag counts).
    pub fn add_child(
        &mut self,
        parent: NodeId,
        tag: impl Into<TagId>,
        data: Option<String>,
    ) -> NodeId {
        let tag = tag.into();
        let pos = self
            .child_tag_counts
            .get(&(parent, tag))
            .copied()
            .unwrap_or(0);
        self.add_child_with_pos(parent, tag, pos, data)
    }

    /// Adds a child node under `parent` with an explicit `pos` value.
    pub fn add_child_with_pos(
        &mut self,
        parent: NodeId,
        tag: impl Into<TagId>,
        pos: usize,
        data: Option<String>,
    ) -> NodeId {
        let tag = tag.into();
        let id = NodeId(self.nodes.len() as u32);
        let mut node = Node::new(tag, pos, data);
        node.parent = Some(parent);
        self.nodes.push(node);
        self.nodes[parent.index()].children.push(id);
        *self.child_tag_counts.entry((parent, tag)).or_insert(0) += 1;
        // Any previously built index is stale now.
        self.index.take();
        id
    }

    /// Children of `id` whose tag equals `tag` (the `children` DSL construct).
    /// A single hash lookup into the children-by-tag index.
    pub fn children_with_tag(&self, id: NodeId, tag: impl Into<TagId>) -> &[NodeId] {
        let tag = tag.into();
        self.index()
            .children_by_tag
            .get(&(id, tag))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Children of `id` whose tag equals `tag`, computed by scanning the child list.
    /// Reference implementation used by property tests and benchmarks to validate the
    /// indexed [`Hdt::children_with_tag`].
    pub fn children_with_tag_naive(&self, id: NodeId, tag: impl Into<TagId>) -> Vec<NodeId> {
        let tag = tag.into();
        self.children(id)
            .iter()
            .copied()
            .filter(|c| self.node(*c).tag == tag)
            .collect()
    }

    /// Children of `id` whose tag equals `tag` and whose pos equals `pos`
    /// (the `pchildren` DSL construct).
    pub fn children_with_tag_pos(
        &self,
        id: NodeId,
        tag: impl Into<TagId>,
        pos: usize,
    ) -> Vec<NodeId> {
        self.children_with_tag(id, tag)
            .iter()
            .copied()
            .filter(|c| self.node(*c).pos == pos)
            .collect()
    }

    /// A single child of `id` with the given tag and pos (the `child` node-extractor
    /// construct of the predicate language).  Returns `None` if no such child exists.
    pub fn child(&self, id: NodeId, tag: impl Into<TagId>, pos: usize) -> Option<NodeId> {
        self.children_with_tag(id, tag)
            .iter()
            .copied()
            .find(|c| self.node(*c).pos == pos)
    }

    /// All (strict) descendants of `id` with the given tag, in pre-order
    /// (the `descendants` DSL construct).
    ///
    /// `O(log n + k)`: a binary search over the tag's occurrence list for the
    /// pre-order interval of `id`'s subtree, returning the matching nodes as a
    /// borrowed contiguous slice.
    pub fn descendants_with_tag(&self, id: NodeId, tag: impl Into<TagId>) -> &[NodeId] {
        let tag = tag.into();
        let idx = self.index();
        let Some(occ) = idx.occurrences.get(&tag) else {
            return &[];
        };
        // Strict descendants: the interval starts one past the node itself.
        let lo = idx.pre[id.index()] + 1;
        let hi = idx.end[id.index()];
        let a = occ.pre.partition_point(|&p| p < lo);
        let b = occ.pre.partition_point(|&p| p < hi);
        &occ.nodes[a..b]
    }

    /// Depth of a node via the navigation index (root is 0).  O(1) once the index
    /// exists; [`Hdt::depth`] is the index-free O(depth) parent walk.
    #[inline]
    pub fn node_depth(&self, id: NodeId) -> u32 {
        self.index().depth[id.index()]
    }

    /// Number of nodes in the whole tree carrying the given tag — the length of the
    /// tag's occurrence list.  The query planner uses this as a column-cardinality
    /// estimate when ordering joins.
    pub fn tag_count(&self, tag: impl Into<TagId>) -> usize {
        let tag = tag.into();
        self.index()
            .occurrences
            .get(&tag)
            .map(|occ| occ.nodes.len())
            .unwrap_or(0)
    }

    /// All (strict) descendants of `id` with the given tag, found by walking the
    /// subtree.  Reference implementation used by property tests and benchmarks to
    /// validate the indexed [`Hdt::descendants_with_tag`].
    pub fn descendants_with_tag_naive(&self, id: NodeId, tag: impl Into<TagId>) -> Vec<NodeId> {
        let tag = tag.into();
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.children(id).iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            if self.node(n).tag == tag {
                out.push(n);
            }
            for c in self.children(n).iter().rev() {
                stack.push(*c);
            }
        }
        out
    }

    /// Pre-order number of a node (root is 0).
    #[inline]
    pub fn preorder_number(&self, id: NodeId) -> u32 {
        self.index().pre[id.index()]
    }

    /// Exclusive end of a node's subtree in pre-order numbering: every strict
    /// descendant `d` satisfies `preorder_number(id) < preorder_number(d) <
    /// subtree_end(id)`.
    #[inline]
    pub fn subtree_end(&self, id: NodeId) -> u32 {
        self.index().end[id.index()]
    }

    /// All nodes in pre-order (root first).
    pub fn preorder(&self) -> Vec<NodeId> {
        let idx = self.index();
        let mut order = vec![NodeId::ROOT; self.len()];
        for id in self.ids() {
            order[idx.pre[id.index()] as usize] = id;
        }
        order
    }

    /// Iterator over every node id in arena order.
    pub fn ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Set of distinct tags appearing in the tree, in order of first appearance
    /// (arena order).
    pub fn tags(&self) -> Vec<TagId> {
        let mut seen = std::collections::HashSet::new();
        let mut tags = Vec::new();
        for n in &self.nodes {
            if seen.insert(n.tag) {
                tags.push(n.tag);
            }
        }
        tags
    }

    /// Set of distinct `pos` values appearing in the tree.
    pub fn positions(&self) -> Vec<usize> {
        let mut ps: Vec<usize> = Vec::new();
        for n in &self.nodes {
            if !ps.contains(&n.pos) {
                ps.push(n.pos);
            }
        }
        ps.sort_unstable();
        ps
    }

    /// All leaf data values in the tree (used for constant mining in predicate
    /// universe construction, rule (4) of Figure 10).
    pub fn data_values(&self) -> Vec<&str> {
        self.nodes
            .iter()
            .filter_map(|n| n.data.as_deref())
            .collect()
    }

    /// Depth of a node (root has depth 0).
    pub fn depth(&self, id: NodeId) -> usize {
        let mut d = 0;
        let mut cur = id;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Height of the whole tree (max depth over all nodes).
    pub fn height(&self) -> usize {
        self.ids().map(|id| self.depth(id)).max().unwrap_or(0)
    }

    /// Number of leaf nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.children.is_empty()).count()
    }

    /// Counts "elements": internal nodes plus the root.  Used to report the
    /// `#Elements` statistic of Table 1.
    pub fn element_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| !n.children.is_empty())
            .count()
            .max(1)
    }

    /// Validates internal consistency (parent/child symmetry and pos correctness).
    /// Intended for tests and debugging.
    pub fn validate(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(HdtError::Structure("tree has no nodes".into()));
        }
        if self.nodes[0].parent.is_some() {
            return Err(HdtError::Structure("root must not have a parent".into()));
        }
        for id in self.ids() {
            let n = self.node(id);
            // pos must equal the index among same-tag siblings; counting with a
            // per-tag map keeps validation linear in the child count.
            let mut tag_counts: HashMap<TagId, usize> = HashMap::new();
            for c in &n.children {
                let child = self.try_node(*c)?;
                if child.parent != Some(id) {
                    return Err(HdtError::Structure(format!(
                        "child {c} of {id} has wrong parent link"
                    )));
                }
                let expected = tag_counts.entry(child.tag).or_insert(0);
                if child.pos != *expected {
                    return Err(HdtError::Structure(format!(
                        "{c} has pos {} but is the {}'th `{}` child of {id}",
                        child.pos,
                        expected,
                        child.tag.as_str()
                    )));
                }
                *expected += 1;
            }
            if let Some(p) = n.parent {
                if !self.node(p).children.contains(&id) {
                    return Err(HdtError::Structure(format!(
                        "{id} not listed among children of its parent {p}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Test-only access to the raw node storage (used to corrupt trees on purpose).
    #[cfg(test)]
    pub(crate) fn nodes_mut(&mut self) -> &mut Vec<Node> {
        self.index.take();
        &mut self.nodes
    }
}

/// Convenience builder for constructing trees in a nested, declarative style.
///
/// All four ingestion paths (XML, JSON, HTML and the synthetic generators) funnel
/// through the same arena mutators ([`Hdt::add_child`]/[`Hdt::add_child_with_pos`]),
/// which intern every tag through the shared global interner.
///
/// ```
/// use mitra_hdt::HdtBuilder;
/// let tree = HdtBuilder::new("root")
///     .open("Person")
///     .leaf("name", "Alice")
///     .close()
///     .build();
/// assert_eq!(tree.len(), 3);
/// ```
#[derive(Debug)]
pub struct HdtBuilder {
    tree: Hdt,
    stack: Vec<NodeId>,
}

impl HdtBuilder {
    /// Starts a new tree with the given root tag.
    pub fn new(root_tag: impl Into<TagId>) -> Self {
        let tree = Hdt::with_root(root_tag);
        HdtBuilder {
            stack: vec![tree.root()],
            tree,
        }
    }

    fn top(&self) -> NodeId {
        // `new()` seeds the stack with the root and `close()` refuses to pop it,
        // so the stack is never empty; fall back to the root id for safety.
        self.stack.last().copied().unwrap_or(NodeId::ROOT)
    }

    /// Opens a new internal node and makes it the current parent.
    pub fn open(mut self, tag: impl Into<TagId>) -> Self {
        let id = self.tree.add_child(self.top(), tag, None);
        self.stack.push(id);
        self
    }

    /// Adds a leaf node carrying data under the current parent.
    pub fn leaf(mut self, tag: impl Into<TagId>, data: impl Into<String>) -> Self {
        self.tree.add_child(self.top(), tag, Some(data.into()));
        self
    }

    /// Adds an empty (data-less) leaf under the current parent.
    pub fn empty(mut self, tag: impl Into<TagId>) -> Self {
        self.tree.add_child(self.top(), tag, None);
        self
    }

    /// Closes the current parent, returning to its parent.
    ///
    /// # Panics
    /// Panics if called more times than [`HdtBuilder::open`].
    pub fn close(mut self) -> Self {
        assert!(self.stack.len() > 1, "close() without matching open()");
        self.stack.pop();
        self
    }

    /// Finishes building and returns the tree.
    pub fn build(self) -> Hdt {
        self.tree
    }
}

/// Compile-time guarantee that a tree can be shared across pool workers: the lazy
/// index lives in a `OnceLock` and every lookup returns borrowed data, so `&Hdt` is
/// safe to hand to scoped threads without cloning.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Hdt>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intern;

    fn sample() -> Hdt {
        HdtBuilder::new("root")
            .open("Person")
            .leaf("name", "Alice")
            .leaf("id", "1")
            .open("Friendship")
            .open("Friend")
            .leaf("fid", "2")
            .leaf("years", "3")
            .close()
            .close()
            .close()
            .open("Person")
            .leaf("name", "Bob")
            .leaf("id", "2")
            .close()
            .build()
    }

    #[test]
    fn builder_produces_consistent_tree() {
        let t = sample();
        t.validate().expect("tree should validate");
        assert_eq!(t.tag(t.root()), intern::intern("root"));
        assert_eq!(t.tag_name(t.root()), "root");
        assert_eq!(t.children_with_tag(t.root(), "Person").len(), 2);
    }

    #[test]
    fn pos_assignment_counts_same_tag_siblings() {
        let t = sample();
        let persons = t.children_with_tag(t.root(), "Person");
        assert_eq!(t.pos(persons[0]), 0);
        assert_eq!(t.pos(persons[1]), 1);
    }

    #[test]
    fn children_with_tag_pos_filters_both() {
        let t = sample();
        assert_eq!(t.children_with_tag_pos(t.root(), "Person", 1).len(), 1);
        assert_eq!(t.children_with_tag_pos(t.root(), "Person", 5).len(), 0);
    }

    #[test]
    fn descendants_search_is_preorder_and_deep() {
        let t = sample();
        let names = t.descendants_with_tag(t.root(), "name");
        assert_eq!(names.len(), 2);
        assert_eq!(t.data(names[0]), Some("Alice"));
        assert_eq!(t.data(names[1]), Some("Bob"));
        let years = t.descendants_with_tag(t.root(), "years");
        assert_eq!(years.len(), 1);
    }

    #[test]
    fn indexed_lookups_agree_with_naive_reference() {
        let t = sample();
        for id in t.ids() {
            for tag in t.tags() {
                assert_eq!(
                    t.descendants_with_tag(id, tag).to_vec(),
                    t.descendants_with_tag_naive(id, tag),
                    "descendants mismatch at {id} tag {tag}"
                );
                assert_eq!(
                    t.children_with_tag(id, tag).to_vec(),
                    t.children_with_tag_naive(id, tag),
                    "children mismatch at {id} tag {tag}"
                );
            }
        }
    }

    #[test]
    fn ensure_index_prebuilds_and_mutation_invalidates() {
        let mut t = sample();
        t.ensure_index();
        assert!(t.index.get().is_some(), "index must exist after ensure");
        assert_eq!(t.descendants_with_tag(t.root(), "Person").len(), 2);
        let root = t.root();
        t.add_child(root, "Person", None);
        assert!(t.index.get().is_none(), "mutation must clear the index");
        t.ensure_index();
        assert_eq!(t.descendants_with_tag(t.root(), "Person").len(), 3);
    }

    #[test]
    fn index_is_rebuilt_after_mutation() {
        let mut t = sample();
        // Force the index to exist, then mutate.
        assert_eq!(t.descendants_with_tag(t.root(), "Person").len(), 2);
        let root = t.root();
        t.add_child(root, "Person", None);
        assert_eq!(t.descendants_with_tag(t.root(), "Person").len(), 3);
        t.validate().unwrap();
    }

    #[test]
    fn preorder_numbers_nest_subtrees() {
        let t = sample();
        for id in t.ids() {
            let lo = t.preorder_number(id);
            let hi = t.subtree_end(id);
            assert!(lo < hi);
            for d in t.descendants_with_tag_naive(id, "fid") {
                assert!(t.preorder_number(d) > lo && t.preorder_number(d) < hi);
            }
        }
        assert_eq!(t.preorder_number(t.root()), 0);
        assert_eq!(t.subtree_end(t.root()) as usize, t.len());
    }

    #[test]
    fn child_lookup_by_tag_and_pos() {
        let t = sample();
        let p0 = t.children_with_tag(t.root(), "Person")[0];
        let name = t.child(p0, "name", 0).unwrap();
        assert_eq!(t.data(name), Some("Alice"));
        assert!(t.child(p0, "name", 1).is_none());
    }

    #[test]
    fn depth_and_height() {
        let t = sample();
        assert_eq!(t.depth(t.root()), 0);
        assert_eq!(t.height(), 4); // root -> Person -> Friendship -> Friend -> fid
    }

    #[test]
    fn node_depth_agrees_with_parent_walk() {
        let t = sample();
        for id in t.ids() {
            assert_eq!(
                t.node_depth(id) as usize,
                t.depth(id),
                "depth mismatch at {id}"
            );
        }
    }

    #[test]
    fn tag_count_matches_occurrences() {
        let t = sample();
        assert_eq!(t.tag_count("Person"), 2);
        assert_eq!(t.tag_count("name"), 2);
        assert_eq!(t.tag_count("years"), 1);
        assert_eq!(t.tag_count("root"), 1);
        assert_eq!(t.tag_count("absent"), 0);
    }

    #[test]
    fn data_values_and_tags() {
        let t = sample();
        let vals = t.data_values();
        assert!(vals.contains(&"Alice"));
        assert!(vals.contains(&"3"));
        let tags = t.tags();
        assert!(tags.iter().any(|t| t.as_str() == "Friendship"));
    }

    #[test]
    fn preorder_visits_every_node_once() {
        let t = sample();
        let order = t.preorder();
        assert_eq!(order.len(), t.len());
        let mut seen = order.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), t.len());
        assert_eq!(order[0], t.root());
    }

    #[test]
    fn validate_detects_bad_pos() {
        let mut t = sample();
        // Corrupt a pos on purpose.
        let persons = t.children_with_tag(t.root(), "Person").to_vec();
        t.nodes_mut()[persons[1].index()].pos = 7;
        assert!(t.validate().is_err());
    }

    #[test]
    fn try_node_out_of_range_errors() {
        let t = sample();
        assert!(t.try_node(NodeId(9999)).is_err());
    }

    #[test]
    fn element_and_leaf_counts() {
        let t = sample();
        assert_eq!(t.leaf_count(), 6);
        assert!(t.element_count() >= 4);
    }

    #[test]
    fn clone_and_equality_ignore_index_state() {
        let t = sample();
        let mut u = t.clone();
        assert_eq!(t, u);
        // Querying one side builds its index; equality must be unaffected.
        assert_eq!(u.descendants_with_tag(u.root(), "name").len(), 2);
        assert_eq!(t, u);
        let root = u.root();
        u.add_child(root, "Person", None);
        assert_ne!(t, u);
    }
}
